//! # HypeR — hypothetical reasoning with what-if and how-to queries
//!
//! A Rust reproduction of *"HypeR: Hypothetical Reasoning With What-If and
//! How-To Queries Using a Probabilistic Causal Approach"* (SIGMOD 2022).
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`storage`] | in-memory relational engine (typed columnar tables, joins, group-by, stats, content fingerprints) |
//! | [`causal`]  | causal graphs, ground graphs, blocks, backdoor sets, SCMs |
//! | [`ml`]      | regression forests (parallel histogram training), linear models, encoders, discretizers |
//! | [`ip`]      | simplex LP + branch-and-bound 0-1 ILP + enumeration oracle |
//! | [`query`]   | the extended SQL language (`Use`/`When`/`Update`/`Output`/`For`, `HowToUpdate`/`Limit`/`ToMaximize`) |
//! | [`runtime`] | the shared execution runtime: one persistent worker pool for every parallel path |
//! | [`store`]   | durable `HYPR1` binary snapshots: tables, databases, graphs, fitted models; the disk-tier artifact files; the `HYPD1` delta append log |
//! | [`ingest`]  | typed [`DeltaBatch`](ingest::DeltaBatch) write batches and per-block content fingerprints — the incremental write path |
//! | [`core`]    | the HypeR engine: sessions, prepared queries, the three-tier artifact cache (local LRU → shared in-memory → disk) |
//! | [`serve`]   | the multi-tenant HTTP query server: hand-rolled HTTP/1.1, tenant snapshot registry, admission control with fairness and load shedding |
//! | [`datasets`] | workload generators (German, German-Syn, Adult, Amazon, Student-Syn) |
//!
//! ## Quickstart
//!
//! The entry point is a [`HyperSession`](core::HyperSession): an owned,
//! thread-safe handle over a database and its causal graph that caches the
//! expensive intermediates (relevant views, block decompositions, fitted
//! estimators) across queries. Queries are composed either as text or with
//! the typed builders ([`WhatIf`](query::WhatIf) / [`HowTo`](query::HowTo)
//! — both yield the same validated IR and share cache entries), may carry
//! `Param(name)` placeholders bound per execution, and can be `explain`ed
//! before (or after) running:
//!
//! ```
//! use hyper_repro::prelude::*;
//!
//! // Figure 1's toy Amazon database with the Figure 2 causal graph.
//! let data = hyper_repro::datasets::amazon::amazon_figure1();
//! let session = HyperSession::builder(data.db).graph(data.graph).build();
//!
//! // The Figure 4 scenario as a typed, parameterized template: the
//! // relevant view is an embedded select, the price multiplier is a
//! // named placeholder. No query text is ever parsed.
//! let view = hyper_repro::query::parse_select(
//!     "Select T1.pid, T1.category, T1.price, T1.brand,
//!             Avg(sentiment) As senti, Avg(T2.rating) As rtng
//!      From product As T1, review As T2
//!      Where T1.pid = T2.pid
//!      Group By T1.pid, T1.category, T1.price, T1.brand",
//! ).unwrap();
//! let template = WhatIf::over_select(view)
//!     .when(HExpr::attr("brand").eq("Asus"))
//!     .scale_param("price", "mult")
//!     .output_avg_post("rtng")
//!     .filter(HExpr::pre("category").eq("Laptop"));
//!
//! // Prepared once: validated and view-resolved here, executed many
//! // times with different bindings — the view build is paid once.
//! let prepared = session.prepare(template).unwrap();
//! for mult in [0.9, 1.0, 1.1] {
//!     let r = prepared
//!         .execute_whatif_with(&Bindings::new().set("mult", mult))
//!         .unwrap();
//!     assert!(r.value >= 1.0 && r.value <= 5.0);
//! }
//! assert_eq!(session.stats().view_misses, 1);
//! assert_eq!(session.stats().texts_parsed, 0);
//!
//! // explain(): the structured plan — view source + size, block count,
//! // adjustment set, estimator config — with per-artifact cache
//! // provenance (hit / miss / would-build). Nothing is trained.
//! let report = session
//!     .explain("Use product Update(price) = 500 Output Count(Post(price) > 400)")
//!     .unwrap();
//! assert!(report.deterministic);
//! println!("{report}");
//!
//! // Ad-hoc text and parallel batches share the same cache. Batches (and
//! // how-to candidate evaluation, and forest training) fan out over one
//! // persistent process-wide worker pool — never per-call threads.
//! let outcomes = session.execute_batch(&[
//!     "Use product Update(price) = 0.9 * Pre(price) Output Count(*)",
//!     "Use product Update(price) = 1.2 * Pre(price) Output Count(*)",
//! ]);
//! assert!(outcomes.iter().all(|o| o.is_ok()));
//! ```
//!
//! ## Multi-tenant serving: the shared artifact store
//!
//! Sessions are the unit of *tenancy* (own config, stats, cache budget),
//! not the unit of *work*: relevant views, block decompositions, and
//! fitted estimators live in a process-wide
//! [`SharedArtifactStore`](core::SharedArtifactStore) keyed by content
//! fingerprints of `(database, graph)`. Many sessions over one dataset —
//! even loaded independently, without shared `Arc`s — build each artifact
//! once, single-flight, process-wide (`examples/multi_session.rs` runs
//! four concurrent tenants and asserts exactly one view build):
//!
//! ```
//! use hyper_repro::prelude::*;
//! let data = hyper_repro::datasets::amazon::amazon(200, 3, 5);
//! let db = std::sync::Arc::new(data.db);
//! let graph = std::sync::Arc::new(data.graph);
//!
//! let tenant_a = HyperSession::builder(db.clone()).graph(graph.clone()).build();
//! let tenant_b = HyperSession::builder(db).graph(graph).build();
//! let q = "Use product Update(price) = 500 Output Count(Post(price) > 400)";
//! tenant_a.execute(q).unwrap();
//! tenant_b.execute(q).unwrap();
//! // Tenant B re-used A's artifacts through the shared store.
//! assert_eq!(tenant_b.stats().view_misses, 0);
//! assert_eq!(tenant_b.stats().view_shared_hits, 1);
//! // Opt out per session with `.share_artifacts(false)`; scale the
//! // worker pool with `.runtime(HyperRuntime::with_workers(n))`.
//! ```
//!
//! ## Durability: snapshots and the three-tier cache
//!
//! Scenario state outlives a process. [`store::Snapshot`] serializes a
//! whole database + causal graph to one checksummed, versioned `HYPR1`
//! file (`hyper-snapshot save/inspect/load` is the CLI over it), and
//! `SessionBuilder::persist_dir` adds a **disk tier** under the shared
//! store, making artifact resolution three-tiered:
//!
//! ```text
//! local LRU tier (per session)  →  shared in-memory store (process-wide)
//!                               →  disk tier (persist_dir, survives restarts)
//!                               →  build / train (spills back to disk)
//! ```
//!
//! Fitted estimators, relevant views, and block decompositions are
//! spilled as fingerprint-validated artifact files when built and
//! recovered by deserialization after a restart — reloaded forests
//! predict bit-identically, so a restarted process answers its first
//! what-if at warm-cache speed with zero retraining
//! (`examples/warm_start.rs` asserts it end to end; the `bench_smoke`
//! gate holds warm start ≥3× faster than retraining, ~3.8× measured on
//! the reference container). Corrupt, truncated, or stale-data files
//! read as typed [`StoreError`](store::StoreError)s and fall back to a
//! rebuild. The shared tier itself can be byte-budgeted
//! (`SessionBuilder::shared_budget_bytes`), with evictions re-serving
//! from the disk tier.
//!
//! ## Serving: HTTP, admission control, and tenancy over the wire
//!
//! The [`serve`] crate turns all of the above into a network service:
//! the `hyper-serve` binary serves a *registry directory* of
//! `<tenant>.hypr` snapshot files over hand-rolled HTTP/1.1 (`std::net`
//! only — the workspace is offline). Each tenant's snapshot is loaded
//! lazily on its first request behind a single-flight lock, its session
//! cached for the life of the process, and repeat query texts ride the
//! prepared-template path. In front of the engine sits an admission
//! layer: a bounded queue with one lane per tenant drained round-robin
//! by a fixed executor pool, so one tenant's burst cannot starve
//! another; a full queue sheds typed `503 + Retry-After` responses
//! without touching the engine, and per-request deadlines answer `504`
//! while the executor finishes in the background (warming the caches —
//! a timeout never poisons a session).
//!
//! ```text
//! POST /query    {"tenant": "...", "query": "...", "bindings": {...}}
//! POST /explain  same body — the static plan with cache provenance
//! POST /ingest   {"tenant": "...", "table": "...", "rows": [...], "deletes": [...]}
//! GET  /stats    server + per-tenant admission counters + SessionStats
//! GET  /health   liveness (served inline, even under saturation)
//! ```
//!
//! `POST /ingest` is the write path: a typed
//! [`DeltaBatch`](ingest::DeltaBatch) (appends and/or deletes against
//! one table) is applied through [`HyperSession::refresh`]
//! (core::HyperSession::refresh), which swaps in a post-delta session
//! MVCC-style while keeping — as pure cache hits — every relevant view
//! whose filter provably admits none of the changed rows and every
//! estimator trained over a surviving view. The answer is the
//! invalidation report (`views_kept`, `estimators_invalidated`,
//! `blocks_invalidated`, …) plus a `data_version` counter that also
//! appears in `/stats` and `/explain`, so answers correlate with the
//! data they were computed over. Before the swap, the encoded delta is
//! fsync'd onto a `HYPD1` append log beside the tenant's snapshot and
//! replayed on restart: an acknowledged ingest survives a crash.
//!
//! Responses render floats in shortest-round-trip form, so a client
//! re-parsing `value` recovers the library-path `f64` bit-for-bit — the
//! serve test suite asserts equality with `==`, not a tolerance.
//! Because sessions share the process-wide artifact store, tenants
//! serving content-identical snapshots share views and estimators
//! across the wire too (`examples/serve_tenants.rs` boots a server with
//! two tenants over one dataset and asserts via `/stats` that the
//! second trained nothing). See `crates/serve/README.md` for the full
//! protocol and the failure-mode table.
//!
//! ## Execution model: morsels, determinism, and out-of-core tables
//!
//! Every data-parallel path in the workspace follows one morsel-driven
//! execution model (see `crates/storage/src/lib.rs` for the full
//! contract). Tables are processed as **morsels** — fixed row ranges of
//! [`DEFAULT_MORSEL_ROWS`](storage::DEFAULT_MORSEL_ROWS) rows — fanned
//! out over the process-wide [`HyperRuntime`](runtime::HyperRuntime)
//! worker pool and merged back **in morsel order**. Morsel boundaries
//! depend only on the row count and the morsel size, never on how many
//! workers happen to drain them, and any fold whose result depends on
//! operation order (float accumulation, group first-occurrence order,
//! join match order) runs sequentially over the merged stream. The
//! result: filter, expression evaluation, group-by aggregation, hash
//! join, table encoding, and forest prediction are all **bit-identical**
//! (`f64::to_bits`-level) to their sequential runs regardless of worker
//! count — property-tested across worker counts and morsel sizes in
//! `crates/storage/tests/prop_morsel.rs` and
//! `crates/ml/tests/morsel_parity.rs`.
//!
//! Tables larger than memory (or than a configured budget) ride the
//! same granularity out of core: [`store::PagedTable`] spills a table
//! into per-morsel `HYPR1` column chunks on disk and scans them
//! chunk-at-a-time under a resident-byte LRU budget, so the 1M-row
//! benchmark scale point (`*_german_1m` in `bench_smoke`, with serve
//! p50/p99 tail latency) runs under budgets far smaller than the data.
//!
//! Forest **training** streams over the same chunks. When
//! `SessionBuilder::train_budget_bytes` is set and the dense encoded
//! matrix would exceed it, estimator fitting routes through
//! [`ml::StreamedLayout`]: pass one streams the chunks to fix per-feature
//! bin boundaries, pass two fills the binned cell statistics, and the
//! morsel-parallel per-tree fit runs off that layout — resident state
//! is one chunk plus splits, cell statistics, and a 4-byte-per-row
//! cell-id vector instead of the 8·width-bytes-per-row dense matrix,
//! which never exists. The streamed forest is
//! **bit-identical** to the resident trainer's for any worker count,
//! chunk size, and paging budget (property-tested in
//! `crates/store/tests/prop_stream_train.rs`), so budgeted and
//! unbudgeted sessions share fitted estimators through the artifact
//! cache. `SessionStats::snapshot()` and `/stats` report
//! `trainings_streamed`, `train_chunks_streamed`,
//! `train_peak_resident_bytes`, and the process-wide paging counters.

pub use hyper_causal as causal;
pub use hyper_core as core;
pub use hyper_datasets as datasets;
pub use hyper_ingest as ingest;
pub use hyper_ip as ip;
pub use hyper_ml as ml;
pub use hyper_query as query;
pub use hyper_runtime as runtime;
pub use hyper_serve as serve;
pub use hyper_storage as storage;
pub use hyper_store as store;

/// Common imports for applications.
pub mod prelude {
    pub use hyper_causal::{BlockDecomposition, CausalGraph, Intervention, InterventionOp, Scm};
    #[allow(deprecated)]
    pub use hyper_core::HyperEngine;
    pub use hyper_core::{
        exact_whatif, BackdoorMode, CacheBudget, EngineConfig, ExplainReport, HowToOptions,
        HowToResult, HyperSession, IntoQuery, Phase, PreparedQuery, Provenance, QueryOutcome,
        QueryTimings, RefreshOutcome, RefreshReport, SessionBuilder, SessionStats,
        SharedArtifactStore, WhatIfResult,
    };
    pub use hyper_datasets::Dataset;
    pub use hyper_ingest::{DeltaBatch, TableDelta};
    pub use hyper_query::{
        parse_query, Bindings, HExpr, HowTo, HypotheticalQuery, QueryKey, WhatIf,
    };
    pub use hyper_runtime::HyperRuntime;
    pub use hyper_serve::{ServeConfig, Server};
    pub use hyper_storage::{AggFunc, Database, Table, Value};
    pub use hyper_store::{Snapshot, SnapshotRegistry, StoreError};
}
