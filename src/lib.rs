//! # HypeR — hypothetical reasoning with what-if and how-to queries
//!
//! A Rust reproduction of *"HypeR: Hypothetical Reasoning With What-If and
//! How-To Queries Using a Probabilistic Causal Approach"* (SIGMOD 2022).
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`storage`] | in-memory relational engine (tables, joins, group-by, stats, support index) |
//! | [`causal`]  | causal graphs, ground graphs, blocks, backdoor sets, SCMs |
//! | [`ml`]      | regression forests, linear models, encoders, discretizers |
//! | [`ip`]      | simplex LP + branch-and-bound 0-1 ILP + enumeration oracle |
//! | [`query`]   | the extended SQL language (`Use`/`When`/`Update`/`Output`/`For`, `HowToUpdate`/`Limit`/`ToMaximize`) |
//! | [`core`]    | the HypeR engine: sessions, prepared queries, what-if estimation, how-to optimization |
//! | [`datasets`] | workload generators (German, German-Syn, Adult, Amazon, Student-Syn) |
//!
//! ## Quickstart
//!
//! The entry point is a [`HyperSession`](core::HyperSession): an owned,
//! thread-safe handle over a database and its causal graph that caches the
//! expensive intermediates (relevant views, block decompositions, fitted
//! estimators) across queries. Prepare a query once, execute it as often
//! as you like, and fan batches out across threads:
//!
//! ```
//! use hyper_repro::prelude::*;
//!
//! // Figure 1's toy Amazon database with the Figure 2 causal graph.
//! let data = hyper_repro::datasets::amazon::amazon_figure1();
//! let session = HyperSession::builder(data.db).graph(data.graph).build();
//!
//! // The Figure 4 what-if query, prepared once.
//! let prepared = session.prepare(
//!     "Use (Select T1.pid, T1.category, T1.price, T1.brand,
//!              Avg(sentiment) As senti, Avg(T2.rating) As rtng
//!           From product As T1, review As T2
//!           Where T1.pid = T2.pid
//!           Group By T1.pid, T1.category, T1.price, T1.brand)
//!      When brand = 'Asus'
//!      Update(price) = 1.1 * Pre(price)
//!      Output Avg(Post(rtng))
//!      For Pre(category) = 'Laptop'",
//! ).unwrap();
//!
//! // First execution builds the view and trains the estimator…
//! let result = prepared.execute_whatif().unwrap();
//! assert!(result.value >= 1.0 && result.value <= 5.0);
//!
//! // …repeat executions are pure cache hits.
//! let again = prepared.execute_whatif().unwrap();
//! assert_eq!(result.value, again.value);
//! assert!(session.stats().estimator_hits > 0);
//!
//! // Ad-hoc text and parallel batches share the same cache.
//! let outcomes = session.execute_batch(&[
//!     "Use product Update(price) = 0.9 * Pre(price) Output Count(*)",
//!     "Use product Update(price) = 1.2 * Pre(price) Output Count(*)",
//! ]);
//! assert!(outcomes.iter().all(|o| o.is_ok()));
//! ```

pub use hyper_causal as causal;
pub use hyper_core as core;
pub use hyper_datasets as datasets;
pub use hyper_ip as ip;
pub use hyper_ml as ml;
pub use hyper_query as query;
pub use hyper_storage as storage;

/// Common imports for applications.
pub mod prelude {
    pub use hyper_causal::{BlockDecomposition, CausalGraph, Intervention, InterventionOp, Scm};
    #[allow(deprecated)]
    pub use hyper_core::HyperEngine;
    pub use hyper_core::{
        exact_whatif, BackdoorMode, EngineConfig, HowToOptions, HowToResult, HyperSession,
        PreparedQuery, QueryOutcome, SessionBuilder, SessionStats, WhatIfResult,
    };
    pub use hyper_datasets::Dataset;
    pub use hyper_query::{parse_query, HypotheticalQuery};
    pub use hyper_storage::{Database, Table, Value};
}
