//! `hyper-snapshot` — save, inspect, and load durable `HYPR1` scenario
//! snapshots (database + causal graph).
//!
//! ```text
//! hyper-snapshot save --dataset german-syn --rows 10000 --seed 1 --out german.hypr
//! hyper-snapshot save --csv data.csv --table mytable --out data.hypr
//! hyper-snapshot inspect german.hypr
//! hyper-snapshot load german.hypr
//! ```
//!
//! `save` builds a snapshot from a bundled dataset generator (with its
//! causal graph) or a CSV whose first line is the header row (no
//! separate schema file — types are inferred per column, empty cells
//! are NULL, fields split on plain commas with no quoting; no graph).
//! `inspect` prints the section table and fingerprints
//! without decoding the data sections. `load` fully decodes and
//! re-validates checksums, structure, and content fingerprints — its
//! exit code is the file's health check.

use std::process::ExitCode;

use hyper_repro::datasets;
use hyper_repro::storage::{Column, DataType, Database, Field, Schema, TableBuilder, Value};
use hyper_repro::store::{Snapshot, StoreError};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hyper-snapshot save --dataset <german-syn|german|adult|amazon|student-syn> \
         [--rows N] [--seed S] --out FILE\n  hyper-snapshot save --csv FILE --table NAME --out FILE\n  \
         hyper-snapshot inspect FILE\n  hyper-snapshot load FILE"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    match command.as_str() {
        "save" => {
            let Some(out) = flag("--out") else {
                return usage();
            };
            let snapshot = if let Some(name) = flag("--dataset") {
                let rows: usize = flag("--rows")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(10_000);
                let seed: u64 = flag("--seed").and_then(|s| s.parse().ok()).unwrap_or(1);
                let data = match name.as_str() {
                    "german-syn" => datasets::german_syn(rows, seed),
                    "german" => datasets::german(seed),
                    "adult" => datasets::adult(rows, seed),
                    "amazon" => datasets::amazon(rows, 3, seed),
                    "student-syn" => datasets::student_syn(rows, 4, seed),
                    other => {
                        eprintln!("unknown dataset `{other}`");
                        return usage();
                    }
                };
                Snapshot::new(data.db, Some(data.graph))
            } else if let Some(path) = flag("--csv") {
                let Some(table) = flag("--table") else {
                    return usage();
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match load_csv_inferred(&table, &text) {
                    Ok(db) => Snapshot::new(db, None),
                    Err(e) => {
                        eprintln!("cannot parse {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                return usage();
            };
            if let Err(e) = snapshot.save(&out) {
                eprintln!("save failed: {e}");
                return ExitCode::FAILURE;
            }
            let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
            println!(
                "wrote {out}: {} table(s), {} total row(s), {} KiB, db fingerprint {:#018x}",
                snapshot.database.tables().len(),
                snapshot.database.total_rows(),
                bytes / 1024,
                snapshot.database.fingerprint(),
            );
            ExitCode::SUCCESS
        }
        "inspect" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match Snapshot::inspect(path) {
                Ok(info) => {
                    println!("{path}: HYPR1 snapshot, {} bytes", info.file_bytes);
                    println!(
                        "  database fingerprint: {:#018x}",
                        info.database_fingerprint
                    );
                    if info.graph_fingerprint != 0 {
                        println!("  graph fingerprint:    {:#018x}", info.graph_fingerprint);
                    } else {
                        println!("  graph fingerprint:    (no graph)");
                    }
                    println!("  sections:");
                    for (tag, len) in &info.sections {
                        println!("    {tag:<4} {len:>10} bytes");
                    }
                    println!("  tables:");
                    for (name, rows, cols) in &info.tables {
                        println!("    {name:<20} {rows:>8} rows × {cols} columns");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("inspect failed: {e}");
                    exit_code_for(&e)
                }
            }
        }
        "load" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match Snapshot::load(path) {
                Ok(s) => {
                    println!(
                        "{path}: OK — {} table(s), {} row(s), graph: {}, db fingerprint {:#018x}",
                        s.database.tables().len(),
                        s.database.total_rows(),
                        if s.graph.is_some() { "yes" } else { "no" },
                        s.database.fingerprint(),
                    );
                    for t in s.database.tables() {
                        println!(
                            "  {:<20} {:>8} rows × {} columns (fingerprint {:#018x})",
                            t.name(),
                            t.num_rows(),
                            t.num_columns(),
                            t.fingerprint(),
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("load failed: {e}");
                    exit_code_for(&e)
                }
            }
        }
        _ => usage(),
    }
}

/// Distinct exit codes per failure family, so scripts can tell a damaged
/// file (3) from a format-version skew (4) from plain I/O trouble (1).
fn exit_code_for(e: &StoreError) -> ExitCode {
    ExitCode::from(match e {
        StoreError::Io(_) => 1,
        StoreError::Corrupt(_) | StoreError::FingerprintMismatch { .. } => 3,
        StoreError::VersionMismatch { .. } => 4,
        StoreError::Unsupported(_) | StoreError::Query(_) => 2,
    })
}

/// Load a CSV with a header row, inferring each column's type from its
/// values (Int ⊂ Float; otherwise Str; empty cells are NULL). Fields
/// are split on raw commas — RFC-4180 quoting is **not** supported, so
/// quoted input is rejected up front instead of silently ingesting
/// quote characters (or splitting inside a quoted field).
fn load_csv_inferred(table: &str, text: &str) -> Result<Database, String> {
    if text.contains('"') {
        return Err(
            "quoted CSV is not supported (fields are split on raw commas); \
             strip quotes or use values without embedded commas"
                .into(),
        );
    }
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty file")?;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); names.len()];
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row: Vec<&str> = line.split(',').map(str::trim).collect();
        if row.len() != names.len() {
            return Err(format!(
                "line {}: {} field(s), expected {}",
                lineno + 2,
                row.len(),
                names.len()
            ));
        }
        for (c, v) in row.iter().enumerate() {
            cells[c].push((*v).to_string());
        }
    }
    let infer = |col: &[String]| -> DataType {
        let non_empty = col.iter().filter(|v| !v.is_empty());
        let mut dt = DataType::Int;
        for v in non_empty {
            if v.parse::<i64>().is_ok() {
                continue;
            }
            if v.parse::<f64>().is_ok() {
                if dt == DataType::Int {
                    dt = DataType::Float;
                }
                continue;
            }
            return DataType::Str;
        }
        dt
    };
    let fields: Vec<Field> = names
        .iter()
        .zip(&cells)
        .map(|(n, col)| Field::nullable((*n).to_string(), infer(col)))
        .collect();
    let schema = Schema::new(fields.clone()).map_err(|e| e.to_string())?;
    let mut b = TableBuilder::new(table, schema);
    for (field, col) in fields.iter().zip(&cells) {
        let mut column = Column::new(field.data_type);
        for v in col {
            let value = if v.is_empty() {
                Value::Null
            } else {
                match field.data_type {
                    DataType::Int => Value::Int(v.parse().unwrap()),
                    DataType::Float => Value::Float(v.parse().unwrap()),
                    _ => Value::str(v),
                }
            };
            column.push(&value).map_err(|e| e.to_string())?;
        }
        b.set_column(&field.name, column)
            .map_err(|e| e.to_string())?;
    }
    let mut db = Database::new();
    db.add_table(b.build()).map_err(|e| e.to_string())?;
    Ok(db)
}
