//! Property: after an arbitrary [`DeltaBatch`], every query answered by
//! a refreshed session is **bit-identical** to a cold rebuild on the
//! post-delta database — touched and untouched blocks, append-only and
//! deleting deltas, with and without a causal graph, and regardless of
//! which artifact tiers (local / shared / disk) served the survivors.
//!
//! This is the safety contract of block-scoped causal invalidation: the
//! survival analysis may keep or drop whatever it likes, but answers
//! must never drift from the from-scratch oracle.

use std::collections::HashMap;

use hyper_repro::prelude::*;
use hyper_repro::storage::DataType;
use proptest::prelude::*;

/// The three query shapes exercised per case: a filtered view (survives
/// when the delta misses the predicate), a full-table view (invalidated
/// by any touch), and a deterministic fast-path query (no estimator).
const QUERIES: [&str; 3] = [
    "Use (Select b, y From t Where z = 0) Update(b) = Pre(b) + 1 Output Avg(Post(y))",
    "Use t Update(b) = Pre(b) + 1 Output Avg(Post(y))",
    "Use t Update(y) = Pre(y) * 2 Output Avg(Post(y))",
];

#[derive(Debug, Clone)]
struct DeltaSpec {
    /// Base-table rows.
    n: usize,
    /// Appended rows (0 = delete-only / no-op deltas allowed).
    appends: usize,
    /// Raw delete indices, reduced mod the base size.
    deletes: Vec<usize>,
    seed: u64,
    with_graph: bool,
    with_disk: bool,
}

fn arb_spec() -> impl Strategy<Value = DeltaSpec> {
    (
        20usize..60,
        0usize..8,
        proptest::collection::vec(0usize..1000, 0..5),
        0u64..10_000,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(n, appends, deletes, seed, with_graph, with_disk)| DeltaSpec {
                n,
                appends,
                deletes,
                seed,
                with_graph,
                with_disk,
            },
        )
}

/// A z → b → y chain with the z → y confounding edge — the smallest
/// graph where backdoor adjustment is non-trivial.
fn chain_scm() -> Scm {
    let mut scm = Scm::new();
    scm.add_node(
        "z",
        DataType::Int,
        &[],
        hyper_repro::causal::Mechanism::CategoricalPrior(vec![
            (Value::Int(0), 0.5),
            (Value::Int(1), 0.5),
        ]),
    )
    .unwrap();
    let mut bt = HashMap::new();
    for z in 0..2i64 {
        bt.insert(
            vec![Value::Int(z)],
            vec![
                (Value::Int(0), 0.3 + 0.4 * z as f64),
                (Value::Int(1), 0.7 - 0.4 * z as f64),
            ],
        );
    }
    scm.add_node(
        "b",
        DataType::Int,
        &["z"],
        hyper_repro::causal::Mechanism::DiscreteCpd {
            table: bt,
            default: vec![(Value::Int(0), 1.0)],
        },
    )
    .unwrap();
    let mut yt = HashMap::new();
    for z in 0..2i64 {
        for b in 0..2i64 {
            yt.insert(
                vec![Value::Int(z), Value::Int(b)],
                vec![
                    (Value::Int(0), 0.2 + 0.2 * z as f64 + 0.3 * b as f64),
                    (Value::Int(1), 0.8 - 0.2 * z as f64 - 0.3 * b as f64),
                ],
            );
        }
    }
    scm.add_node(
        "y",
        DataType::Int,
        &["z", "b"],
        hyper_repro::causal::Mechanism::DiscreteCpd {
            table: yt,
            default: vec![(Value::Int(0), 1.0)],
        },
    )
    .unwrap();
    scm
}

fn build_session(
    db: Database,
    graph: Option<CausalGraph>,
    disk: Option<&std::path::Path>,
) -> HyperSession {
    let config = if graph.is_some() {
        EngineConfig::hyper()
    } else {
        EngineConfig::hyper_nb()
    };
    let mut b = HyperSession::builder(db).maybe_graph(graph).config(config);
    if let Some(dir) = disk {
        b = b.persist_dir(dir);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn refreshed_answers_equal_cold_rebuild_bit_for_bit(spec in arb_spec()) {
        let scm = chain_scm();
        let base = scm.sample("t", spec.n, spec.seed).unwrap();
        let mut db = Database::new();
        db.add_table(base).unwrap();
        let graph = spec.with_graph.then(|| scm.to_causal_graph("t"));

        let disk_dir = spec.with_disk.then(|| {
            std::env::temp_dir().join(format!(
                "hyper_prop_ingest_{}_{}",
                std::process::id(),
                spec.seed
            ))
        });
        let session = build_session(db.clone(), graph.clone(), disk_dir.as_deref());

        // Warm every artifact so refresh has something to keep or drop.
        for q in QUERIES {
            session.whatif_text(q).unwrap();
        }

        // An arbitrary delta: sampled appends (same schema, fresh seed)
        // plus deletes folded into range.
        let mut delta = DeltaBatch::new();
        if spec.appends > 0 {
            delta = delta.append(scm.sample("t", spec.appends, spec.seed ^ 0x9E37).unwrap());
        }
        let mut deletes: Vec<usize> = spec.deletes.iter().map(|&i| i % spec.n).collect();
        deletes.sort_unstable();
        deletes.dedup();
        if !deletes.is_empty() {
            delta = delta.delete("t", deletes);
        }
        if delta.is_empty() {
            delta = delta.delete("t", vec![0]);
        }

        let out = session.refresh(&delta).unwrap();
        prop_assert_eq!(out.report.data_version, 1);

        // The oracle: a cold, tier-free session over the post-delta
        // database (no shared store, no disk — nothing to inherit from).
        let post = delta.apply(session.database()).unwrap();
        let cold = {
            let config = if graph.is_some() {
                EngineConfig::hyper()
            } else {
                EngineConfig::hyper_nb()
            };
            HyperSession::builder(post)
                .maybe_graph(graph.clone())
                .config(config)
                .share_artifacts(false)
                .build()
        };

        for q in QUERIES {
            let warm = out.session.whatif_text(q).unwrap();
            let oracle = cold.whatif_text(q).unwrap();
            prop_assert_eq!(
                warm.value.to_bits(),
                oracle.value.to_bits(),
                "query {} drifted after refresh: warm {} vs cold {}",
                q, warm.value, oracle.value
            );
        }

        if let Some(dir) = disk_dir {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}
