//! Property-based invariants across the stack: possible-world mass
//! conservation in the exact oracle, range/complement bounds on estimates,
//! and storage-operator algebra on random tables.

use std::collections::HashMap;

use hyper_repro::prelude::*;
use hyper_repro::storage::{col, lit, ops, DataType, Field, Schema, Table};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random discrete SCMs: z → b → y with z → y (confounded chain).
// ---------------------------------------------------------------------

fn arb_prob() -> impl Strategy<Value = f64> {
    // Bounded away from 0/1 so every observed tuple has positive mass.
    (5u32..=95).prop_map(|p| p as f64 / 100.0)
}

#[derive(Debug, Clone)]
struct ScmSpec {
    pz: f64,
    pb: [f64; 2],
    py: [f64; 4],
    n: usize,
    seed: u64,
}

fn arb_scm() -> impl Strategy<Value = ScmSpec> {
    (
        arb_prob(),
        [arb_prob(), arb_prob()],
        [arb_prob(), arb_prob(), arb_prob(), arb_prob()],
        200usize..800,
        0u64..1000,
    )
        .prop_map(|(pz, pb, py, n, seed)| ScmSpec {
            pz,
            pb,
            py,
            n,
            seed,
        })
}

fn build(spec: &ScmSpec) -> (Scm, Database) {
    let mut scm = Scm::new();
    scm.add_node(
        "z",
        DataType::Int,
        &[],
        hyper_repro::causal::Mechanism::CategoricalPrior(vec![
            (Value::Int(0), 1.0 - spec.pz),
            (Value::Int(1), spec.pz),
        ]),
    )
    .unwrap();
    let mut bt = HashMap::new();
    for z in 0..2i64 {
        bt.insert(
            vec![Value::Int(z)],
            vec![
                (Value::Int(0), 1.0 - spec.pb[z as usize]),
                (Value::Int(1), spec.pb[z as usize]),
            ],
        );
    }
    scm.add_node(
        "b",
        DataType::Int,
        &["z"],
        hyper_repro::causal::Mechanism::DiscreteCpd {
            table: bt,
            default: vec![(Value::Int(0), 1.0)],
        },
    )
    .unwrap();
    let mut yt = HashMap::new();
    for z in 0..2i64 {
        for b in 0..2i64 {
            let p = spec.py[(2 * z + b) as usize];
            yt.insert(
                vec![Value::Int(z), Value::Int(b)],
                vec![(Value::Int(0), 1.0 - p), (Value::Int(1), p)],
            );
        }
    }
    scm.add_node(
        "y",
        DataType::Int,
        &["z", "b"],
        hyper_repro::causal::Mechanism::DiscreteCpd {
            table: yt,
            default: vec![(Value::Int(0), 1.0)],
        },
    )
    .unwrap();
    let table = scm.sample("d", spec.n, spec.seed).unwrap();
    let mut db = Database::new();
    db.add_table(table).unwrap();
    (scm, db)
}

fn parse_whatif(text: &str) -> hyper_repro::query::WhatIfQuery {
    match parse_query(text).unwrap() {
        HypotheticalQuery::WhatIf(q) => q,
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact oracle conserves probability mass: the expected counts of
    /// `y = 0` and `y = 1` after any update sum to the number of tuples.
    #[test]
    fn oracle_mass_conservation(spec in arb_scm()) {
        let (scm, db) = build(&spec);
        let data = db.table("d").unwrap();
        let q0 = parse_whatif("Use d Update(b) = 1 Output Count(Post(y) = 0)");
        let q1 = parse_whatif("Use d Update(b) = 1 Output Count(Post(y) = 1)");
        let c0 = exact_whatif(&scm, data, &q0).unwrap();
        let c1 = exact_whatif(&scm, data, &q1).unwrap();
        prop_assert!((c0 + c1 - spec.n as f64).abs() < 1e-6,
            "mass {c0} + {c1} != {}", spec.n);
    }

    /// Oracle counts are bounded by the scope size, and bounded below by 0.
    #[test]
    fn oracle_counts_in_range(spec in arb_scm()) {
        let (scm, db) = build(&spec);
        let data = db.table("d").unwrap();
        let q = parse_whatif(
            "Use d When z = 0 Update(b) = 1 Output Count(Post(y) = 1) For Pre(z) = 0");
        let c = exact_whatif(&scm, data, &q).unwrap();
        let z0 = data.column_by_name("z").unwrap().iter()
            .filter(|v| *v == Value::Int(0)).count() as f64;
        prop_assert!(c >= -1e-9 && c <= z0 + 1e-9, "count {c} not in [0, {z0}]");
    }

    /// The estimator's Count output respects the same bounds.
    #[test]
    fn estimator_counts_in_range(spec in arb_scm()) {
        let (scm, db) = build(&spec);
        let graph = scm.to_causal_graph("d");
        let engine = HyperSession::new(db.clone(), Some(&graph))
            .with_config(EngineConfig { n_trees: 8, max_depth: 6, ..EngineConfig::hyper() });
        let r = engine
            .whatif_text("Use d Update(b) = 1 Output Count(Post(y) = 1)")
            .unwrap();
        prop_assert!(r.value >= -1e-9 && r.value <= spec.n as f64 + 1e-9);
    }

    /// Avg outputs stay within the observed domain of the outcome.
    #[test]
    fn estimator_avg_in_domain(spec in arb_scm()) {
        let (scm, db) = build(&spec);
        let graph = scm.to_causal_graph("d");
        let engine = HyperSession::new(db.clone(), Some(&graph))
            .with_config(EngineConfig { n_trees: 8, max_depth: 6, ..EngineConfig::hyper() });
        let r = engine
            .whatif_text("Use d Update(b) = 0 Output Avg(Post(y))")
            .unwrap();
        prop_assert!(r.value >= 0.0 && r.value <= 1.0, "avg y = {}", r.value);
    }
}

// ---------------------------------------------------------------------
// Storage-operator algebra on random tables.
// ---------------------------------------------------------------------

fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec((0i64..5, 0i64..4, -100i64..100), 1..60).prop_map(|rows| {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("h", DataType::Int),
            Field::new("x", DataType::Int),
        ])
        .unwrap();
        let mut t = hyper_repro::storage::TableBuilder::new("t", schema);
        for (g, h, x) in rows {
            t.push(vec![g.into(), h.into(), x.into()]).unwrap();
        }
        t.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// σ_a(σ_b(T)) = σ_{a∧b}(T).
    #[test]
    fn filter_composition(t in arb_table(), k in 0i64..5) {
        let a = col("g").eq(lit(k));
        let b = col("x").ge(lit(0));
        let sequential = ops::filter::filter(&ops::filter::filter(&t, &a).unwrap(), &b).unwrap();
        let combined = ops::filter::filter(&t, &a.clone().and(b.clone())).unwrap();
        prop_assert_eq!(sequential.num_rows(), combined.num_rows());
    }

    /// Global SUM equals the sum of per-group SUMs (decomposability,
    /// Definition 6 of the paper).
    #[test]
    fn sum_decomposes_over_groups(t in arb_table()) {
        use hyper_repro::storage::{AggExpr, AggFunc};
        let global = ops::aggregate::aggregate(
            &t, &[], &[AggExpr::new(AggFunc::Sum, Some(col("x")), "s")]).unwrap();
        let grouped = ops::aggregate::aggregate(
            &t, &["g".into()], &[AggExpr::new(AggFunc::Sum, Some(col("x")), "s")]).unwrap();
        let total: f64 = (0..grouped.num_rows())
            .map(|i| grouped.column(1).f64_at(i).unwrap())
            .sum();
        prop_assert!((global.column(0).f64_at(0).unwrap() - total).abs() < 1e-9);
    }

    /// Self-join on the key column g: every output row satisfies the key
    /// equality, and the count equals Σ_g n_g².
    #[test]
    fn join_count_identity(t in arb_table()) {
        let mut renamed = Vec::new();
        for f in t.schema().fields() {
            renamed.push(format!("r_{}", f.name));
        }
        let right = hyper_repro::storage::plan::rename(&t, &renamed).unwrap();
        let joined = ops::join::hash_join(&t, &right, &["g".into()], &["r_g".into()]).unwrap();
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for v in t.column_by_name("g").unwrap().iter() {
            *counts.entry(v.as_i64().unwrap()).or_insert(0) += 1;
        }
        let expected: usize = counts.values().map(|c| c * c).sum();
        prop_assert_eq!(joined.num_rows(), expected);
    }

    /// Gather with all indices is the identity.
    #[test]
    fn gather_identity(t in arb_table()) {
        let idx: Vec<usize> = (0..t.num_rows()).collect();
        let g = t.gather(&idx);
        for c in 0..t.num_columns() {
            prop_assert_eq!(g.column(c), t.column(c));
        }
    }
}
