//! Cross-crate integration tests: full pipelines from query text through
//! parsing, view construction, causal estimation, and optimization, on the
//! generated workloads.

use hyper_repro::prelude::*;
use hyper_repro::storage::csv;

#[test]
fn figure4_pipeline_on_simulated_amazon() {
    let data = hyper_repro::datasets::amazon(600, 8, 11);
    let engine = HyperSession::new(data.db.clone(), Some(&data.graph));
    let r = engine
        .whatif_text(
            "Use (Select T1.pid, T1.category, T1.price, T1.brand, T1.quality,
                     Avg(sentiment) As senti, Avg(T2.rating) As rtng
              From product As T1, review As T2
              Where T1.pid = T2.pid
              Group By T1.pid, T1.category, T1.price, T1.brand, T1.quality)
         When brand = 'Asus'
         Update(price) = 1.1 * Pre(price)
         Output Avg(Post(rtng))
         For Pre(category) = 'Laptop'",
        )
        .unwrap();
    assert!(
        r.value >= 1.0 && r.value <= 5.0,
        "rating in range: {}",
        r.value
    );
    assert!(r.n_scope_rows > 0);
    assert!(r.n_updated_rows > 0);
    // The graph-derived backdoor must include quality (the confounder of
    // price → rating in Figure 2).
    assert!(
        r.backdoor.iter().any(|c| c == "quality"),
        "backdoor {:?}",
        r.backdoor
    );
}

#[test]
fn whatif_is_deterministic_for_a_fixed_config() {
    let data = hyper_repro::datasets::german_syn(5000, 2);
    let engine = HyperSession::new(data.db.clone(), Some(&data.graph));
    let q = "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')";
    let a = engine.whatif_text(q).unwrap();
    let b = engine.whatif_text(q).unwrap();
    assert_eq!(a.value, b.value, "seeded estimation must be reproducible");
}

#[test]
fn german_syn_estimate_tracks_structural_ground_truth() {
    let data = hyper_repro::datasets::german_syn(20_000, 4);
    let engine = HyperSession::new(data.db.clone(), Some(&data.graph));
    let est = engine
        .whatif_text("Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')")
        .unwrap();
    // Ground truth: replay do(status = 3) through the structural equations.
    let scm = data.scm.as_ref().unwrap();
    let (_, post) = scm
        .sample_paired(
            "g",
            40_000,
            123,
            &[Intervention::new(
                "status",
                InterventionOp::Set(Value::Int(3)),
            )],
            None,
        )
        .unwrap();
    let p_good = post
        .column_by_name("credit")
        .unwrap()
        .iter()
        .filter(|v| v.as_str() == Some("Good"))
        .count() as f64
        / post.num_rows() as f64;
    let est_p = est.value / est.n_view_rows as f64;
    assert!(
        (est_p - p_good).abs() < 0.05,
        "estimated share {est_p:.3} vs ground truth {p_good:.3}"
    );
}

#[test]
fn student_multirelation_view_and_blocks() {
    let data = hyper_repro::datasets::student_syn(400, 5, 9);
    let engine = HyperSession::new(data.db.clone(), Some(&data.graph));
    // One block per student.
    let blocks = engine.block_decomposition().unwrap();
    assert_eq!(blocks.num_blocks(), 400);

    let r = engine
        .whatif_text(
            "Use (Select S.sid, S.age, S.country, S.attendance,
                     Avg(P.assignment) As assignment, Avg(P.grade) As grade
              From student As S, participation As P
              Where S.sid = P.sid
              Group By S.sid, S.age, S.country, S.attendance)
             Update(attendance) = 95
             Output Avg(Post(grade))",
        )
        .unwrap();
    assert_eq!(r.n_view_rows, 400);
    // Raising attendance to 95 must raise the average grade.
    let baseline: f64 = {
        let t = data.db.table("participation").unwrap();
        let g = t.column_by_name("grade").unwrap();
        g.iter().map(|v| v.as_f64().unwrap()).sum::<f64>() / g.len() as f64
    };
    assert!(
        r.value > baseline,
        "attendance→95 should raise grades: {} vs {baseline}",
        r.value
    );
}

#[test]
fn howto_pipeline_ip_vs_bruteforce_on_german_syn() {
    let data = hyper_repro::datasets::german_syn(4000, 6);
    let engine =
        HyperSession::new(data.db.clone(), Some(&data.graph)).with_howto_options(HowToOptions {
            buckets: 3,
            max_attrs_updated: Some(1),
        });
    let text = "Use german_syn
                HowToUpdate status, housing
                ToMaximize Count(Post(credit) = 'Good')";
    let ip = engine.howto_text(text).unwrap();
    let q = match parse_query(text).unwrap() {
        HypotheticalQuery::HowTo(q) => q,
        _ => unreachable!(),
    };
    let brute = engine.howto_bruteforce(&q).unwrap();
    assert!((ip.objective - brute.objective).abs() < 1e-9);
    // Status dominates housing in the credit equation.
    assert_eq!(ip.chosen.len(), 1);
    assert!(ip.chosen[0].attr.eq_ignore_ascii_case("status"));
    assert!(
        brute.whatif_evals > ip.whatif_evals,
        "brute force works harder"
    );
}

#[test]
fn execute_dispatch_and_error_paths() {
    let data = hyper_repro::datasets::german_syn(1000, 8);
    let engine = HyperSession::new(data.db.clone(), Some(&data.graph));
    let out = engine
        .execute("Use german_syn Update(status) = 1 Output Count(Post(credit) = 'Good')")
        .unwrap();
    assert!(matches!(out, QueryOutcome::WhatIf(_)));
    // Parse errors surface cleanly.
    assert!(engine.execute("Use german_syn nonsense").is_err());
    // Kind mismatch.
    assert!(engine
        .howto_text("Use german_syn Update(status) = 1 Output Count(*)")
        .is_err());
}

#[test]
fn prepared_queries_and_batches_through_the_umbrella_crate() {
    let data = hyper_repro::datasets::german_syn(4000, 3);
    let session = HyperSession::builder(data.db).graph(data.graph).build();
    let q = "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')";

    let prepared = session.prepare(q).unwrap();
    let a = prepared.execute_whatif().unwrap();
    let b = prepared.execute_whatif().unwrap();
    assert_eq!(a.value, b.value);
    let stats = session.stats();
    assert_eq!(stats.view_misses, 1);
    assert_eq!(stats.estimator_misses, 1);
    assert!(stats.estimator_hits >= 1, "second run came from the cache");

    // A batch over variations of the same scenario shares the view.
    let batch = session.execute_batch(&[
        "Use german_syn Update(status) = 1 Output Count(Post(credit) = 'Good')",
        "Use german_syn Update(status) = 2 Output Count(Post(credit) = 'Good')",
        q, // already cached: free
    ]);
    assert!(batch.iter().all(|r| r.is_ok()));
    match &batch[2] {
        Ok(QueryOutcome::WhatIf(r)) => assert_eq!(r.value, a.value),
        other => panic!("unexpected outcome {other:?}"),
    }
    assert_eq!(
        session.stats().view_misses,
        1,
        "one view for the whole session"
    );
}

#[test]
fn csv_round_trip_of_generated_data() {
    let data = hyper_repro::datasets::german_syn(500, 10);
    let table = data.db.table("german_syn").unwrap();
    let text = csv::to_csv(table);
    let back = csv::from_csv("german_syn", table.schema().clone(), &text).unwrap();
    assert_eq!(back.num_rows(), table.num_rows());
    assert_eq!(
        back.fingerprint(),
        table.fingerprint(),
        "CSV round-trip preserves full content"
    );
}

#[test]
fn variants_run_on_the_same_query() {
    let data = hyper_repro::datasets::german_syn(6000, 12);
    let q = "Use german_syn Update(savings) = 3 Output Count(Post(credit) = 'Good')";

    let hyper = HyperSession::new(data.db.clone(), Some(&data.graph))
        .whatif_text(q)
        .unwrap();
    let nb = HyperSession::new(data.db.clone(), None)
        .with_config(EngineConfig::hyper_nb())
        .whatif_text(q)
        .unwrap();
    let sampled = HyperSession::new(data.db.clone(), Some(&data.graph))
        .with_config(EngineConfig::hyper_sampled(2000))
        .whatif_text(q)
        .unwrap();
    let indep = HyperSession::new(data.db.clone(), None)
        .with_config(EngineConfig::indep())
        .whatif_text(q)
        .unwrap();

    for (name, r) in [
        ("hyper", &hyper),
        ("nb", &nb),
        ("sampled", &sampled),
        ("indep", &indep),
    ] {
        assert!(
            r.value >= 0.0 && r.value <= 6000.0,
            "{name} out of range: {}",
            r.value
        );
    }
    // NB conditions on more attributes than HypeR.
    assert!(nb.backdoor.len() >= hyper.backdoor.len());
    assert!(indep.backdoor.is_empty());
    assert_eq!(sampled.trained_rows, 2000);
}
