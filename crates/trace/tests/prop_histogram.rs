//! Property tests for [`hyper_trace::LatencyHistogram`]: over random
//! samples, every extracted quantile must land within one bucket width
//! of the exact order statistic, and merging two histograms must equal
//! recording both sample sets into one.

use proptest::prelude::*;

use hyper_trace::{percentile, LatencyHistogram};

/// Exact order statistic matching the histogram's rank convention
/// (`ceil(q·n)`-th smallest, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The containing bucket's width for a value: 1 below 16, else
/// 2^(exp-4) where exp = floor(log2 v).
fn bucket_width(v: u64) -> u64 {
    if v < 16 {
        1
    } else {
        1u64 << (63 - v.leading_zeros() as u64 - 4)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles are within one bucket width of exact.
    #[test]
    fn quantiles_within_one_bucket_width(
        samples in prop::collection::vec(0u64..2_000_000_000, 1..400),
    ) {
        let h = LatencyHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum(), samples.iter().sum::<u64>());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            let width = bucket_width(exact) as f64;
            prop_assert!(
                (est - exact as f64).abs() <= width,
                "q={} est={} exact={} width={}", q, est, exact, width
            );
        }
    }

    /// merge(a, b) == record(a ∪ b).
    #[test]
    fn merge_equals_combined_recording(
        a in prop::collection::vec(0u64..1_000_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let ha = LatencyHistogram::new();
        let hb = LatencyHistogram::new();
        let hc = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let combined = hc.snapshot();
        prop_assert_eq!(merged.count(), combined.count());
        prop_assert_eq!(merged.sum(), combined.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.quantile(q), combined.quantile(q));
        }
    }

    /// The exact-percentile helper is monotone in p, bounded by the
    /// sample extremes, and agrees with the sample at the endpoints.
    #[test]
    fn percentile_is_monotone_and_bounded(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = percentile(&xs, p);
            prop_assert!(v >= prev - 1e-9, "p={} v={} prev={}", p, v, prev);
            prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
            prev = v;
        }
        prop_assert_eq!(percentile(&xs, 0.0), xs[0]);
        prop_assert_eq!(percentile(&xs, 100.0), xs[xs.len() - 1]);
    }
}
