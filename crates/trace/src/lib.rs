//! Phase-level tracing and latency histograms for the HypeR engine.
//!
//! Two independent primitives, both hand-rolled over `std` (this crate
//! has zero dependencies and sits at the bottom of the workspace stack):
//!
//! * **Spans** — a per-query [`TraceTree`] records how long each typed
//!   [`Phase`] of the pipeline took. Instrumentation sites call
//!   [`span`]`(Phase::…)` and hold the returned guard for the duration
//!   of the work; the session installs a tree around a query with
//!   [`with_trace`]. When no tree is installed anywhere in the process
//!   a span site costs **one relaxed atomic load** (see [`enabled`]) —
//!   tracing must never perturb results, only observe them.
//!
//!   Durations are accounted as **self time**: a span's nested child
//!   spans (on the same thread) are subtracted from it, so the
//!   per-phase totals of a single-threaded query partition the root
//!   span exactly — they sum to the measured total. Work fanned out
//!   over [`hyper-runtime`] workers is attributed to the same tree via
//!   [`current_context`]/[`TraceContext::with`] (the pool captures the
//!   submitter's context and installs it around each task), so on a
//!   multi-worker pool the per-phase totals are CPU-time-like sums
//!   that can exceed the wall-clock root.
//!
//! * **Histograms** — [`LatencyHistogram`] is a lock-free log-bucketed
//!   (HDR-style) histogram: `record` costs two relaxed atomic
//!   fetch-adds, buckets have ≤ 1/16 relative width, and read-side
//!   [`HistogramSnapshot`]s are mergeable and expose
//!   p50/p90/p99/p999. `hyper-serve` keeps one per tenant × route ×
//!   (queue-wait | execute).
//!
//! [`percentile`] is the one shared exact-percentile implementation
//! (linear interpolation between order statistics) used by the serve
//! tests and the benchmarks.
//!
//! ```
//! use hyper_trace::{span, with_trace, Phase, TraceTree};
//!
//! let tree = TraceTree::new();
//! let out = with_trace(&tree, || {
//!     let _q = span(Phase::Execute);
//!     {
//!         let _t = span(Phase::ForestTrain);
//!         // ... train ...
//!     }
//!     42
//! });
//! assert_eq!(out, 42);
//! let snap = tree.snapshot();
//! assert_eq!(snap.count(Phase::ForestTrain), 1);
//! assert!(snap.total_ns() >= snap.self_ns(Phase::ForestTrain));
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------- phases

/// A typed pipeline phase. Every expensive stage of the query path has
/// exactly one id; instrumentation sites never invent string labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Query-text parsing (`parse_query`).
    Parse = 0,
    /// Planning: resolving the `Use` clause, cache keys, backdoor sets.
    Plan = 1,
    /// Building a relevant view (scan + filter + project).
    ViewBuild = 2,
    /// Prop.-1 block decomposition of the causal graph over the view.
    BlockDecomp = 3,
    /// Fitting the feature encoder over training columns.
    EncoderFit = 4,
    /// Random-forest training (resident or streamed).
    ForestTrain = 5,
    /// Batch model prediction (§3.3 dedup + predict).
    Predict = 6,
    /// Artifact-cache lookups (local → shared → disk tiers).
    CacheLookup = 7,
    /// Time between admission and execution start (serve-side).
    QueueWait = 8,
    /// End-to-end query execution (the root span of a traced query).
    Execute = 9,
    /// Loading a tenant snapshot (+ delta-log replay) from disk.
    SnapshotLoad = 10,
    /// Applying a delta: survival analysis + artifact adoption.
    Refresh = 11,
    /// Paged-table chunk I/O (decode from disk, LRU upkeep).
    PagedIO = 12,
}

/// Number of [`Phase`] variants (array sizes, iteration).
pub const NUM_PHASES: usize = 13;

impl Phase {
    /// Every phase, in id order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Parse,
        Phase::Plan,
        Phase::ViewBuild,
        Phase::BlockDecomp,
        Phase::EncoderFit,
        Phase::ForestTrain,
        Phase::Predict,
        Phase::CacheLookup,
        Phase::QueueWait,
        Phase::Execute,
        Phase::SnapshotLoad,
        Phase::Refresh,
        Phase::PagedIO,
    ];

    /// Stable snake_case name (metric labels, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::ViewBuild => "view_build",
            Phase::BlockDecomp => "block_decomp",
            Phase::EncoderFit => "encoder_fit",
            Phase::ForestTrain => "forest_train",
            Phase::Predict => "predict",
            Phase::CacheLookup => "cache_lookup",
            Phase::QueueWait => "queue_wait",
            Phase::Execute => "execute",
            Phase::SnapshotLoad => "snapshot_load",
            Phase::Refresh => "refresh",
            Phase::PagedIO => "paged_io",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ----------------------------------------------------------------- spans

/// Count of live trace scopes anywhere in the process. Zero means every
/// span site degrades to this one relaxed load — the entire disabled
/// cost of tracing.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// True when at least one [`with_trace`]/[`TraceContext::with`] scope is
/// live somewhere in the process. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// One recorded span: phase, nesting depth on its thread, start offset
/// from the tree's creation, and inclusive duration.
#[derive(Debug, Clone, Copy)]
pub struct SpanEntry {
    /// The phase.
    pub phase: Phase,
    /// Nesting depth on the recording thread (root = 0).
    pub depth: u32,
    /// Start, in nanoseconds since the tree was created.
    pub start_ns: u64,
    /// Inclusive wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Ordered-span cap per tree: enough for any real query's span list
/// while bounding a runaway loop's memory.
const MAX_SPANS: usize = 4096;

struct TraceData {
    /// Exclusive (self) nanoseconds per phase.
    self_ns: [AtomicU64; NUM_PHASES],
    /// Completed spans per phase.
    counts: [AtomicU64; NUM_PHASES],
    /// Ordered span list, capped at [`MAX_SPANS`] (totals keep counting).
    spans: Mutex<Vec<SpanEntry>>,
    /// Offset origin for [`SpanEntry::start_ns`].
    epoch: Instant,
}

impl TraceData {
    fn new() -> TraceData {
        TraceData {
            self_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }
}

/// A per-query trace: per-phase self-time totals plus an ordered span
/// list. Clones share the underlying data; install one around a unit of
/// work with [`with_trace`].
#[derive(Clone)]
pub struct TraceTree {
    data: Arc<TraceData>,
}

impl Default for TraceTree {
    fn default() -> TraceTree {
        TraceTree::new()
    }
}

impl std::fmt::Debug for TraceTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceTree").finish_non_exhaustive()
    }
}

impl TraceTree {
    /// An empty tree.
    pub fn new() -> TraceTree {
        TraceTree {
            data: Arc::new(TraceData::new()),
        }
    }

    /// A read-side copy of everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        let d = &self.data;
        TraceSnapshot {
            self_ns: std::array::from_fn(|i| d.self_ns[i].load(Ordering::Relaxed)),
            counts: std::array::from_fn(|i| d.counts[i].load(Ordering::Relaxed)),
            spans: d.spans.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

/// An immutable copy of a [`TraceTree`]'s contents.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    self_ns: [u64; NUM_PHASES],
    counts: [u64; NUM_PHASES],
    /// Ordered span list (capped at 4096 entries; totals are uncapped).
    pub spans: Vec<SpanEntry>,
}

impl TraceSnapshot {
    /// Exclusive (self) nanoseconds attributed to `phase`.
    pub fn self_ns(&self, phase: Phase) -> u64 {
        self.self_ns[phase.idx()]
    }

    /// Completed spans of `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.idx()]
    }

    /// Sum of self time over every phase. For a single-threaded traced
    /// query this equals the root span's inclusive duration exactly (the
    /// self times partition it); with pool workers it is a CPU-time-like
    /// sum that can exceed the wall clock.
    pub fn total_ns(&self) -> u64 {
        self.self_ns.iter().sum()
    }

    /// `(phase, self_ns, count)` for every phase with at least one span,
    /// in phase-id order.
    pub fn phases(&self) -> Vec<(Phase, u64, u64)> {
        Phase::ALL
            .iter()
            .filter(|p| self.counts[p.idx()] > 0 || self.self_ns[p.idx()] > 0)
            .map(|&p| (p, self.self_ns[p.idx()], self.counts[p.idx()]))
            .collect()
    }
}

/// One open span frame on a thread's stack.
struct Frame {
    phase: Phase,
    start: Instant,
    /// Inclusive nanoseconds of already-closed direct children.
    child_ns: u64,
}

struct ThreadCtx {
    data: Arc<TraceData>,
    stack: Vec<Frame>,
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Install `tree` as the current thread's trace for the duration of `f`.
/// Nestable (the previous trace is restored on exit) and unwind-safe
/// (restored on panic too).
pub fn with_trace<T>(tree: &TraceTree, f: impl FnOnce() -> T) -> T {
    let ctx = TraceContext {
        data: Arc::clone(&tree.data),
    };
    ctx.with(f)
}

/// A capturable handle to the current thread's installed trace, for
/// carrying attribution across threads (the runtime pool captures one at
/// submit time and installs it around each task).
#[derive(Clone)]
pub struct TraceContext {
    data: Arc<TraceData>,
}

impl TraceContext {
    /// Run `f` with this trace installed, unless the current thread
    /// already has one — then `f` runs directly and its spans nest into
    /// the live stack. This is the worker-pool entry point: the
    /// submitting caller (which participates in its own job and already
    /// carries the trace) keeps proper span nesting, while pool worker
    /// threads get the context installed fresh.
    pub fn attach<T>(&self, f: impl FnOnce() -> T) -> T {
        let present = CURRENT.with(|c| c.borrow().is_some());
        if present {
            f()
        } else {
            self.with(f)
        }
    }

    /// Run `f` with this trace installed on the current thread.
    pub fn with<T>(&self, f: impl FnOnce() -> T) -> T {
        struct Scope {
            prev: Option<ThreadCtx>,
        }
        impl Drop for Scope {
            fn drop(&mut self) {
                CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
                ACTIVE.fetch_sub(1, Ordering::Relaxed);
            }
        }
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|c| {
            c.borrow_mut().replace(ThreadCtx {
                data: Arc::clone(&self.data),
                stack: Vec::with_capacity(8),
            })
        });
        let _scope = Scope { prev };
        f()
    }
}

/// The current thread's trace context, if any. Costs one relaxed load
/// when no trace is active anywhere.
pub fn current_context() -> Option<TraceContext> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|ctx| TraceContext {
            data: Arc::clone(&ctx.data),
        })
    })
}

/// Open a span of `phase` on the current thread's trace. Hold the
/// returned guard for the duration of the work; dropping it records the
/// elapsed time. When tracing is disabled ([`enabled`] is false) this is
/// a single relaxed atomic load and the guard is inert.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            armed: false,
            phase,
        };
    }
    let armed = CURRENT.with(|c| {
        let mut c = c.borrow_mut();
        match c.as_mut() {
            Some(ctx) => {
                ctx.stack.push(Frame {
                    phase,
                    start: Instant::now(),
                    child_ns: 0,
                });
                true
            }
            None => false,
        }
    });
    SpanGuard { armed, phase }
}

/// Add `n` to `phase`'s span count without timing anything (cheap event
/// counters: chunks paged, morsels dispatched). One relaxed load when
/// tracing is disabled.
#[inline]
pub fn count(phase: Phase, n: u64) {
    if !enabled() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.data.counts[phase.idx()].fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Guard returned by [`span`]; records on drop.
pub struct SpanGuard {
    armed: bool,
    phase: Phase,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        CURRENT.with(|c| {
            let mut c = c.borrow_mut();
            let Some(ctx) = c.as_mut() else { return };
            // Pop frames until ours surfaces: a mismatched pop means a
            // guard outlived its scope discipline; recover rather than
            // corrupt the stack.
            let Some(frame) = ctx.stack.pop() else { return };
            debug_assert_eq!(frame.phase as usize, self.phase as usize);
            let dur_ns = frame.start.elapsed().as_nanos() as u64;
            let depth = ctx.stack.len() as u32;
            let self_ns = dur_ns.saturating_sub(frame.child_ns);
            ctx.data.self_ns[frame.phase.idx()].fetch_add(self_ns, Ordering::Relaxed);
            ctx.data.counts[frame.phase.idx()].fetch_add(1, Ordering::Relaxed);
            if let Some(parent) = ctx.stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            let start_ns = frame
                .start
                .saturating_duration_since(ctx.data.epoch)
                .as_nanos() as u64;
            let mut spans = ctx.data.spans.lock().unwrap_or_else(|e| e.into_inner());
            if spans.len() < MAX_SPANS {
                spans.push(SpanEntry {
                    phase: frame.phase,
                    depth,
                    start_ns,
                    dur_ns,
                });
            }
        });
    }
}

// ------------------------------------------------------------ histogram

/// Linear sub-buckets per power-of-two group: relative bucket width is
/// at most 1/16 (6.25%).
const SUB_BUCKETS: u64 = 16;

/// Total bucket count: 16 unit buckets for values 0..16, then 16
/// sub-buckets for each value exponent 4..=63.
pub const HISTOGRAM_BUCKETS: usize = (SUB_BUCKETS as usize) * 61;

/// Bucket index of `v` (any u64; typically nanoseconds).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // ≥ 4
        let group = exp - 3;
        let mantissa = ((v >> (exp - 4)) & (SUB_BUCKETS - 1)) as usize;
        group * SUB_BUCKETS as usize + mantissa
    }
}

/// Inclusive lower bound and width of bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    let sb = SUB_BUCKETS as usize;
    if idx < sb {
        (idx as u64, 1)
    } else {
        let group = idx / sb;
        let mantissa = (idx % sb) as u64;
        let width = 1u64 << (group - 1);
        ((SUB_BUCKETS + mantissa) << (group - 1), width)
    }
}

/// A lock-free log-bucketed latency histogram. `record` is two relaxed
/// atomic adds; buckets have ≤ 1/16 relative width, so any quantile read
/// from a snapshot is within one bucket width (≤ 6.25% relative) of the
/// exact order statistic. Values are plain `u64`s — the engine records
/// nanoseconds.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram").finish_non_exhaustive()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value. Two relaxed atomic fetch-adds; never blocks.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A mergeable read-side copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], mergeable across
/// histograms (routes, tenants, shards) and queryable for quantiles.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Fold `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a value estimate, linearly
    /// interpolated inside the containing bucket — guaranteed within one
    /// bucket width of the exact order statistic. Returns 0.0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target order statistic, 1-based.
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (low, width) = bucket_bounds(idx);
                // Interpolate by rank position inside this bucket.
                let frac = (target - seen) as f64 / c as f64;
                return low as f64 + (width as f64 - 1.0).max(0.0) * frac;
            }
            seen += c;
        }
        let (low, width) = bucket_bounds(self.buckets.len() - 1);
        (low + width) as f64
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

// ----------------------------------------------------------- percentile

/// Exact percentile over an **ascending-sorted** slice, with linear
/// interpolation between adjacent order statistics (the "type 7"
/// estimator): `p` is in percent (`50.0` = median). On small samples
/// this interpolates instead of snapping to the nearest rank — p99 of 50
/// requests reads between the 49th and 50th order statistics rather
/// than just the max-ish tail. Returns 0.0 on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let frac = rank - lo as f64;
    if frac == 0.0 || lo + 1 >= sorted.len() {
        return sorted[lo.min(sorted.len() - 1)];
    }
    sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        // No trace is installed on *this* thread (other tests may hold
        // scopes on theirs), so the guard must be inert and the context
        // absent.
        let g = span(Phase::Execute);
        assert!(!g.armed);
        drop(g);
        count(Phase::PagedIO, 5);
        assert!(current_context().is_none());
    }

    #[test]
    fn self_time_partitions_the_root_span() {
        let tree = TraceTree::new();
        with_trace(&tree, || {
            let _root = span(Phase::Execute);
            {
                let _t = span(Phase::ForestTrain);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _p = span(Phase::Predict);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let s = tree.snapshot();
        assert_eq!(s.count(Phase::Execute), 1);
        assert_eq!(s.count(Phase::ForestTrain), 1);
        assert_eq!(s.count(Phase::Predict), 1);
        // The root's inclusive duration is the sum of every self time
        // (single-threaded), and each child's self time sits under it.
        let root = s
            .spans
            .iter()
            .find(|e| e.phase == Phase::Execute)
            .expect("root span recorded");
        assert_eq!(root.depth, 0);
        assert_eq!(s.total_ns(), root.dur_ns);
        assert!(s.self_ns(Phase::ForestTrain) >= 1_000_000);
        assert!(s.self_ns(Phase::Execute) <= root.dur_ns);
    }

    #[test]
    fn nested_traces_restore_the_outer_tree() {
        let outer = TraceTree::new();
        let inner = TraceTree::new();
        with_trace(&outer, || {
            with_trace(&inner, || {
                let _s = span(Phase::Parse);
            });
            let _s = span(Phase::Plan);
        });
        assert_eq!(inner.snapshot().count(Phase::Parse), 1);
        assert_eq!(outer.snapshot().count(Phase::Parse), 0);
        assert_eq!(outer.snapshot().count(Phase::Plan), 1);
        assert!(current_context().is_none());
    }

    #[test]
    fn context_carries_across_threads() {
        let tree = TraceTree::new();
        with_trace(&tree, || {
            let ctx = current_context().expect("context is installed");
            std::thread::scope(|s| {
                s.spawn(move || {
                    ctx.with(|| {
                        let _s = span(Phase::ForestTrain);
                    });
                });
            });
        });
        assert_eq!(tree.snapshot().count(Phase::ForestTrain), 1);
    }

    #[test]
    fn count_accumulates_without_spans() {
        let tree = TraceTree::new();
        with_trace(&tree, || {
            count(Phase::PagedIO, 3);
            count(Phase::PagedIO, 4);
        });
        assert_eq!(tree.snapshot().count(Phase::PagedIO), 7);
        assert_eq!(tree.snapshot().self_ns(Phase::PagedIO), 0);
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // Values below 16 get unit buckets.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, 1));
        }
        // Power-of-two group starts.
        for (v, idx) in [(16u64, 16usize), (32, 32), (64, 48), (1 << 20, 16 * 17)] {
            assert_eq!(bucket_index(v), idx, "v={v}");
            let (low, _w) = bucket_bounds(idx);
            assert_eq!(low, v, "v={v}");
        }
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 65_535, 1 << 30, u64::MAX] {
            let idx = bucket_index(v);
            let (low, width) = bucket_bounds(idx);
            assert!(low <= v, "v={v} low={low}");
            assert!(
                v - low < width || width == 0,
                "v={v} low={low} width={width}"
            );
        }
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.sum(), 0);
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p999(), 0.0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for v in [10u64, 100, 1000] {
            a.record(v);
        }
        for v in [10u64, 50_000] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 5);
        assert_eq!(m.sum(), 10 + 100 + 1000 + 10 + 50_000);
        // The merged p50 is the 3rd of 5 values (100), within one bucket.
        let p50 = m.p50();
        assert!((96.0..=104.0).contains(&p50), "p50={p50}");
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in ns
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        for (q, exact) in [(0.5, 500_000.0), (0.9, 900_000.0), (0.99, 990_000.0)] {
            let est = s.quantile(q);
            let err = (est - exact).abs() / exact;
            assert!(err <= 1.0 / 16.0, "q={q} est={est} exact={exact}");
        }
    }

    #[test]
    fn percentile_interpolates_small_samples() {
        let sorted: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        // Nearest-rank would answer 50 (the max-ish tail); interpolation
        // reads between the 49th and 50th order statistics.
        let p99 = percentile(&sorted, 99.0);
        assert!((p99 - 49.51).abs() < 1e-9, "p99={p99}");
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 50.0);
        assert_eq!(percentile(&sorted, 50.0), 25.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
