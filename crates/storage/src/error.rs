//! Error type shared by all storage operations.

use std::fmt;

/// Errors raised by the relational storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A referenced table does not exist in the database.
    UnknownTable(String),
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A row's arity or a value's type does not match the schema.
    SchemaMismatch(String),
    /// Two values could not be combined by an operator (e.g. `"a" + 1`).
    TypeError(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// A column with this name already exists in the schema.
    DuplicateColumn(String),
    /// A primary-key constraint was violated on insert.
    DuplicateKey(String),
    /// Invalid plan or expression (e.g. aggregate outside `Aggregate`).
    InvalidPlan(String),
    /// Malformed CSV input.
    Csv(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StorageError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::TypeError(m) => write!(f, "type error: {m}"),
            StorageError::DuplicateTable(t) => write!(f, "duplicate table: {t}"),
            StorageError::DuplicateColumn(c) => write!(f, "duplicate column: {c}"),
            StorageError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            StorageError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            StorageError::Csv(m) => write!(f, "csv error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
