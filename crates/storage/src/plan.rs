//! A small logical plan and executor, enough to run the SQL subset the
//! `Use` operator of HypeR queries needs: scan → filter → join → group-by
//! aggregation → projection → sort.

use std::fmt;

use crate::database::Database;
use crate::error::{Result, StorageError};
use crate::expr::Expr;
use crate::ops::{aggregate, filter, hash_join, AggExpr};
use crate::schema::{Field, Schema};
use crate::table::Table;

/// A logical query plan node.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan a stored table by name.
    Scan(String),
    /// A literal table (used for tests and derived inputs).
    Values(Table),
    /// σ: keep rows satisfying the predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Inner hash equi-join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Left join keys.
        left_on: Vec<String>,
        /// Right join keys.
        right_on: Vec<String>,
    },
    /// Group-by aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregate expressions.
        aggs: Vec<AggExpr>,
    },
    /// π: compute expressions with output aliases.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Rename columns positionally (`new_names.len()` must match).
    Rename {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// New names, one per column.
        new_names: Vec<String>,
    },
    /// Stable ascending sort by one column.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort column.
        by: String,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row cap.
        n: usize,
    },
}

impl LogicalPlan {
    /// Scan helper.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan(table.into())
    }

    /// Wrap in a filter.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wrap in a join.
    pub fn join(self, right: LogicalPlan, left_on: &[&str], right_on: &[&str]) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_on: left_on.iter().map(|s| s.to_string()).collect(),
            right_on: right_on.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Wrap in an aggregation.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggs,
        }
    }

    /// Wrap in a projection.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Wrap in a sort.
    pub fn sort(self, by: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            by: by.into(),
        }
    }

    /// Execute the plan against `db`, materializing a table.
    pub fn execute(&self, db: &Database) -> Result<Table> {
        match self {
            LogicalPlan::Scan(name) => Ok(db.table(name)?.clone()),
            LogicalPlan::Values(t) => Ok(t.clone()),
            LogicalPlan::Filter { input, predicate } => {
                let t = input.execute(db)?;
                filter(&t, predicate)
            }
            LogicalPlan::Join {
                left,
                right,
                left_on,
                right_on,
            } => {
                let l = left.execute(db)?;
                let r = right.execute(db)?;
                hash_join(&l, &r, left_on, right_on)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let t = input.execute(db)?;
                aggregate(&t, group_by, aggs)
            }
            LogicalPlan::Project { input, exprs } => {
                let t = input.execute(db)?;
                project(&t, exprs)
            }
            LogicalPlan::Rename { input, new_names } => {
                let t = input.execute(db)?;
                rename(&t, new_names)
            }
            LogicalPlan::Sort { input, by } => {
                let t = input.execute(db)?;
                t.sort_by_column(by)
            }
            LogicalPlan::Limit { input, n } => {
                let t = input.execute(db)?;
                let take: Vec<usize> = (0..t.num_rows().min(*n)).collect();
                Ok(t.gather(&take))
            }
        }
    }
}

/// Compute a projection: each output column is an expression over the
/// input, evaluated vectorized into a typed column (plain column
/// references are buffer clones; the output type is the evaluated
/// column's type).
pub fn project(input: &Table, exprs: &[(Expr, String)]) -> Result<Table> {
    let mut fields = Vec::with_capacity(exprs.len());
    let mut columns = Vec::with_capacity(exprs.len());
    for (e, alias) in exprs {
        let col = e.bind(input.schema())?.eval_column(input)?;
        fields.push(Field::nullable(alias.clone(), col.data_type()));
        columns.push(col);
    }
    let schema = Schema::new(fields)?;
    Ok(Table::from_columns(
        format!("π({})", input.name()),
        schema,
        columns,
    ))
}

/// Rename all columns positionally (a schema-only operation: the typed
/// column buffers are cloned, never re-encoded).
pub fn rename(input: &Table, new_names: &[String]) -> Result<Table> {
    if new_names.len() != input.num_columns() {
        return Err(StorageError::InvalidPlan(format!(
            "rename expects {} names, got {}",
            input.num_columns(),
            new_names.len()
        )));
    }
    let fields: Vec<Field> = input
        .schema()
        .fields()
        .iter()
        .zip(new_names)
        .map(|(f, n)| Field {
            name: n.clone(),
            data_type: f.data_type,
            nullable: f.nullable,
        })
        .collect();
    let schema = Schema::new(fields)?;
    let columns = (0..input.num_columns())
        .map(|c| input.column(c).clone())
        .collect();
    Ok(Table::from_columns(input.name(), schema, columns))
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn indent(plan: &LogicalPlan, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match plan {
                LogicalPlan::Scan(t) => writeln!(f, "{pad}Scan {t}"),
                LogicalPlan::Values(t) => writeln!(f, "{pad}Values [{} rows]", t.num_rows()),
                LogicalPlan::Filter { input, predicate } => {
                    writeln!(f, "{pad}Filter {predicate}")?;
                    indent(input, f, depth + 1)
                }
                LogicalPlan::Join {
                    left,
                    right,
                    left_on,
                    right_on,
                } => {
                    writeln!(f, "{pad}Join on {left_on:?} = {right_on:?}")?;
                    indent(left, f, depth + 1)?;
                    indent(right, f, depth + 1)
                }
                LogicalPlan::Aggregate {
                    input,
                    group_by,
                    aggs,
                } => {
                    let names: Vec<&str> = aggs.iter().map(|a| a.alias.as_str()).collect();
                    writeln!(f, "{pad}Aggregate group_by={group_by:?} aggs={names:?}")?;
                    indent(input, f, depth + 1)
                }
                LogicalPlan::Project { input, exprs } => {
                    let names: Vec<&str> = exprs.iter().map(|(_, a)| a.as_str()).collect();
                    writeln!(f, "{pad}Project {names:?}")?;
                    indent(input, f, depth + 1)
                }
                LogicalPlan::Rename { input, new_names } => {
                    writeln!(f, "{pad}Rename {new_names:?}")?;
                    indent(input, f, depth + 1)
                }
                LogicalPlan::Sort { input, by } => {
                    writeln!(f, "{pad}Sort by {by}")?;
                    indent(input, f, depth + 1)
                }
                LogicalPlan::Limit { input, n } => {
                    writeln!(f, "{pad}Limit {n}")?;
                    indent(input, f, depth + 1)
                }
            }
        }
        indent(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::ops::AggFunc;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut prod = crate::table::TableBuilder::with_key(
            "product",
            Schema::new(vec![
                Field::new("pid", DataType::Int),
                Field::new("brand", DataType::Str),
                Field::new("price", DataType::Float),
            ])
            .unwrap(),
            &["pid"],
        )
        .unwrap();
        for (pid, brand, price) in [(1, "vaio", 999.0), (2, "asus", 529.0), (3, "hp", 599.0)] {
            prod.push(vec![pid.into(), brand.into(), price.into()])
                .unwrap();
        }
        let mut rev = crate::table::TableBuilder::with_key(
            "review",
            Schema::new(vec![
                Field::new("pid", DataType::Int),
                Field::new("rid", DataType::Int),
                Field::new("rating", DataType::Int),
            ])
            .unwrap(),
            &["pid", "rid"],
        )
        .unwrap();
        for (pid, rid, rating) in [(1, 1, 2), (2, 2, 4), (2, 3, 1), (3, 4, 3), (3, 5, 5)] {
            rev.push(vec![pid.into(), rid.into(), rating.into()])
                .unwrap();
        }
        db.add_table(prod.build()).unwrap();
        db.add_table(rev.build()).unwrap();
        db
    }

    #[test]
    fn use_operator_shape_join_groupby() {
        // The Figure-4 Use query: join product ⋈ review, group by product
        // attributes, average the ratings.
        let plan = LogicalPlan::scan("product")
            .join(LogicalPlan::scan("review"), &["pid"], &["pid"])
            .aggregate(
                &["pid", "brand", "price"],
                vec![AggExpr::new(AggFunc::Avg, Some(col("rating")), "rtng")],
            );
        let out = plan.execute(&db()).unwrap();
        assert_eq!(out.num_rows(), 3);
        let rtng = out.column_by_name("rtng").unwrap();
        assert_eq!(rtng.value(0), Value::Float(2.0)); // vaio
        assert_eq!(rtng.value(1), Value::Float(2.5)); // asus
        assert_eq!(rtng.value(2), Value::Float(4.0)); // hp
    }

    #[test]
    fn filter_then_project() {
        let plan = LogicalPlan::scan("product")
            .filter(col("price").lt(lit(700.0)))
            .project(vec![
                (col("brand"), "brand".into()),
                (col("price").times(lit(1.1)), "bumped".into()),
            ]);
        let out = plan.execute(&db()).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.schema().names(), vec!["brand", "bumped"]);
        let b = out.column_by_name("bumped").unwrap();
        assert!((b.value(0).as_f64().unwrap() - 529.0 * 1.1).abs() < 1e-9);
    }

    #[test]
    fn rename_and_sort_and_limit() {
        let plan = LogicalPlan::Rename {
            input: Box::new(LogicalPlan::scan("product").sort("price")),
            new_names: vec!["id".into(), "b".into(), "p".into()],
        };
        let plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n: 2,
        };
        let out = plan.execute(&db()).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.schema().names(), vec!["id", "b", "p"]);
        assert_eq!(out.column(1).value(0), Value::str("asus"));
    }

    #[test]
    fn scan_unknown_table_errors() {
        assert!(LogicalPlan::scan("ghost").execute(&db()).is_err());
    }

    #[test]
    fn plan_display_is_indented() {
        let plan = LogicalPlan::scan("product").filter(col("price").lt(lit(700.0)));
        let s = plan.to_string();
        assert!(s.contains("Filter"));
        assert!(s.contains("  Scan product"));
    }
}
