//! Scalar expressions over rows: comparison, boolean logic, arithmetic.
//!
//! Expressions are written against column *names* and bound to a concrete
//! [`Schema`] before evaluation, compiling name lookups into positional
//! accesses (a pattern borrowed from DataFusion's physical expressions).

use std::fmt;

use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=` (SQL equality with numeric coercion).
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// Logical AND (NULL-rejecting).
    And,
    /// Logical OR.
    Or,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Numeric negation.
    Neg,
}

/// An unbound scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// Literal value.
    Lit(Value),
    /// Unary application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `expr IN (v1, v2, …)` (or NOT IN).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Value>,
        /// Negation flag.
        negated: bool,
    },
    /// `expr IS NULL` (or IS NOT NULL).
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
    },
}

/// Shorthand: column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// Shorthand: literal.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

impl Expr {
    /// Combine with AND.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(other))
    }
    /// Combine with OR.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(self), Box::new(other))
    }
    /// Equality comparison.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(other))
    }
    /// Inequality comparison.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(other))
    }
    /// Less-than comparison.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(other))
    }
    /// Less-or-equal comparison.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(other))
    }
    /// Greater-than comparison.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(other))
    }
    /// Greater-or-equal comparison.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(other))
    }
    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary(UnaryOp::Not, Box::new(self))
    }
    /// Arithmetic sum.
    pub fn plus(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(other))
    }
    /// Arithmetic product.
    pub fn times(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(other))
    }
    /// Membership test.
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }

    /// All column names referenced by this expression (deduplicated, sorted).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Lit(_) => {}
            Expr::Unary(_, e) => e.collect_columns(out),
            Expr::Binary(_, l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::InList { expr, .. } | Expr::IsNull { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Bind column names to positions in `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Column(name) => BoundExpr::Column(schema.index_of(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Unary(op, e) => BoundExpr::Unary(*op, Box::new(e.bind(schema)?)),
            Expr::Binary(op, l, r) => {
                BoundExpr::Binary(*op, Box::new(l.bind(schema)?), Box::new(r.bind(schema)?))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.bind(schema)?),
                negated: *negated,
            },
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Unary(UnaryOp::Not, e) => write!(f, "NOT ({e})"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "-({e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|v| v.to_string()).collect();
                let kw = if *negated { "NOT IN" } else { "IN" };
                write!(f, "({expr} {kw} ({}))", items.join(", "))
            }
            Expr::IsNull { expr, negated } => {
                let kw = if *negated { "IS NOT NULL" } else { "IS NULL" };
                write!(f, "({expr} {kw})")
            }
        }
    }
}

/// An expression with column references resolved to positions.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Positional column reference.
    Column(usize),
    /// Literal.
    Lit(Value),
    /// Unary application.
    Unary(UnaryOp, Box<BoundExpr>),
    /// Binary application.
    Binary(BinOp, Box<BoundExpr>, Box<BoundExpr>),
    /// Membership test.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidate values.
        list: Vec<Value>,
        /// Negation flag.
        negated: bool,
    },
    /// NULL test.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Negation flag.
        negated: bool,
    },
}

impl BoundExpr {
    /// Evaluate against a materialized row.
    pub fn eval_row(&self, row: &[Value]) -> Result<Value> {
        self.eval_with(&mut |idx| row[idx].clone())
    }

    /// Evaluate against row `i` of a columnar table without materializing it.
    pub fn eval_at(&self, table: &Table, i: usize) -> Result<Value> {
        self.eval_with(&mut |idx| table.get(i, idx).clone())
    }

    /// Core evaluator over an arbitrary cell accessor.
    pub fn eval_with(&self, get: &mut dyn FnMut(usize) -> Value) -> Result<Value> {
        Ok(match self {
            BoundExpr::Column(i) => get(*i),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Unary(UnaryOp::Not, e) => match e.eval_with(get)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                v => {
                    return Err(StorageError::TypeError(format!(
                        "NOT expects boolean, got {v}"
                    )))
                }
            },
            BoundExpr::Unary(UnaryOp::Neg, e) => {
                let v = e.eval_with(get)?;
                match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    Value::Null => Value::Null,
                    v => {
                        return Err(StorageError::TypeError(format!(
                            "negation expects numeric, got {v}"
                        )))
                    }
                }
            }
            BoundExpr::Binary(op, l, r) => {
                let lv = l.eval_with(get)?;
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        if lv == Value::Bool(false) {
                            return Ok(Value::Bool(false));
                        }
                        let rv = r.eval_with(get)?;
                        return eval_logical(BinOp::And, &lv, &rv);
                    }
                    BinOp::Or => {
                        if lv == Value::Bool(true) {
                            return Ok(Value::Bool(true));
                        }
                        let rv = r.eval_with(get)?;
                        return eval_logical(BinOp::Or, &lv, &rv);
                    }
                    _ => {}
                }
                let rv = r.eval_with(get)?;
                match op {
                    BinOp::Eq => Value::Bool(lv.sql_eq(&rv)),
                    BinOp::Ne => {
                        if lv.is_null() || rv.is_null() {
                            Value::Bool(false)
                        } else {
                            Value::Bool(!lv.sql_eq(&rv))
                        }
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match lv.sql_cmp(&rv) {
                        None => Value::Bool(false),
                        Some(ord) => Value::Bool(match op {
                            BinOp::Lt => ord.is_lt(),
                            BinOp::Le => ord.is_le(),
                            BinOp::Gt => ord.is_gt(),
                            BinOp::Ge => ord.is_ge(),
                            _ => unreachable!(),
                        }),
                    },
                    BinOp::Add => lv.add(&rv)?,
                    BinOp::Sub => lv.sub(&rv)?,
                    BinOp::Mul => lv.mul(&rv)?,
                    BinOp::Div => lv.div(&rv)?,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_with(get)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let found = list.iter().any(|cand| v.sql_eq(cand));
                Value::Bool(found != *negated)
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval_with(get)?;
                Value::Bool(v.is_null() != *negated)
            }
        })
    }

    /// Evaluate as a predicate: non-boolean results are an error; NULL is
    /// treated as `false` (three-valued logic collapsed).
    pub fn eval_predicate_at(&self, table: &Table, i: usize) -> Result<bool> {
        match self.eval_at(table, i)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            v => Err(StorageError::TypeError(format!(
                "predicate evaluated to non-boolean {v}"
            ))),
        }
    }
}

fn eval_logical(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    let lb = coerce_bool(l)?;
    let rb = coerce_bool(r)?;
    Ok(match (op, lb, rb) {
        (BinOp::And, Some(a), Some(b)) => Value::Bool(a && b),
        (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Value::Bool(false),
        (BinOp::Or, Some(a), Some(b)) => Value::Bool(a || b),
        (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn coerce_bool(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        v => Err(StorageError::TypeError(format!(
            "logical operator expects boolean, got {v}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::nullable("c", DataType::Str),
        ])
        .unwrap()
    }

    fn eval(e: &Expr, row: &[Value]) -> Value {
        e.bind(&schema()).unwrap().eval_row(row).unwrap()
    }

    #[test]
    fn comparisons() {
        let row = vec![Value::Int(5), Value::Float(2.5), Value::str("x")];
        assert_eq!(eval(&col("a").gt(lit(4)), &row), Value::Bool(true));
        assert_eq!(eval(&col("a").le(lit(4)), &row), Value::Bool(false));
        assert_eq!(eval(&col("b").eq(lit(2.5)), &row), Value::Bool(true));
        assert_eq!(eval(&col("c").eq(lit("x")), &row), Value::Bool(true));
        assert_eq!(eval(&col("a").eq(lit(5.0)), &row), Value::Bool(true));
    }

    #[test]
    fn logic_and_null_handling() {
        let row = vec![Value::Int(5), Value::Float(2.5), Value::Null];
        let e = col("a").gt(lit(0)).and(col("c").eq(lit("x")));
        assert_eq!(eval(&e, &row), Value::Bool(false));
        let e = col("a").gt(lit(0)).or(col("c").eq(lit("x")));
        assert_eq!(eval(&e, &row), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(col("c")),
            negated: false,
        };
        assert_eq!(eval(&e, &row), Value::Bool(true));
    }

    #[test]
    fn arithmetic_expressions() {
        let row = vec![Value::Int(4), Value::Float(0.5), Value::Null];
        let e = col("a").times(lit(2)).plus(col("b"));
        assert_eq!(eval(&e, &row), Value::Float(8.5));
        let e = Expr::Binary(BinOp::Div, Box::new(col("a")), Box::new(lit(2)));
        assert_eq!(eval(&e, &row), Value::Float(2.0));
    }

    #[test]
    fn in_list_membership() {
        let row = vec![Value::Int(4), Value::Float(0.5), Value::str("red")];
        let e = col("c").in_list(vec!["red".into(), "blue".into()]);
        assert_eq!(eval(&e, &row), Value::Bool(true));
        let e = Expr::InList {
            expr: Box::new(col("a")),
            list: vec![1.into(), 2.into()],
            negated: true,
        };
        assert_eq!(eval(&e, &row), Value::Bool(true));
    }

    #[test]
    fn bind_rejects_unknown_columns() {
        assert!(col("zzz").eq(lit(1)).bind(&schema()).is_err());
    }

    #[test]
    fn referenced_columns_deduplicates() {
        let e = col("a").gt(lit(1)).and(col("a").lt(col("b")));
        assert_eq!(
            e.referenced_columns(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // RHS would type-error (NOT over Int), but AND short-circuits.
        let row = vec![Value::Int(1), Value::Float(0.0), Value::Null];
        let e = col("a")
            .gt(lit(100))
            .and(Expr::Unary(UnaryOp::Not, Box::new(col("a"))));
        assert_eq!(eval(&e, &row), Value::Bool(false));
    }

    #[test]
    fn display_round_trips_visually() {
        let e = col("a").gt(lit(1)).and(col("c").eq(lit("x")));
        assert_eq!(e.to_string(), "((a > 1) AND (c = 'x'))");
    }
}
