//! Scalar expressions over rows: comparison, boolean logic, arithmetic.
//!
//! Expressions are written against column *names* and bound to a concrete
//! [`Schema`] before evaluation, compiling name lookups into positional
//! accesses (a pattern borrowed from DataFusion's physical expressions).

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

use crate::column::{Column, NullBitmap, StrDict};
use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=` (SQL equality with numeric coercion).
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// Logical AND (NULL-rejecting).
    And,
    /// Logical OR.
    Or,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Numeric negation.
    Neg,
}

/// An unbound scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// Literal value.
    Lit(Value),
    /// Unary application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `expr IN (v1, v2, …)` (or NOT IN).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Value>,
        /// Negation flag.
        negated: bool,
    },
    /// `expr IS NULL` (or IS NOT NULL).
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
    },
}

/// Shorthand: column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// Shorthand: literal.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

impl Expr {
    /// Combine with AND.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(other))
    }
    /// Combine with OR.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(self), Box::new(other))
    }
    /// Equality comparison.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(other))
    }
    /// Inequality comparison.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(other))
    }
    /// Less-than comparison.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(other))
    }
    /// Less-or-equal comparison.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(other))
    }
    /// Greater-than comparison.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(other))
    }
    /// Greater-or-equal comparison.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(other))
    }
    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary(UnaryOp::Not, Box::new(self))
    }
    /// Arithmetic sum.
    pub fn plus(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(other))
    }
    /// Arithmetic product.
    pub fn times(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(other))
    }
    /// Membership test.
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }

    /// All column names referenced by this expression (deduplicated, sorted).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Lit(_) => {}
            Expr::Unary(_, e) => e.collect_columns(out),
            Expr::Binary(_, l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::InList { expr, .. } | Expr::IsNull { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Bind column names to positions in `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Column(name) => BoundExpr::Column(schema.index_of(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Unary(op, e) => BoundExpr::Unary(*op, Box::new(e.bind(schema)?)),
            Expr::Binary(op, l, r) => {
                BoundExpr::Binary(*op, Box::new(l.bind(schema)?), Box::new(r.bind(schema)?))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.bind(schema)?),
                negated: *negated,
            },
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Unary(UnaryOp::Not, e) => write!(f, "NOT ({e})"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "-({e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|v| v.to_string()).collect();
                let kw = if *negated { "NOT IN" } else { "IN" };
                write!(f, "({expr} {kw} ({}))", items.join(", "))
            }
            Expr::IsNull { expr, negated } => {
                let kw = if *negated { "IS NOT NULL" } else { "IS NULL" };
                write!(f, "({expr} {kw})")
            }
        }
    }
}

/// An expression with column references resolved to positions.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Positional column reference.
    Column(usize),
    /// Literal.
    Lit(Value),
    /// Unary application.
    Unary(UnaryOp, Box<BoundExpr>),
    /// Binary application.
    Binary(BinOp, Box<BoundExpr>, Box<BoundExpr>),
    /// Membership test.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidate values.
        list: Vec<Value>,
        /// Negation flag.
        negated: bool,
    },
    /// NULL test.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Negation flag.
        negated: bool,
    },
}

impl BoundExpr {
    /// Evaluate against a materialized row.
    pub fn eval_row(&self, row: &[Value]) -> Result<Value> {
        self.eval_with(&mut |idx| row[idx].clone())
    }

    /// Evaluate against row `i` of a columnar table without materializing it.
    pub fn eval_at(&self, table: &Table, i: usize) -> Result<Value> {
        self.eval_with(&mut |idx| table.column(idx).value(i))
    }

    /// Core evaluator over an arbitrary cell accessor.
    pub fn eval_with(&self, get: &mut dyn FnMut(usize) -> Value) -> Result<Value> {
        Ok(match self {
            BoundExpr::Column(i) => get(*i),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Unary(UnaryOp::Not, e) => match e.eval_with(get)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                v => {
                    return Err(StorageError::TypeError(format!(
                        "NOT expects boolean, got {v}"
                    )))
                }
            },
            BoundExpr::Unary(UnaryOp::Neg, e) => {
                let v = e.eval_with(get)?;
                match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    Value::Null => Value::Null,
                    v => {
                        return Err(StorageError::TypeError(format!(
                            "negation expects numeric, got {v}"
                        )))
                    }
                }
            }
            BoundExpr::Binary(op, l, r) => {
                let lv = l.eval_with(get)?;
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        if lv == Value::Bool(false) {
                            return Ok(Value::Bool(false));
                        }
                        let rv = r.eval_with(get)?;
                        return eval_logical(BinOp::And, &lv, &rv);
                    }
                    BinOp::Or => {
                        if lv == Value::Bool(true) {
                            return Ok(Value::Bool(true));
                        }
                        let rv = r.eval_with(get)?;
                        return eval_logical(BinOp::Or, &lv, &rv);
                    }
                    _ => {}
                }
                let rv = r.eval_with(get)?;
                match op {
                    BinOp::Eq => Value::Bool(lv.sql_eq(&rv)),
                    BinOp::Ne => {
                        if lv.is_null() || rv.is_null() {
                            Value::Bool(false)
                        } else {
                            Value::Bool(!lv.sql_eq(&rv))
                        }
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match lv.sql_cmp(&rv) {
                        None => Value::Bool(false),
                        Some(ord) => Value::Bool(match op {
                            BinOp::Lt => ord.is_lt(),
                            BinOp::Le => ord.is_le(),
                            BinOp::Gt => ord.is_gt(),
                            BinOp::Ge => ord.is_ge(),
                            _ => unreachable!(),
                        }),
                    },
                    BinOp::Add => lv.add(&rv)?,
                    BinOp::Sub => lv.sub(&rv)?,
                    BinOp::Mul => lv.mul(&rv)?,
                    BinOp::Div => lv.div(&rv)?,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_with(get)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let found = list.iter().any(|cand| v.sql_eq(cand));
                Value::Bool(found != *negated)
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval_with(get)?;
                Value::Bool(v.is_null() != *negated)
            }
        })
    }

    /// Evaluate as a predicate: non-boolean results are an error; NULL is
    /// treated as `false` (three-valued logic collapsed).
    pub fn eval_predicate_at(&self, table: &Table, i: usize) -> Result<bool> {
        match self.eval_at(table, i)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            v => Err(StorageError::TypeError(format!(
                "predicate evaluated to non-boolean {v}"
            ))),
        }
    }

    /// Vectorized evaluation: one typed [`Column`] holding the expression's
    /// value for every row of `table`. Column references are borrowed, so
    /// `col("a").eval_column(t)` costs one buffer clone at most; kernels
    /// run over typed slices (dictionary codes for string equality) with no
    /// per-cell [`Value`] boxing.
    pub fn eval_column(&self, table: &Table) -> Result<Column> {
        let n = table.num_rows();
        Ok(match self.eval_vec(table)? {
            Ev::Col(c) => c.into_owned(),
            Ev::Scalar(v) => broadcast(&v, n),
        })
    }

    /// Vectorized predicate: the selection vector of rows where the
    /// expression is `true` (NULL collapses to `false`, as in
    /// [`BoundExpr::eval_predicate_at`]).
    pub fn eval_selection(&self, table: &Table) -> Result<Vec<usize>> {
        self.eval_selection_range(table, 0, table.num_rows())
    }

    /// Range-restricted [`BoundExpr::eval_column`]: the expression's value
    /// for rows `start..start + len` only, as a column of length `len`.
    /// This is the per-morsel entry point: evaluating each morsel of a
    /// table and concatenating the results in morsel order is bit-identical
    /// to one whole-table evaluation (integer arithmetic that overflows in
    /// *any* morsel promotes the concatenation to floats, exactly like the
    /// whole-column promotion).
    pub fn eval_column_range(&self, table: &Table, start: usize, len: usize) -> Result<Column> {
        Ok(match self.eval_vec_range(table, start, len)? {
            Ev::Col(c) => c.into_owned(),
            Ev::Scalar(v) => broadcast(&v, len),
        })
    }

    /// Range-restricted [`BoundExpr::eval_selection`]: matching rows within
    /// `start..start + len`, reported as *global* row indices, so
    /// concatenating per-morsel selections in morsel order reproduces the
    /// whole-table selection exactly.
    pub fn eval_selection_range(
        &self,
        table: &Table,
        start: usize,
        len: usize,
    ) -> Result<Vec<usize>> {
        match self.eval_vec_range(table, start, len)? {
            Ev::Scalar(Value::Bool(true)) => Ok((start..start + len).collect()),
            Ev::Scalar(Value::Bool(false)) | Ev::Scalar(Value::Null) => Ok(Vec::new()),
            Ev::Scalar(v) => {
                if len == 0 {
                    Ok(Vec::new())
                } else {
                    Err(StorageError::TypeError(format!(
                        "predicate evaluated to non-boolean {v}"
                    )))
                }
            }
            Ev::Col(c) => {
                let mut keep = selection_from_column(&c)?;
                if start != 0 {
                    for i in &mut keep {
                        *i += start;
                    }
                }
                Ok(keep)
            }
        }
    }

    /// Internal vectorized evaluator; literals stay scalar until a kernel
    /// needs them, so `price < 700` never materializes a broadcast column.
    fn eval_vec<'a>(&'a self, table: &'a Table) -> Result<Ev<'a>> {
        self.eval_vec_range(table, 0, table.num_rows())
    }

    /// Vectorized evaluation over rows `start..start + len`. The full
    /// range borrows column leaves; a strict sub-range slices them (a
    /// verbatim typed copy of the morsel's rows, dictionary shared), after
    /// which every kernel is oblivious to where the morsel came from.
    fn eval_vec_range<'a>(&'a self, table: &'a Table, start: usize, len: usize) -> Result<Ev<'a>> {
        let n = len;
        Ok(match self {
            BoundExpr::Column(i) => {
                let col = table.column(*i);
                if start == 0 && len == col.len() {
                    Ev::Col(Cow::Borrowed(col))
                } else {
                    Ev::Col(Cow::Owned(col.slice(start, len)))
                }
            }
            BoundExpr::Lit(v) => Ev::Scalar(v.clone()),
            BoundExpr::Unary(UnaryOp::Not, e) => {
                kernel_not(e.eval_vec_range(table, start, len)?, n)?
            }
            BoundExpr::Unary(UnaryOp::Neg, e) => {
                kernel_neg(e.eval_vec_range(table, start, len)?, n)?
            }
            BoundExpr::Binary(op, l, r) => {
                let lv = l.eval_vec_range(table, start, len)?;
                match op {
                    // Logical connectives: the row evaluator short-circuits
                    // (a false AND-side suppresses both right-hand
                    // evaluation errors *and* a non-boolean right side), so
                    // when the eager vectorized path fails — RHS evaluation
                    // or the boolean combine itself — re-run this node
                    // row-at-a-time: rows decided by the left side never
                    // touch the right side, exactly as in
                    // `eval_predicate_at`.
                    BinOp::And | BinOp::Or => {
                        let vectorized = r
                            .eval_vec_range(table, start, len)
                            .and_then(|rv| kernel_logic(*op, lv, rv, n));
                        match vectorized {
                            Ok(ev) => ev,
                            Err(_) => row_fallback(self, table, start, n)?,
                        }
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        kernel_compare(*op, lv, r.eval_vec_range(table, start, len)?, n)?
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        kernel_arith(*op, lv, r.eval_vec_range(table, start, len)?, n)?
                    }
                }
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => kernel_in_list(expr.eval_vec_range(table, start, len)?, list, *negated, n)?,
            BoundExpr::IsNull { expr, negated } => match expr.eval_vec_range(table, start, len)? {
                Ev::Scalar(v) => Ev::Scalar(Value::Bool(v.is_null() != *negated)),
                Ev::Col(c) => {
                    let nulls = c.nulls();
                    let values: Vec<bool> = (0..n).map(|i| nulls.is_null(i) != *negated).collect();
                    Ev::Col(Cow::Owned(Column::Bool {
                        values,
                        nulls: NullBitmap::all_valid(n),
                    }))
                }
            },
        })
    }
}

/// A lazily-broadcast evaluation result: a full column or a scalar that
/// every row shares.
enum Ev<'a> {
    Col(Cow<'a, Column>),
    Scalar(Value),
}

/// Row-at-a-time re-evaluation of a logical node whose vectorized path
/// failed: reproduces the row evaluator's short-circuit semantics exactly
/// (errors surface only on rows that actually evaluate the failing side).
/// `start` offsets into the table for range evaluation; the result column
/// is morsel-local (length `n`).
fn row_fallback<'a>(expr: &BoundExpr, table: &Table, start: usize, n: usize) -> Result<Ev<'a>> {
    let mut values = Vec::with_capacity(n);
    let mut nulls = NullBitmap::all_valid(n);
    for i in 0..n {
        match expr.eval_at(table, start + i)? {
            Value::Bool(b) => values.push(b),
            Value::Null => {
                values.push(false);
                nulls.set(i, true);
            }
            v => {
                return Err(StorageError::TypeError(format!(
                    "logical operator expects boolean, got {v}"
                )))
            }
        }
    }
    Ok(Ev::Col(Cow::Owned(Column::Bool { values, nulls })))
}

/// Materialize a scalar as a column of length `n`. NULL broadcasts as an
/// all-null Float column (the same Float fallback the row-oriented
/// projection used for untyped expressions).
fn broadcast(v: &Value, n: usize) -> Column {
    match v {
        Value::Int(x) => Column::Int {
            values: vec![*x; n],
            nulls: NullBitmap::all_valid(n),
        },
        Value::Float(x) => Column::Float {
            values: vec![*x; n],
            nulls: NullBitmap::all_valid(n),
        },
        Value::Bool(b) => Column::Bool {
            values: vec![*b; n],
            nulls: NullBitmap::all_valid(n),
        },
        Value::Str(_) | Value::Null => {
            let mut c = Column::new(match v {
                Value::Str(_) => crate::value::DataType::Str,
                _ => crate::value::DataType::Float,
            });
            c.reserve(n);
            for _ in 0..n {
                c.push(v).expect("broadcast of a matching value");
            }
            c
        }
    }
}

/// Selection vector from an evaluated predicate column: `true` rows only;
/// NULL → skipped; a non-boolean column with any non-NULL row is an error.
fn selection_from_column(c: &Column) -> Result<Vec<usize>> {
    match c.as_bool() {
        Some((values, nulls)) => {
            let mut keep = Vec::new();
            if nulls.any_null() {
                for (i, &v) in values.iter().enumerate() {
                    if v && !nulls.is_null(i) {
                        keep.push(i);
                    }
                }
            } else {
                for (i, &v) in values.iter().enumerate() {
                    if v {
                        keep.push(i);
                    }
                }
            }
            Ok(keep)
        }
        None => {
            if c.null_count() == c.len() {
                Ok(Vec::new()) // all-NULL predicate: uniformly false
            } else {
                let i = (0..c.len()).find(|&i| !c.is_null(i)).unwrap_or(0);
                Err(StorageError::TypeError(format!(
                    "predicate evaluated to non-boolean {}",
                    c.value(i)
                )))
            }
        }
    }
}

/// Per-row numeric accessor over a typed column or scalar (the `as_f64`
/// coercion: Int/Float pass through, Bool maps to 0/1, NULL and strings
/// are `None`).
enum NumSrc<'a> {
    I(&'a [i64], &'a NullBitmap),
    F(&'a [f64], &'a NullBitmap),
    B(&'a [bool], &'a NullBitmap),
    Const(Option<f64>),
}

impl NumSrc<'_> {
    #[inline]
    fn at(&self, i: usize) -> Option<f64> {
        match self {
            NumSrc::I(v, nulls) => (!nulls.is_null(i)).then(|| v[i] as f64),
            NumSrc::F(v, nulls) => (!nulls.is_null(i)).then(|| v[i]),
            NumSrc::B(v, nulls) => (!nulls.is_null(i)).then(|| if v[i] { 1.0 } else { 0.0 }),
            NumSrc::Const(x) => *x,
        }
    }
}

/// Classify an evaluated side for the comparison/arithmetic kernels.
enum Side<'a> {
    Num(NumSrc<'a>),
    Str(StrSrc<'a>),
    NullScalar,
}

enum StrSrc<'a> {
    Col(&'a [u32], &'a StrDict, &'a NullBitmap),
    Const(&'a Arc<str>),
}

impl StrSrc<'_> {
    #[inline]
    fn at(&self, i: usize) -> Option<&str> {
        match self {
            StrSrc::Col(codes, dict, nulls) => {
                (!nulls.is_null(i)).then(|| dict.get(codes[i]).as_ref())
            }
            StrSrc::Const(s) => Some(s.as_ref()),
        }
    }
}

fn classify<'a>(ev: &'a Ev<'a>) -> Side<'a> {
    match ev {
        Ev::Col(c) => match c.as_ref() {
            Column::Int { values, nulls } => Side::Num(NumSrc::I(values, nulls)),
            Column::Float { values, nulls } => Side::Num(NumSrc::F(values, nulls)),
            Column::Bool { values, nulls } => Side::Num(NumSrc::B(values, nulls)),
            Column::Str { codes, dict, nulls } => Side::Str(StrSrc::Col(codes, dict, nulls)),
        },
        Ev::Scalar(Value::Int(x)) => Side::Num(NumSrc::Const(Some(*x as f64))),
        Ev::Scalar(Value::Float(x)) => Side::Num(NumSrc::Const(Some(*x))),
        Ev::Scalar(Value::Bool(b)) => Side::Num(NumSrc::Const(Some(if *b { 1.0 } else { 0.0 }))),
        Ev::Scalar(Value::Str(s)) => Side::Str(StrSrc::Const(s)),
        Ev::Scalar(Value::Null) => Side::NullScalar,
    }
}

fn bool_col(values: Vec<bool>) -> Ev<'static> {
    let n = values.len();
    Ev::Col(Cow::Owned(Column::Bool {
        values,
        nulls: NullBitmap::all_valid(n),
    }))
}

/// Comparison kernel (`=`, `<>`, `<`, `<=`, `>`, `>=`): SQL semantics with
/// numeric coercion, NULL compares false under every operator, and
/// cross-type comparisons collapse to `false` (`<>` to `true` on non-NULL
/// pairs), exactly like [`Value::sql_eq`] / [`Value::sql_cmp`].
fn kernel_compare<'a>(op: BinOp, l: Ev<'a>, r: Ev<'a>, n: usize) -> Result<Ev<'a>> {
    let apply_ord = |ord: Option<std::cmp::Ordering>| -> bool {
        match ord {
            None => false,
            Some(o) => match op {
                BinOp::Lt => o.is_lt(),
                BinOp::Le => o.is_le(),
                BinOp::Gt => o.is_gt(),
                BinOp::Ge => o.is_ge(),
                _ => unreachable!(),
            },
        }
    };
    let out = match (classify(&l), classify(&r)) {
        // NULL operand: every comparison is false.
        (Side::NullScalar, _) | (_, Side::NullScalar) => vec![false; n],
        (Side::Num(a), Side::Num(b)) => match op {
            BinOp::Eq => (0..n)
                .map(|i| matches!((a.at(i), b.at(i)), (Some(x), Some(y)) if x == y))
                .collect(),
            BinOp::Ne => (0..n)
                .map(|i| matches!((a.at(i), b.at(i)), (Some(x), Some(y)) if x != y))
                .collect(),
            _ => (0..n)
                .map(|i| match (a.at(i), b.at(i)) {
                    (Some(x), Some(y)) => apply_ord(x.partial_cmp(&y)),
                    _ => false,
                })
                .collect(),
        },
        (Side::Str(a), Side::Str(b)) => match (op, &a, &b) {
            // Dictionary fast path: equality against a string literal
            // compares codes, not characters.
            (BinOp::Eq | BinOp::Ne, StrSrc::Col(codes, dict, nulls), StrSrc::Const(s))
            | (BinOp::Eq | BinOp::Ne, StrSrc::Const(s), StrSrc::Col(codes, dict, nulls)) => {
                let target = dict.code_of(s);
                let want_eq = op == BinOp::Eq;
                (0..n)
                    .map(|i| {
                        if nulls.is_null(i) {
                            false
                        } else {
                            (target == Some(codes[i])) == want_eq
                        }
                    })
                    .collect()
            }
            (BinOp::Eq, _, _) => (0..n)
                .map(|i| matches!((a.at(i), b.at(i)), (Some(x), Some(y)) if x == y))
                .collect(),
            (BinOp::Ne, _, _) => (0..n)
                .map(|i| matches!((a.at(i), b.at(i)), (Some(x), Some(y)) if x != y))
                .collect(),
            _ => (0..n)
                .map(|i| match (a.at(i), b.at(i)) {
                    (Some(x), Some(y)) => apply_ord(Some(x.cmp(y))),
                    _ => false,
                })
                .collect(),
        },
        // Mixed string/numeric: never equal, never ordered; `<>` is true
        // exactly where both sides are non-NULL.
        (Side::Str(a), Side::Num(b)) => {
            mixed_compare(op, |i| a.at(i).is_some(), |i| b.at(i).is_some(), n)
        }
        (Side::Num(a), Side::Str(b)) => {
            mixed_compare(op, |i| a.at(i).is_some(), |i| b.at(i).is_some(), n)
        }
    };
    Ok(bool_col(out))
}

fn mixed_compare(
    op: BinOp,
    l_valid: impl Fn(usize) -> bool,
    r_valid: impl Fn(usize) -> bool,
    n: usize,
) -> Vec<bool> {
    match op {
        BinOp::Ne => (0..n).map(|i| l_valid(i) && r_valid(i)).collect(),
        _ => vec![false; n],
    }
}

/// Arithmetic kernel. Matches the row-oriented semantics: `Int ∘ Int`
/// stays integer (checked, overflowing rows fall back to float — and
/// promote the whole column), any float/bool operand produces floats,
/// NULL or non-numeric operands are per-row type errors, and division
/// always yields floats and rejects zero divisors.
fn kernel_arith<'a>(op: BinOp, l: Ev<'a>, r: Ev<'a>, n: usize) -> Result<Ev<'a>> {
    if n == 0 {
        return Ok(Ev::Col(Cow::Owned(Column::new(
            crate::value::DataType::Float,
        ))));
    }
    let err = |i: usize| -> StorageError {
        let (a, b) = (ev_value(&l, i), ev_value(&r, i));
        let sym = match op {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            _ => "/",
        };
        if op == BinOp::Div {
            StorageError::TypeError(format!("cannot divide {a} by {b}"))
        } else {
            StorageError::TypeError(format!("cannot apply `{sym}` to {a} and {b}"))
        }
    };
    // Integer fast path: both sides integer-typed.
    if op != BinOp::Div {
        if let (Some((la, ln)), Some((ra, rn))) = (ev_int(&l), ev_int(&r)) {
            let g = match op {
                BinOp::Add => i64::checked_add,
                BinOp::Sub => i64::checked_sub,
                BinOp::Mul => i64::checked_mul,
                _ => unreachable!(),
            };
            let f = float_op(op);
            let mut values = Vec::with_capacity(n);
            let mut overflowed = false;
            for i in 0..n {
                let (x, y) = match (la.get(i, ln), ra.get(i, rn)) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return Err(err(i)),
                };
                match g(x, y) {
                    Some(v) => values.push(v),
                    None => {
                        overflowed = true;
                        break;
                    }
                }
            }
            if !overflowed {
                return Ok(Ev::Col(Cow::Owned(Column::Int {
                    values,
                    nulls: NullBitmap::all_valid(n),
                })));
            }
            // Rare overflow: redo in floats (per-row fallback promotes the
            // whole column; row values match the scalar fallback). NULL
            // rows past the overflow point still error like the row
            // evaluator — the checked loop above stopped before seeing
            // them.
            let mut values = Vec::with_capacity(n);
            for i in 0..n {
                let (x, y) = match (la.get(i, ln), ra.get(i, rn)) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return Err(err(i)),
                };
                values.push(match g(x, y) {
                    Some(v) => v as f64,
                    None => f(x as f64, y as f64),
                });
            }
            return Ok(Ev::Col(Cow::Owned(Column::Float {
                values,
                nulls: NullBitmap::all_valid(n),
            })));
        }
    }
    let (a, b) = match (classify(&l), classify(&r)) {
        (Side::Num(a), Side::Num(b)) => (a, b),
        _ => return Err(err(0)),
    };
    let f = float_op(op);
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        match (a.at(i), b.at(i)) {
            (Some(x), Some(y)) => {
                if op == BinOp::Div && y == 0.0 {
                    return Err(StorageError::TypeError("division by zero".into()));
                }
                values.push(f(x, y));
            }
            _ => return Err(err(i)),
        }
    }
    Ok(Ev::Col(Cow::Owned(Column::Float {
        values,
        nulls: NullBitmap::all_valid(n),
    })))
}

fn float_op(op: BinOp) -> fn(f64, f64) -> f64 {
    match op {
        BinOp::Add => |x, y| x + y,
        BinOp::Sub => |x, y| x - y,
        BinOp::Mul => |x, y| x * y,
        BinOp::Div => |x, y| x / y,
        _ => unreachable!(),
    }
}

/// Integer view of a side for the integer arithmetic fast path.
enum IntSrc<'a> {
    Slice(&'a [i64]),
    Const(i64),
}

impl IntSrc<'_> {
    #[inline]
    fn get(&self, i: usize, nulls: Option<&NullBitmap>) -> Option<i64> {
        if nulls.is_some_and(|b| b.is_null(i)) {
            return None;
        }
        Some(match self {
            IntSrc::Slice(v) => v[i],
            IntSrc::Const(x) => *x,
        })
    }
}

fn ev_int<'a>(ev: &'a Ev<'a>) -> Option<(IntSrc<'a>, Option<&'a NullBitmap>)> {
    match ev {
        Ev::Col(c) => c
            .as_int()
            .map(|(values, nulls)| (IntSrc::Slice(values), Some(nulls))),
        Ev::Scalar(Value::Int(x)) => Some((IntSrc::Const(*x), None)),
        _ => None,
    }
}

fn ev_value(ev: &Ev<'_>, i: usize) -> Value {
    match ev {
        Ev::Col(c) => c.value(i),
        Ev::Scalar(v) => v.clone(),
    }
}

/// Kleene three-valued AND/OR over boolean columns/scalars. A non-boolean
/// operand with any non-NULL row is a type error (as in the row evaluator).
fn kernel_logic<'a>(op: BinOp, l: Ev<'a>, r: Ev<'a>, n: usize) -> Result<Ev<'a>> {
    let lb = ev_bool(&l, n)?;
    let rb = ev_bool(&r, n)?;
    let mut values = Vec::with_capacity(n);
    let mut nulls = NullBitmap::all_valid(n);
    for i in 0..n {
        let v = match op {
            BinOp::And => match (lb.at(i), rb.at(i)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            _ => match (lb.at(i), rb.at(i)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        };
        match v {
            Some(b) => values.push(b),
            None => {
                values.push(false);
                nulls.set(i, true);
            }
        }
    }
    Ok(Ev::Col(Cow::Owned(Column::Bool { values, nulls })))
}

enum BoolSrc<'a> {
    Col(&'a [bool], &'a NullBitmap),
    Const(Option<bool>),
}

impl BoolSrc<'_> {
    #[inline]
    fn at(&self, i: usize) -> Option<bool> {
        match self {
            BoolSrc::Col(v, nulls) => (!nulls.is_null(i)).then(|| v[i]),
            BoolSrc::Const(b) => *b,
        }
    }
}

fn ev_bool<'a>(ev: &'a Ev<'a>, n: usize) -> Result<BoolSrc<'a>> {
    match ev {
        Ev::Col(c) => match c.as_bool() {
            Some((values, nulls)) => Ok(BoolSrc::Col(values, nulls)),
            None if c.null_count() == c.len() => Ok(BoolSrc::Const(None)),
            None => {
                let i = (0..c.len()).find(|&i| !c.is_null(i)).unwrap_or(0);
                Err(StorageError::TypeError(format!(
                    "logical operator expects boolean, got {}",
                    c.value(i)
                )))
            }
        },
        Ev::Scalar(Value::Bool(b)) => Ok(BoolSrc::Const(Some(*b))),
        Ev::Scalar(Value::Null) => Ok(BoolSrc::Const(None)),
        Ev::Scalar(v) => {
            if n == 0 {
                Ok(BoolSrc::Const(None))
            } else {
                Err(StorageError::TypeError(format!(
                    "logical operator expects boolean, got {v}"
                )))
            }
        }
    }
}

fn kernel_not<'a>(e: Ev<'a>, n: usize) -> Result<Ev<'a>> {
    match &e {
        Ev::Scalar(Value::Bool(b)) => return Ok(Ev::Scalar(Value::Bool(!b))),
        Ev::Scalar(Value::Null) => return Ok(Ev::Scalar(Value::Null)),
        Ev::Scalar(v) => {
            return if n == 0 {
                Ok(Ev::Scalar(Value::Null))
            } else {
                Err(StorageError::TypeError(format!(
                    "NOT expects boolean, got {v}"
                )))
            }
        }
        Ev::Col(_) => {}
    }
    let src = match &e {
        Ev::Col(c) => ev_bool(&e, n).map_err(|_| {
            let i = (0..c.len()).find(|&i| !c.is_null(i)).unwrap_or(0);
            StorageError::TypeError(format!("NOT expects boolean, got {}", c.value(i)))
        })?,
        _ => unreachable!(),
    };
    let mut values = Vec::with_capacity(n);
    let mut nulls = NullBitmap::all_valid(n);
    for i in 0..n {
        match src.at(i) {
            Some(b) => values.push(!b),
            None => {
                values.push(false);
                nulls.set(i, true);
            }
        }
    }
    Ok(Ev::Col(Cow::Owned(Column::Bool { values, nulls })))
}

fn kernel_neg<'a>(e: Ev<'a>, n: usize) -> Result<Ev<'a>> {
    match e {
        Ev::Scalar(Value::Int(x)) => Ok(Ev::Scalar(Value::Int(-x))),
        Ev::Scalar(Value::Float(x)) => Ok(Ev::Scalar(Value::Float(-x))),
        Ev::Scalar(Value::Null) => Ok(Ev::Scalar(Value::Null)),
        Ev::Scalar(v) => {
            if n == 0 {
                Ok(Ev::Scalar(Value::Null))
            } else {
                Err(StorageError::TypeError(format!(
                    "negation expects numeric, got {v}"
                )))
            }
        }
        Ev::Col(c) => match c.as_ref() {
            Column::Int { values, nulls } => Ok(Ev::Col(Cow::Owned(Column::Int {
                values: values.iter().map(|x| x.wrapping_neg()).collect(),
                nulls: nulls.clone(),
            }))),
            Column::Float { values, nulls } => Ok(Ev::Col(Cow::Owned(Column::Float {
                values: values.iter().map(|x| -x).collect(),
                nulls: nulls.clone(),
            }))),
            other if other.null_count() == other.len() => Ok(Ev::Col(Cow::Owned(Column::Float {
                values: vec![0.0; n],
                nulls: all_null(n),
            }))),
            other => {
                let i = (0..other.len()).find(|&i| !other.is_null(i)).unwrap_or(0);
                Err(StorageError::TypeError(format!(
                    "negation expects numeric, got {}",
                    other.value(i)
                )))
            }
        },
    }
}

fn all_null(n: usize) -> NullBitmap {
    let mut b = NullBitmap::new();
    for _ in 0..n {
        b.push(true);
    }
    b
}

/// `IN` membership kernel (SQL equality against each candidate, NULL tested
/// value → false). String columns match by dictionary code.
fn kernel_in_list<'a>(e: Ev<'a>, list: &[Value], negated: bool, n: usize) -> Result<Ev<'a>> {
    if let Ev::Scalar(v) = &e {
        if v.is_null() {
            return Ok(Ev::Scalar(Value::Bool(false)));
        }
        let found = list.iter().any(|cand| v.sql_eq(cand));
        return Ok(Ev::Scalar(Value::Bool(found != negated)));
    }
    let out = match classify(&e) {
        Side::NullScalar => unreachable!("scalar handled above"),
        Side::Str(StrSrc::Col(codes, dict, nulls)) => {
            // Candidate strings resolve to codes once; non-string
            // candidates can never equal a string value.
            let mut target_codes: Vec<u32> = list
                .iter()
                .filter_map(|v| v.as_str().and_then(|s| dict.code_of(s)))
                .collect();
            target_codes.sort_unstable();
            target_codes.dedup();
            (0..n)
                .map(|i| {
                    if nulls.is_null(i) {
                        false
                    } else {
                        target_codes.binary_search(&codes[i]).is_ok() != negated
                    }
                })
                .collect()
        }
        Side::Str(StrSrc::Const(_)) => unreachable!("scalar handled above"),
        Side::Num(src) => {
            let nums: Vec<f64> = list.iter().filter_map(Value::as_f64).collect();
            (0..n)
                .map(|i| match src.at(i) {
                    None => false,
                    Some(x) => nums.contains(&x) != negated,
                })
                .collect()
        }
    };
    Ok(bool_col(out))
}

fn eval_logical(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    let lb = coerce_bool(l)?;
    let rb = coerce_bool(r)?;
    Ok(match (op, lb, rb) {
        (BinOp::And, Some(a), Some(b)) => Value::Bool(a && b),
        (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Value::Bool(false),
        (BinOp::Or, Some(a), Some(b)) => Value::Bool(a || b),
        (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn coerce_bool(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        v => Err(StorageError::TypeError(format!(
            "logical operator expects boolean, got {v}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::nullable("c", DataType::Str),
        ])
        .unwrap()
    }

    fn eval(e: &Expr, row: &[Value]) -> Value {
        e.bind(&schema()).unwrap().eval_row(row).unwrap()
    }

    #[test]
    fn comparisons() {
        let row = vec![Value::Int(5), Value::Float(2.5), Value::str("x")];
        assert_eq!(eval(&col("a").gt(lit(4)), &row), Value::Bool(true));
        assert_eq!(eval(&col("a").le(lit(4)), &row), Value::Bool(false));
        assert_eq!(eval(&col("b").eq(lit(2.5)), &row), Value::Bool(true));
        assert_eq!(eval(&col("c").eq(lit("x")), &row), Value::Bool(true));
        assert_eq!(eval(&col("a").eq(lit(5.0)), &row), Value::Bool(true));
    }

    #[test]
    fn logic_and_null_handling() {
        let row = vec![Value::Int(5), Value::Float(2.5), Value::Null];
        let e = col("a").gt(lit(0)).and(col("c").eq(lit("x")));
        assert_eq!(eval(&e, &row), Value::Bool(false));
        let e = col("a").gt(lit(0)).or(col("c").eq(lit("x")));
        assert_eq!(eval(&e, &row), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(col("c")),
            negated: false,
        };
        assert_eq!(eval(&e, &row), Value::Bool(true));
    }

    #[test]
    fn arithmetic_expressions() {
        let row = vec![Value::Int(4), Value::Float(0.5), Value::Null];
        let e = col("a").times(lit(2)).plus(col("b"));
        assert_eq!(eval(&e, &row), Value::Float(8.5));
        let e = Expr::Binary(BinOp::Div, Box::new(col("a")), Box::new(lit(2)));
        assert_eq!(eval(&e, &row), Value::Float(2.0));
    }

    #[test]
    fn in_list_membership() {
        let row = vec![Value::Int(4), Value::Float(0.5), Value::str("red")];
        let e = col("c").in_list(vec!["red".into(), "blue".into()]);
        assert_eq!(eval(&e, &row), Value::Bool(true));
        let e = Expr::InList {
            expr: Box::new(col("a")),
            list: vec![1.into(), 2.into()],
            negated: true,
        };
        assert_eq!(eval(&e, &row), Value::Bool(true));
    }

    #[test]
    fn bind_rejects_unknown_columns() {
        assert!(col("zzz").eq(lit(1)).bind(&schema()).is_err());
    }

    #[test]
    fn referenced_columns_deduplicates() {
        let e = col("a").gt(lit(1)).and(col("a").lt(col("b")));
        assert_eq!(
            e.referenced_columns(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // RHS would type-error (NOT over Int), but AND short-circuits.
        let row = vec![Value::Int(1), Value::Float(0.0), Value::Null];
        let e = col("a")
            .gt(lit(100))
            .and(Expr::Unary(UnaryOp::Not, Box::new(col("a"))));
        assert_eq!(eval(&e, &row), Value::Bool(false));
    }

    #[test]
    fn display_round_trips_visually() {
        let e = col("a").gt(lit(1)).and(col("c").eq(lit("x")));
        assert_eq!(e.to_string(), "((a > 1) AND (c = 'x'))");
    }
}
