//! Per-column domain statistics: distinct values, min/max, percentiles.
//!
//! HypeR needs these for (a) "update attribute to its domain min/max"
//! experiments (Fig. 8), (b) percentile-based updates (the Amazon use case),
//! and (c) bucketizing continuous attributes before the how-to IP (§4.3).

use std::collections::HashMap;

use crate::error::Result;
use crate::table::Table;
use crate::value::Value;

/// Summary of one column's observed domain.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Number of non-NULL values.
    pub count: usize,
    /// Number of NULLs.
    pub null_count: usize,
    /// Distinct non-NULL values with their frequencies, sorted by value.
    pub distinct: Vec<(Value, usize)>,
    /// Minimum (total order), if any non-NULL value exists.
    pub min: Option<Value>,
    /// Maximum.
    pub max: Option<Value>,
    /// Mean of numeric values, if the column is numeric.
    pub mean: Option<f64>,
}

impl ColumnStats {
    /// Compute statistics for the named column of `table`.
    pub fn compute(table: &Table, column: &str) -> Result<ColumnStats> {
        let idx = table.schema().index_of(column)?;
        let col = table.column(idx);
        let mut freq: HashMap<Value, usize> = HashMap::new();
        let mut null_count = 0usize;
        let mut sum = 0.0f64;
        let mut numeric = 0usize;
        for v in col.iter() {
            if v.is_null() {
                null_count += 1;
                continue;
            }
            if let Some(x) = v.as_f64() {
                sum += x;
                numeric += 1;
            }
            *freq.entry(v).or_insert(0) += 1;
        }
        let mut distinct: Vec<(Value, usize)> = freq.into_iter().collect();
        distinct.sort_by(|a, b| a.0.cmp(&b.0));
        let count = col.len() - null_count;
        Ok(ColumnStats {
            name: column.to_string(),
            count,
            null_count,
            min: distinct.first().map(|(v, _)| v.clone()),
            max: distinct.last().map(|(v, _)| v.clone()),
            mean: if numeric == count && count > 0 {
                Some(sum / count as f64)
            } else {
                None
            },
            distinct,
        })
    }

    /// Number of distinct non-NULL values.
    pub fn num_distinct(&self) -> usize {
        self.distinct.len()
    }

    /// The distinct values only (sorted).
    pub fn domain(&self) -> Vec<Value> {
        self.distinct.iter().map(|(v, _)| v.clone()).collect()
    }

    /// Empirical `p`-th percentile (0 ≤ p ≤ 100) of a numeric column using
    /// the nearest-rank method; `None` for non-numeric or empty columns.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut xs: Vec<f64> = Vec::with_capacity(self.count);
        for (v, n) in &self.distinct {
            let x = v.as_f64()?;
            for _ in 0..*n {
                xs.push(x);
            }
        }
        // `distinct` is value-sorted, so xs is already ascending.
        let rank = ((p / 100.0) * xs.len() as f64).ceil() as usize;
        Some(xs[rank.clamp(1, xs.len()) - 1])
    }

    /// `k` equi-width bucket midpoints spanning `[min, max]` of a numeric
    /// column (the paper's bucketization for how-to candidate updates).
    pub fn equi_width_midpoints(&self, k: usize) -> Option<Vec<f64>> {
        if k == 0 {
            return Some(Vec::new());
        }
        let lo = self.min.as_ref()?.as_f64()?;
        let hi = self.max.as_ref()?.as_f64()?;
        if !(lo.is_finite() && hi.is_finite()) {
            return None;
        }
        let width = (hi - lo) / k as f64;
        Some((0..k).map(|i| lo + width * (i as f64 + 0.5)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::nullable("x", DataType::Float),
            Field::new("c", DataType::Str),
        ])
        .unwrap();
        let mut t = crate::table::TableBuilder::new("t", schema);
        for x in [10.0, 20.0, 20.0, 40.0, 100.0] {
            t.push(vec![x.into(), "a".into()]).unwrap();
        }
        t.push(vec![Value::Null, "b".into()]).unwrap();
        t.build()
    }

    #[test]
    fn basic_stats() {
        let s = ColumnStats::compute(&table(), "x").unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.num_distinct(), 4);
        assert_eq!(s.min, Some(Value::Float(10.0)));
        assert_eq!(s.max, Some(Value::Float(100.0)));
        assert!((s.mean.unwrap() - 38.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_stats_have_no_mean() {
        let s = ColumnStats::compute(&table(), "c").unwrap();
        assert_eq!(s.mean, None);
        assert_eq!(s.num_distinct(), 2);
        assert_eq!(s.min, Some(Value::str("a")));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = ColumnStats::compute(&table(), "x").unwrap();
        assert_eq!(s.percentile(50.0), Some(20.0));
        assert_eq!(s.percentile(80.0), Some(40.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(1.0), Some(10.0));
    }

    #[test]
    fn equi_width_midpoints_span_domain() {
        let s = ColumnStats::compute(&table(), "x").unwrap();
        let mids = s.equi_width_midpoints(3).unwrap();
        assert_eq!(mids.len(), 3);
        assert!((mids[0] - 25.0).abs() < 1e-9);
        assert!((mids[2] - 85.0).abs() < 1e-9);
        assert_eq!(s.equi_width_midpoints(0).unwrap().len(), 0);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(ColumnStats::compute(&table(), "nope").is_err());
    }
}
