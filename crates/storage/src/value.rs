//! Dynamically-typed values stored in relations.
//!
//! `Value` is the cell type of every table. It must be usable as a group-by
//! and index key, so it implements a *strict* `Eq`/`Hash`/`Ord` (variant-aware,
//! bit-exact for floats), while SQL-style comparisons with numeric coercion
//! are exposed separately via [`Value::sql_eq`] and [`Value::sql_cmp`].

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Result, StorageError};

/// Logical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string (categorical attributes).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "BOOL"),
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// A single cell value.
///
/// Strings are reference-counted so cloning rows is cheap (see the heap
/// allocation guidance in the Rust performance book).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(Arc<str>),
}

impl Value {
    /// Create a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (Int and Float coerce; Bool maps to 0/1).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (floats truncate only when exactly integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL equality: numeric variants coerce (`Int(1) = Float(1.0)`), NULL
    /// compares equal to nothing (including NULL), mirroring three-valued
    /// logic collapsed to `false`.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => a == b,
            },
        }
    }

    /// SQL ordering comparison with numeric coercion.
    ///
    /// Returns `None` when either side is NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// Arithmetic addition with numeric coercion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "+", |x, y| x + y, i64::checked_add)
    }

    /// Arithmetic subtraction with numeric coercion.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "-", |x, y| x - y, i64::checked_sub)
    }

    /// Arithmetic multiplication with numeric coercion.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "*", |x, y| x * y, i64::checked_mul)
    }

    /// Arithmetic division; always produces a float, errors on division by 0.
    pub fn div(&self, other: &Value) -> Result<Value> {
        match (self.as_f64(), other.as_f64()) {
            (Some(_), Some(0.0)) => Err(StorageError::TypeError("division by zero".into())),
            (Some(x), Some(y)) => Ok(Value::Float(x / y)),
            _ => Err(StorageError::TypeError(format!(
                "cannot divide {self} by {other}"
            ))),
        }
    }

    /// Rank used to totally order heterogeneous values.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Canonical float bits: normalizes `-0.0` and all NaNs so that
    /// `Hash`/`Eq` agree.
    fn canonical_f64_bits(f: f64) -> u64 {
        canonical_f64_bits(f)
    }
}

/// Canonical float bits (`-0.0` and all NaNs normalized) — the bit pattern
/// under which [`Value`]'s strict `Eq`/`Hash` and the typed columns'
/// key-part encoding agree.
pub(crate) fn canonical_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0.0f64.to_bits()
    } else {
        f.to_bits()
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    op: &str,
    f: fn(f64, f64) -> f64,
    g: fn(i64, i64) -> Option<i64>,
) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match g(*x, *y) {
            Some(v) => Ok(Value::Int(v)),
            None => Ok(Value::Float(f(*x as f64, *y as f64))),
        },
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Value::Float(f(x, y))),
            _ => Err(StorageError::TypeError(format!(
                "cannot apply `{op}` to {a} and {b}"
            ))),
        },
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                Value::canonical_f64_bits(*a) == Value::canonical_f64_bits(*b)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.variant_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Value::canonical_f64_bits(*f).hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: numerics compare by value first with a variant tie-break,
    /// other variants compare by rank then payload. Consistent with `Eq`.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) => a.variant_rank().cmp(&b.variant_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// A row is a vector of values, positionally aligned with a schema.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn strict_eq_is_variant_aware() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::str("a"), Value::str("a"));
    }

    #[test]
    fn hash_agrees_with_eq() {
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(f64::NAN))
        );
    }

    #[test]
    fn sql_eq_coerces_numerics() {
        assert!(Value::Int(1).sql_eq(&Value::Float(1.0)));
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Int(1).sql_eq(&Value::str("1")));
    }

    #[test]
    fn sql_cmp_orders_numerics() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("a").sql_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), None);
    }

    #[test]
    fn total_order_is_consistent() {
        let mut vals = [
            Value::str("z"),
            Value::Float(1.5),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Int(-4),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert!(matches!(vals[1], Value::Bool(true)));
        assert_eq!(vals[2], Value::Int(-4));
        assert_eq!(vals[3], Value::Float(1.5));
        assert_eq!(vals[4], Value::Int(2));
        assert_eq!(vals[5], Value::str("z"));
    }

    #[test]
    fn arithmetic_coerces_and_checks() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).mul(&Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::str("a").add(&Value::Int(1)).is_err());
        // Overflow falls back to float instead of panicking.
        assert!(matches!(
            Value::Int(i64::MAX).add(&Value::Int(1)).unwrap(),
            Value::Float(_)
        ));
    }

    #[test]
    fn integral_float_as_i64() {
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
    }
}
