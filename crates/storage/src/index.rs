//! Multi-attribute support index.
//!
//! §3.3 of the paper: "the majority of the values in `Dom(C)` would have
//! zero-support in the database … we build an index of values in `Dom(C)` to
//! efficiently identify the set of values that would generate a positive
//! probability-value. This optimization ensures that the runtime is linear
//! in the database size."
//!
//! [`SupportIndex`] maps each observed combination of values of a column set
//! to the row ids exhibiting it, so estimators iterate only over supported
//! combinations (`O(n)`) instead of the full cartesian domain product.

use std::collections::HashMap;

use crate::error::Result;
use crate::table::Table;
use crate::value::{Row, Value};

/// Index from observed value-combinations of a column set to row ids.
#[derive(Debug, Clone)]
pub struct SupportIndex {
    columns: Vec<String>,
    col_idx: Vec<usize>,
    groups: HashMap<Row, Vec<u32>>,
    num_rows: usize,
}

impl SupportIndex {
    /// Build the index over `columns` of `table`.
    pub fn build(table: &Table, columns: &[String]) -> Result<SupportIndex> {
        let col_idx: Vec<usize> = columns
            .iter()
            .map(|c| table.schema().index_of(c))
            .collect::<Result<_>>()?;
        let mut groups: HashMap<Row, Vec<u32>> = HashMap::new();
        for i in 0..table.num_rows() {
            let key: Row = col_idx.iter().map(|&c| table.column(c).value(i)).collect();
            groups.entry(key).or_default().push(i as u32);
        }
        Ok(SupportIndex {
            columns: columns.to_vec(),
            col_idx,
            groups,
            num_rows: table.num_rows(),
        })
    }

    /// The indexed column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Positions of the indexed columns in the base table.
    pub fn column_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// Number of observed (supported) combinations — at most `num_rows`.
    pub fn num_supported(&self) -> usize {
        self.groups.len()
    }

    /// Row ids exhibiting a combination, or `None` for zero-support values.
    pub fn rows_for(&self, key: &[Value]) -> Option<&[u32]> {
        self.groups.get(key).map(Vec::as_slice)
    }

    /// Empirical probability of a combination: `support / n`.
    pub fn probability(&self, key: &[Value]) -> f64 {
        if self.num_rows == 0 {
            return 0.0;
        }
        self.groups
            .get(key)
            .map_or(0.0, |rows| rows.len() as f64 / self.num_rows as f64)
    }

    /// Iterate over `(combination, row ids)` pairs, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, &[u32])> {
        self.groups.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// All supported combinations, sorted for deterministic iteration.
    pub fn supported_sorted(&self) -> Vec<Row> {
        let mut keys: Vec<Row> = self.groups.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Total rows indexed.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let mut t = crate::table::TableBuilder::new("t", schema);
        for (a, b) in [("x", 1), ("x", 1), ("x", 2), ("y", 1)] {
            t.push(vec![a.into(), b.into()]).unwrap();
        }
        t.build()
    }

    #[test]
    fn groups_rows_by_combination() {
        let idx = SupportIndex::build(&table(), &["a".into(), "b".into()]).unwrap();
        assert_eq!(idx.num_supported(), 3);
        assert_eq!(idx.rows_for(&["x".into(), 1.into()]).unwrap(), &[0u32, 1]);
        assert!(idx.rows_for(&["y".into(), 2.into()]).is_none());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let idx = SupportIndex::build(&table(), &["a".into()]).unwrap();
        let total: f64 = idx
            .supported_sorted()
            .iter()
            .map(|k| idx.probability(k))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((idx.probability(&["x".into()]) - 0.75).abs() < 1e-12);
        assert_eq!(idx.probability(&["zzz".into()]), 0.0);
    }

    #[test]
    fn supported_combinations_bounded_by_rows() {
        // The §3.3 guarantee: supported combos ≤ n regardless of domain size.
        let idx = SupportIndex::build(&table(), &["a".into(), "b".into()]).unwrap();
        assert!(idx.num_supported() <= idx.num_rows());
    }

    #[test]
    fn empty_column_set_groups_everything() {
        let idx = SupportIndex::build(&table(), &[]).unwrap();
        assert_eq!(idx.num_supported(), 1);
        assert_eq!(idx.probability(&[]), 1.0);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(SupportIndex::build(&table(), &["nope".into()]).is_err());
    }
}
