//! Morsel-driven parallel execution over columnar tables.
//!
//! A **morsel** is a fixed-size contiguous range of a table's rows (the
//! Leis et al. "Morsel-Driven Parallelism" unit of scheduling, also the
//! execution model behind DuckDB's vectorized engine). The hot operators
//! — filter, hash join, group-by aggregation, and vectorized expression
//! evaluation — split their input into morsels, evaluate each morsel as
//! an independent task over a [`HyperRuntime`] worker pool, and merge the
//! per-morsel results **in morsel order**.
//!
//! ## The determinism contract
//!
//! Every morsel-parallel path in this crate is **bit-identical**
//! (`f64::to_bits`-level) to its sequential counterpart, for any worker
//! count and any morsel size:
//!
//! * morsel boundaries depend only on `(row_count, morsel_rows)`, never
//!   on the worker count ([`HyperRuntime::for_each_chunked`]);
//! * per-morsel results are merged in morsel order, so concatenated
//!   selections, columns, and join match lists reproduce the sequential
//!   row order exactly;
//! * order-sensitive folds (float aggregate sums, group first-occurrence
//!   order) run over the merged stream in global row order — the
//!   parallel phase only precomputes per-row inputs (selection vectors,
//!   evaluated columns, encoded group keys), never reassociates a float
//!   reduction.
//!
//! The zero-worker runtime degrades to a sequential loop in morsel
//! order, so `workers ∈ {0, 1, N}` all produce the same bytes — this is
//! property-tested in `tests/prop_morsel.rs`.

use std::ops::Range;
use std::sync::OnceLock;

use hyper_runtime::HyperRuntime;

use crate::column::Column;
use crate::error::Result;
use crate::expr::BoundExpr;
use crate::table::Table;
use crate::value::DataType;

/// Default rows per morsel. A multiple of 64 (so sliced null bitmaps copy
/// whole words) sized to keep a handful of columns' worth of payload in
/// cache per task while amortizing the one queue push per morsel.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Tables with at least this many rows take the morsel-parallel path by
/// default (when the runtime has background workers); smaller inputs
/// aren't worth the scheduling overhead.
pub const PARALLEL_ROW_THRESHOLD: usize = 2 * DEFAULT_MORSEL_ROWS;

/// Should an operator over `rows` rows go morsel-parallel on `rt`?
pub fn should_parallelize(rows: usize, rt: &HyperRuntime) -> bool {
    rows >= PARALLEL_ROW_THRESHOLD && rt.workers() > 0
}

/// A fixed contiguous chunk of a table's rows: the scheduling unit of the
/// parallel operators. Holds the row range plus access to the table's
/// typed column buffers; [`Morsel::column`] materializes one column's
/// rows as a verbatim typed slice (dictionary shared for strings).
#[derive(Debug, Clone, Copy)]
pub struct Morsel<'a> {
    table: &'a Table,
    start: usize,
    end: usize,
}

impl<'a> Morsel<'a> {
    /// The morsel covering `rows` of `table`.
    pub fn new(table: &'a Table, rows: Range<usize>) -> Morsel<'a> {
        assert!(
            rows.start <= rows.end && rows.end <= table.num_rows(),
            "morsel {rows:?} out of bounds for {} rows",
            table.num_rows()
        );
        Morsel {
            table,
            start: rows.start,
            end: rows.end,
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// First (global) row index covered.
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last (global) row index covered.
    pub fn end(&self) -> usize {
        self.end
    }

    /// The global row range.
    pub fn rows(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Number of rows in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the morsel covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Column `i` restricted to this morsel's rows: a verbatim typed
    /// slice (same bits, same null pattern, shared string dictionary).
    pub fn column(&self, i: usize) -> Column {
        self.table.column(i).slice(self.start, self.len())
    }

    /// The morsel's rows as a standalone table (same name and schema).
    pub fn to_table(&self) -> Table {
        self.table.slice(self.start, self.len())
    }
}

/// Iterator over a table's morsels, in row order. The final morsel may be
/// shorter (the uneven tail).
#[derive(Debug, Clone)]
pub struct MorselScan<'a> {
    table: &'a Table,
    morsel_rows: usize,
    next: usize,
}

impl<'a> MorselScan<'a> {
    /// Scan `table` in chunks of `morsel_rows` (clamped to ≥ 1).
    pub fn new(table: &'a Table, morsel_rows: usize) -> MorselScan<'a> {
        MorselScan {
            table,
            morsel_rows: morsel_rows.max(1),
            next: 0,
        }
    }

    /// Rows per morsel.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Total number of morsels the scan will yield.
    pub fn morsel_count(&self) -> usize {
        self.table.num_rows().div_ceil(self.morsel_rows)
    }
}

impl<'a> Iterator for MorselScan<'a> {
    type Item = Morsel<'a>;

    fn next(&mut self) -> Option<Morsel<'a>> {
        if self.next >= self.table.num_rows() {
            return None;
        }
        let start = self.next;
        let end = (start + self.morsel_rows).min(self.table.num_rows());
        self.next = end;
        Some(Morsel::new(self.table, start..end))
    }
}

/// Run `f(morsel_index, row_range)` once per morsel over the runtime and
/// return the results **in morsel order**, whatever order the tasks ran
/// in. This is the merge-in-morsel-order primitive every parallel
/// operator builds on.
pub fn for_each_morsel<T, F>(rt: &HyperRuntime, rows: usize, morsel_rows: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let morsel_rows = morsel_rows.max(1);
    let count = rows.div_ceil(morsel_rows);
    let slots: Vec<OnceLock<T>> = (0..count).map(|_| OnceLock::new()).collect();
    rt.for_each_chunked(rows, morsel_rows, |range| {
        let m = range.start / morsel_rows;
        let v = f(m, range);
        let set = slots[m].set(v);
        debug_assert!(set.is_ok(), "each morsel runs exactly once");
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every morsel slot is filled"))
        .collect()
}

/// Morsel-parallel [`BoundExpr::eval_selection`]: per-morsel selection
/// vectors (global indices) concatenated in morsel order — bit-identical
/// to the sequential whole-table selection.
pub fn eval_selection_morsels(
    rt: &HyperRuntime,
    expr: &BoundExpr,
    table: &Table,
    morsel_rows: usize,
) -> Result<Vec<usize>> {
    // With no background workers every morsel would run inline on this
    // thread anyway; the whole-table evaluation is bit-identical (see the
    // determinism contract above) and skips the per-morsel slot
    // allocation, which showed up as a 1-core regression in bench_smoke.
    if table.num_rows() == 0 || rt.workers() == 0 {
        return expr.eval_selection(table);
    }
    let parts = for_each_morsel(rt, table.num_rows(), morsel_rows, |_, r| {
        expr.eval_selection_range(table, r.start, r.end - r.start)
    });
    let mut keep = Vec::new();
    for part in parts {
        keep.extend(part?);
    }
    Ok(keep)
}

/// Morsel-parallel [`BoundExpr::eval_column`]: per-morsel columns
/// concatenated in morsel order. Integer arithmetic that overflows in any
/// morsel widens the whole concatenation to floats, reproducing the
/// sequential whole-column promotion, so the result is bit-identical to
/// the sequential evaluation.
pub fn eval_column_morsels(
    rt: &HyperRuntime,
    expr: &BoundExpr,
    table: &Table,
    morsel_rows: usize,
) -> Result<Column> {
    // Same zero-worker fast path as `eval_selection_morsels`:
    // bit-identical by contract, no morsel-slot allocation.
    if table.num_rows() == 0 || rt.workers() == 0 {
        return expr.eval_column(table);
    }
    let parts = for_each_morsel(rt, table.num_rows(), morsel_rows, |_, r| {
        expr.eval_column_range(table, r.start, r.end - r.start)
    });
    let mut chunks = Vec::with_capacity(parts.len());
    for part in parts {
        chunks.push(part?);
    }
    concat_chunks(chunks)
}

/// Concatenate per-morsel result columns in order. Mixed `Int`/`Float`
/// chunks (an arithmetic overflow promoted one morsel) widen to `Float`,
/// matching the sequential whole-column promotion; every other mix is a
/// type error, which cannot happen for chunks of one expression.
pub(crate) fn concat_chunks(chunks: Vec<Column>) -> Result<Column> {
    let has_float = chunks.iter().any(|c| c.data_type() == DataType::Float);
    let has_int = chunks.iter().any(|c| c.data_type() == DataType::Int);
    let mut iter = chunks.into_iter();
    let mut out = iter.next().expect("at least one chunk");
    if has_float && has_int && out.data_type() == DataType::Int {
        let mut widened = Column::with_capacity(DataType::Float, out.len());
        widened.append_column(&out)?;
        out = widened;
    }
    for c in iter {
        out.append_column(&c)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::nullable("s", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..n {
            let s: Value = if i % 5 == 0 {
                Value::Null
            } else {
                ["a", "b", "c"][i % 3].into()
            };
            b.push(vec![Value::Int(i as i64), s]).unwrap();
        }
        b.build()
    }

    #[test]
    fn scan_covers_all_rows_with_uneven_tail() {
        let t = table(10);
        let morsels: Vec<_> = MorselScan::new(&t, 4).collect();
        assert_eq!(morsels.len(), 3);
        assert_eq!(morsels[0].rows(), 0..4);
        assert_eq!(morsels[2].rows(), 8..10);
        assert_eq!(MorselScan::new(&t, 4).morsel_count(), 3);
        let total: usize = morsels.iter().map(Morsel::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn morsel_column_matches_table_rows() {
        let t = table(10);
        let m = Morsel::new(&t, 3..8);
        let c = m.column(0);
        for i in 0..m.len() {
            assert_eq!(c.value(i), t.column(0).value(3 + i));
        }
        let sub = m.to_table();
        assert_eq!(sub.num_rows(), 5);
        assert_eq!(format!("{:?}", sub.schema()), format!("{:?}", t.schema()));
    }

    #[test]
    fn parallel_selection_matches_sequential() {
        let t = table(100);
        let pred = col("x").ge(lit(17)).and(col("s").eq(lit("a")));
        let bound = pred.bind(t.schema()).unwrap();
        let seq = bound.eval_selection(&t).unwrap();
        for workers in [0, 3] {
            let rt = HyperRuntime::with_workers(workers);
            for morsel_rows in [1, 7, 64, 1000] {
                let par = eval_selection_morsels(&rt, &bound, &t, morsel_rows).unwrap();
                assert_eq!(par, seq, "workers={workers} morsel_rows={morsel_rows}");
            }
        }
    }

    #[test]
    fn parallel_eval_column_widens_like_sequential() {
        // A column whose arithmetic overflows only in one morsel must
        // still widen the whole concatenation to Float.
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..50 {
            let v = if i == 37 { i64::MAX } else { i };
            b.push(vec![Value::Int(v)]).unwrap();
        }
        let t = b.build();
        let e = col("x").plus(lit(1));
        let bound = e.bind(t.schema()).unwrap();
        let seq = bound.eval_column(&t).unwrap();
        assert_eq!(seq.data_type(), DataType::Float);
        let rt = HyperRuntime::with_workers(2);
        let par = eval_column_morsels(&rt, &bound, &t, 8).unwrap();
        assert_eq!(par.data_type(), DataType::Float);
        assert_eq!(par, seq);
    }
}
