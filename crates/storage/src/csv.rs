//! Minimal CSV import/export for tables (debugging, experiment dumps).
//!
//! Supports quoted fields with embedded commas/quotes; types are taken
//! from the target schema on import. Import is **columnar**: each parsed
//! cell appends straight to its field's typed [`Column`] builder — no
//! intermediate `Row` materialization — and the columns assemble into a
//! [`Table`] at the end.

use std::fmt::Write as _;

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};

/// Serialize a table to CSV with a header row.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&f.name))
        .collect();
    let _ = writeln!(out, "{}", names.join(","));
    for i in 0..table.num_rows() {
        let cells: Vec<String> = (0..table.num_columns())
            .map(|c| match table.column(c).value(i) {
                Value::Null => String::new(),
                Value::Str(s) => escape(&s),
                v => v.to_string(),
            })
            .collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Parse CSV text (header row required) into a table using `schema` types.
pub fn from_csv(name: &str, schema: Schema, text: &str) -> Result<Table> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| StorageError::Csv("empty input".into()))?;
    let cols = split_line(header)?;
    if cols.len() != schema.len() {
        return Err(StorageError::Csv(format!(
            "header has {} columns, schema has {}",
            cols.len(),
            schema.len()
        )));
    }
    for (h, f) in cols.iter().zip(schema.fields()) {
        if h != &f.name {
            return Err(StorageError::Csv(format!(
                "header column `{h}` does not match schema column `{}`",
                f.name
            )));
        }
    }
    // One typed column builder per field; cells append as they parse.
    let fields = schema.fields().to_vec();
    let mut columns: Vec<Column> = fields.iter().map(|f| Column::new(f.data_type)).collect();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let cells = split_line(line)?;
        if cells.len() != fields.len() {
            return Err(StorageError::Csv(format!(
                "line {}: expected {} cells, got {}",
                lineno + 2,
                fields.len(),
                cells.len()
            )));
        }
        for ((cell, f), col) in cells.iter().zip(&fields).zip(&mut columns) {
            col.push(&parse_cell(cell, f.data_type, f.nullable, lineno + 2)?)?;
        }
    }
    let mut builder = TableBuilder::new(name, schema);
    for (f, col) in fields.iter().zip(columns) {
        builder.set_column(&f.name, col)?;
    }
    Ok(builder.build())
}

fn parse_cell(cell: &str, dt: DataType, nullable: bool, lineno: usize) -> Result<Value> {
    if cell.is_empty() {
        return if nullable {
            Ok(Value::Null)
        } else {
            Err(StorageError::Csv(format!(
                "line {lineno}: empty cell in non-nullable column"
            )))
        };
    }
    let parsed = match dt {
        DataType::Int => cell.parse::<i64>().ok().map(Value::Int),
        DataType::Float => cell.parse::<f64>().ok().map(Value::Float),
        DataType::Bool => match cell {
            "true" | "TRUE" | "1" => Some(Value::Bool(true)),
            "false" | "FALSE" | "0" => Some(Value::Bool(false)),
            _ => None,
        },
        DataType::Str => Some(Value::str(cell)),
    };
    parsed.ok_or_else(|| StorageError::Csv(format!("line {lineno}: cannot parse `{cell}` as {dt}")))
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn split_line(line: &str) -> Result<Vec<String>> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cur.push('"');
                }
                '"' => in_quotes = false,
                c => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => cells.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(StorageError::Csv("unterminated quote".into()));
    }
    cells.push(cur);
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::nullable("score", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let t = TableBuilder::new("t", schema())
            .rows([
                vec![1.into(), "plain".into(), 0.5.into()],
                vec![2.into(), "with,comma".into(), Value::Null],
                vec![3.into(), "with\"quote".into(), 1.5.into()],
            ])
            .unwrap()
            .build();
        let csv = to_csv(&t);
        let back = from_csv("t", schema(), &csv).unwrap();
        assert_eq!(back.num_rows(), 3);
        assert_eq!(back.column(1).value(1), Value::str("with,comma"));
        assert_eq!(back.column(2).value(1), Value::Null);
        assert_eq!(back.column(1).value(2), Value::str("with\"quote"));
    }

    #[test]
    fn header_mismatch_rejected() {
        let err = from_csv("t", schema(), "id,wrong,score\n1,a,0.5\n").unwrap_err();
        assert!(matches!(err, StorageError::Csv(_)));
    }

    #[test]
    fn type_errors_carry_line_numbers() {
        let err = from_csv("t", schema(), "id,name,score\nxx,a,0.5\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn empty_cell_null_handling() {
        let t = from_csv("t", schema(), "id,name,score\n1,a,\n").unwrap();
        assert_eq!(t.column(2).value(0), Value::Null);
        let err = from_csv("t", schema(), "id,name,score\n,a,1.0\n").unwrap_err();
        assert!(matches!(err, StorageError::Csv(_)));
    }
}
