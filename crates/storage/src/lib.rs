//! # hyper-storage
//!
//! The relational substrate of the HypeR reproduction: an in-memory,
//! **typed-columnar**, multi-relation database with the query operators the
//! paper's `Use` clause requires (selection, hash equi-join, group-by
//! aggregation, projection), per-column domain statistics, and the
//! multi-attribute *support index* that makes backdoor-adjustment
//! estimation linear in the data (paper §3.3).
//!
//! ## Storage layout
//!
//! Each [`Table`] column is a typed [`Column`]: `Int` is `Vec<i64>`,
//! `Float` is `Vec<f64>`, `Bool` is `Vec<bool>`, and `Str` is
//! dictionary-encoded (`Vec<u32>` codes into an `Arc`-shared [`StrDict`]);
//! every column carries a [`NullBitmap`] (a set bit marks a NULL row; the
//! payload slot holds an unobserved default). Execution is vectorized on
//! top of this layout: predicates compile once ([`Expr::bind`]) and
//! evaluate column-at-a-time ([`BoundExpr::eval_column`] /
//! [`BoundExpr::eval_selection`]) into selection vectors, `gather` and
//! projection are typed buffer copies that share string dictionaries, and
//! joins/aggregations key on `(tag, bits)` parts read straight off the
//! buffers. Ingest is columnar too: [`TableBuilder`] validates rows (or
//! whole typed columns) into `Column` buffers; the old row-oriented
//! `Table` API (`push_row`, `row`, `iter_rows`, `get`) survives only as a
//! `#[deprecated]` compatibility shim, semantically pinned to the typed
//! paths by `tests/prop_parity.rs`.
//!
//! Tables and databases carry content [`Fingerprint`]s
//! ([`Table::fingerprint`] / [`Database::fingerprint`]): stable 64-bit
//! hashes of schema + cells, independent of construction history, which
//! key the engine's process-wide shared artifact store.
//!
//! ## Execution model: morsel-driven parallelism
//!
//! Above ~8k rows the hot operators go **morsel-parallel** (see
//! [`morsel`]): the input is split into fixed row ranges of
//! [`morsel::DEFAULT_MORSEL_ROWS`] rows, each morsel is an independent
//! task on the shared `HyperRuntime` worker pool, and per-morsel results
//! are merged **in morsel order**. Morsel boundaries depend only on the
//! row count and morsel size — never on the worker count — and every
//! order-sensitive fold (float aggregate sums, group first-occurrence
//! order, join match order) runs over the merged stream in global row
//! order, so the parallel paths are **bit-identical** (`f64::to_bits`)
//! to the sequential ones for any worker count. Concretely:
//! [`ops::filter`] concatenates per-morsel selection vectors;
//! [`ops::hash_join`] extracts key parts and probes per morsel and
//! partitions the build side by key hash; [`ops::aggregate`] encodes
//! group keys and evaluates agg inputs per morsel but folds accumulators
//! sequentially in row order; [`BoundExpr::eval_column`] evaluates
//! ranges via [`Column::slice`] leaves and re-concatenates (widening
//! Int→Float when any morsel's arithmetic overflowed, matching the
//! sequential whole-column promotion). Tables larger than memory scan
//! chunk-at-a-time through the `hyper-store` paging tier, with chunk
//! granularity = morsel granularity.
//!
//! ## Quick example
//!
//! ```
//! use hyper_storage::{
//!     col, lit, AggExpr, AggFunc, Database, Field, LogicalPlan, Schema, TableBuilder, DataType,
//! };
//!
//! let mut db = Database::new();
//! let t = TableBuilder::with_key(
//!     "product",
//!     Schema::new(vec![
//!         Field::new("pid", DataType::Int),
//!         Field::new("price", DataType::Float),
//!     ]).unwrap(),
//!     &["pid"],
//! ).unwrap()
//! .rows([
//!     vec![1.into(), 999.0.into()],
//!     vec![2.into(), 529.0.into()],
//! ]).unwrap()
//! .build();
//! db.add_table(t).unwrap();
//!
//! let plan = LogicalPlan::scan("product")
//!     .filter(col("price").lt(lit(700.0)))
//!     .aggregate(&[], vec![AggExpr::new(AggFunc::Count, None, "n")]);
//! let out = plan.execute(&db).unwrap();
//! assert_eq!(out.column(0).value(0).as_i64(), Some(1));
//! ```

#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod database;
pub mod error;
pub mod expr;
pub mod fingerprint;
pub mod index;
pub mod morsel;
pub mod ops;
pub mod plan;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use column::{Column, NullBitmap, StrDict};
pub use database::{Database, ForeignKey};
pub use error::{Result, StorageError};
pub use expr::{col, lit, BinOp, BoundExpr, Expr, UnaryOp};
pub use fingerprint::Fingerprint;
pub use index::SupportIndex;
pub use morsel::{Morsel, MorselScan, DEFAULT_MORSEL_ROWS, PARALLEL_ROW_THRESHOLD};
pub use ops::{AggExpr, AggFunc};
pub use plan::LogicalPlan;
pub use schema::{Field, Schema};
pub use stats::ColumnStats;
pub use table::{Table, TableBuilder};
pub use value::{DataType, Row, Value};
