//! Physical relational operators: filter, hash join, group-by aggregation.

pub mod aggregate;
pub mod filter;
pub mod join;

pub use aggregate::{aggregate, Accumulator, AggExpr, AggFunc};
pub use filter::{filter, matching_rows};
pub use join::hash_join;
