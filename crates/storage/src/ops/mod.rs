//! Physical relational operators: filter, hash join, group-by aggregation.

pub mod aggregate;
pub mod filter;
pub mod join;

pub use aggregate::{aggregate, aggregate_on, Accumulator, AggExpr, AggFunc};
pub use filter::{filter, matching_rows, matching_rows_on};
pub use join::{hash_join, hash_join_on};
