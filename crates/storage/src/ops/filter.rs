//! Selection (σ): keep rows satisfying a predicate.

use crate::error::Result;
use crate::expr::Expr;
use crate::table::Table;

/// Filter `input` by `predicate`, returning a new table with the same schema.
pub fn filter(input: &Table, predicate: &Expr) -> Result<Table> {
    let bound = predicate.bind(input.schema())?;
    let mut keep = Vec::new();
    for i in 0..input.num_rows() {
        if bound.eval_predicate_at(input, i)? {
            keep.push(i);
        }
    }
    Ok(input.gather(&keep))
}

/// Return the row indices of `input` satisfying `predicate`.
pub fn matching_rows(input: &Table, predicate: &Expr) -> Result<Vec<usize>> {
    let bound = predicate.bind(input.schema())?;
    let mut keep = Vec::new();
    for i in 0..input.num_rows() {
        if bound.eval_predicate_at(input, i)? {
            keep.push(i);
        }
    }
    Ok(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("tag", DataType::Str),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for (x, tag) in [(1, "a"), (2, "b"), (3, "a"), (4, "c")] {
            t.push_row(vec![x.into(), tag.into()]).unwrap();
        }
        t
    }

    #[test]
    fn filters_rows() {
        let t = table();
        let out = filter(&t, &col("tag").eq(lit("a"))).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column_by_name("x").unwrap(), &[1.into(), 3.into()]);
    }

    #[test]
    fn empty_result_keeps_schema() {
        let t = table();
        let out = filter(&t, &col("x").gt(lit(100))).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn matching_rows_returns_indices() {
        let t = table();
        assert_eq!(matching_rows(&t, &col("x").ge(lit(3))).unwrap(), vec![2, 3]);
    }
}
