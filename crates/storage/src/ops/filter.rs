//! Selection (σ): keep rows satisfying a predicate.

use hyper_runtime::HyperRuntime;

use crate::error::Result;
use crate::expr::Expr;
use crate::morsel::{self, DEFAULT_MORSEL_ROWS};
use crate::table::Table;

/// Filter `input` by `predicate`, returning a new table with the same
/// schema. The predicate is evaluated vectorized ([`crate::BoundExpr::
/// eval_selection`]) into a selection vector, then the surviving rows are
/// gathered as typed buffer copies. Large inputs evaluate the selection
/// morsel-parallel over the global [`HyperRuntime`]; the result is
/// bit-identical to the sequential scan (see [`crate::morsel`]).
pub fn filter(input: &Table, predicate: &Expr) -> Result<Table> {
    let keep = matching_rows(input, predicate)?;
    Ok(input.gather(&keep))
}

/// Return the row indices of `input` satisfying `predicate` (the selection
/// vector of the vectorized scan). Auto-parallel above
/// [`crate::morsel::PARALLEL_ROW_THRESHOLD`] rows.
pub fn matching_rows(input: &Table, predicate: &Expr) -> Result<Vec<usize>> {
    let rt = HyperRuntime::global();
    if morsel::should_parallelize(input.num_rows(), rt) {
        matching_rows_on(rt, input, predicate, DEFAULT_MORSEL_ROWS)
    } else {
        predicate.bind(input.schema())?.eval_selection(input)
    }
}

/// Explicit morsel-parallel [`matching_rows`] on a caller-chosen runtime
/// and morsel size (always takes the morsel path; the parity tests drive
/// this across worker counts).
pub fn matching_rows_on(
    rt: &HyperRuntime,
    input: &Table,
    predicate: &Expr,
    morsel_rows: usize,
) -> Result<Vec<usize>> {
    let bound = predicate.bind(input.schema())?;
    morsel::eval_selection_morsels(rt, &bound, input, morsel_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("tag", DataType::Str),
        ])
        .unwrap();
        let mut t = crate::table::TableBuilder::new("t", schema);
        for (x, tag) in [(1, "a"), (2, "b"), (3, "a"), (4, "c")] {
            t.push(vec![x.into(), tag.into()]).unwrap();
        }
        t.build()
    }

    #[test]
    fn filters_rows() {
        let t = table();
        let out = filter(&t, &col("tag").eq(lit("a"))).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(
            out.column_by_name("x").unwrap().to_values(),
            vec![1.into(), 3.into()]
        );
    }

    #[test]
    fn empty_result_keeps_schema() {
        let t = table();
        let out = filter(&t, &col("x").gt(lit(100))).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn short_circuit_suppresses_rhs_errors_like_the_row_evaluator() {
        // `x <> 0 AND 10/x > 2`: the division by zero on the first row is
        // guarded by the left side; both evaluators must keep row x=4 and
        // never surface the error.
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let t = crate::table::TableBuilder::new("t", schema)
            .rows([vec![0.into()], vec![4.into()]])
            .unwrap()
            .build();
        let ten_over_x = Expr::Binary(
            crate::expr::BinOp::Div,
            Box::new(lit(10)),
            Box::new(col("x")),
        );
        let pred = col("x").ne(lit(0)).and(ten_over_x.gt(lit(2)));
        assert_eq!(matching_rows(&t, &pred).unwrap(), vec![1]);
        // An unguarded error still propagates (x=0 not filtered out).
        let bare = Expr::Binary(
            crate::expr::BinOp::Div,
            Box::new(lit(10)),
            Box::new(col("x")),
        )
        .gt(lit(2));
        assert!(matching_rows(&t, &bare).is_err());
    }

    #[test]
    fn short_circuit_suppresses_non_boolean_rhs_like_the_row_evaluator() {
        // `x = 999 AND x` — the RHS evaluates fine but is not boolean; the
        // row evaluator never type-checks it because the LHS is false on
        // every row. The vectorized path must agree (empty result, no
        // error), while an unguarded non-boolean operand still errors.
        let t = table();
        let pred = col("x").eq(lit(999)).and(col("x"));
        assert_eq!(matching_rows(&t, &pred).unwrap(), Vec::<usize>::new());
        let unguarded = col("x").ge(lit(0)).and(col("x"));
        assert!(matching_rows(&t, &unguarded).is_err());
    }

    #[test]
    fn int_overflow_with_trailing_null_errors_instead_of_panicking() {
        let schema = Schema::new(vec![Field::nullable("x", DataType::Int)]).unwrap();
        let t = crate::table::TableBuilder::new("t", schema)
            .rows([vec![i64::MAX.into()], vec![crate::value::Value::Null]])
            .unwrap()
            .build();
        // Row 0 overflows the checked add (promoting the column to float);
        // row 1's NULL operand is a type error, exactly as in the row
        // evaluator — not a panic.
        let pred = col("x").plus(lit(1)).gt(lit(0));
        assert!(matching_rows(&t, &pred).is_err());
    }

    #[test]
    fn matching_rows_returns_indices() {
        let t = table();
        assert_eq!(matching_rows(&t, &col("x").ge(lit(3))).unwrap(), vec![2, 3]);
    }
}
