//! Group-by aggregation with the decomposable aggregates HypeR supports
//! (`Count`, `Sum`, `Avg` — Definition 6 of the paper) plus `Min`/`Max`
//! for statistics.

use std::collections::HashMap;
use std::fmt;

use hyper_runtime::HyperRuntime;

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::expr::Expr;
use crate::morsel::{self, DEFAULT_MORSEL_ROWS};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`; counts `true`s when the input expression
    /// is boolean (the paper writes `Count(Credit = Good)`), otherwise counts
    /// non-NULL values.
    Count,
    /// Sum of numeric values (NULLs skipped).
    Sum,
    /// Arithmetic mean of numeric values (NULLs skipped).
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFunc {
    /// Parse a (case-insensitive) function name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" | "AVERAGE" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Whether this aggregate is decomposable in the sense of Definition 6
    /// (can be computed per block and recombined with `g = Sum`).
    pub fn is_decomposable(&self) -> bool {
        matches!(self, AggFunc::Count | AggFunc::Sum | AggFunc::Avg)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// An aggregate expression `func(input) AS alias`. `input = None` means `*`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input expression; `None` for `COUNT(*)`.
    pub input: Option<Expr>,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Construct an aggregate expression.
    pub fn new(func: AggFunc, input: Option<Expr>, alias: impl Into<String>) -> Self {
        AggExpr {
            func,
            input,
            alias: alias.into(),
        }
    }

    /// Output column type. `Min`/`Max` preserve the evaluated input's type
    /// (they return observed values verbatim); `Count` is integer, the
    /// arithmetic aggregates are float.
    fn output_type(&self, evaluated_input: Option<&Column>) -> DataType {
        match self.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Min | AggFunc::Max => evaluated_input.map_or(DataType::Int, Column::data_type),
            _ => DataType::Float,
        }
    }
}

/// Incremental accumulator for one (group, aggregate) pair.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    count: i64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        Accumulator {
            func,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    /// Fold one input value (already the evaluated aggregate argument; pass
    /// `Value::Int(1)` per row for `COUNT(*)`).
    pub fn update(&mut self, v: &Value) -> Result<()> {
        match self.func {
            AggFunc::Count => match v {
                Value::Null => {}
                Value::Bool(true) => self.count += 1,
                Value::Bool(false) => {}
                _ => self.count += 1,
            },
            AggFunc::Sum | AggFunc::Avg => {
                if !v.is_null() {
                    let x = v.as_f64().ok_or_else(|| {
                        StorageError::TypeError(format!("{} expects numeric, got {v}", self.func))
                    })?;
                    self.sum += x;
                    self.count += 1;
                }
            }
            AggFunc::Min => {
                if !v.is_null() {
                    let replace = match &self.min {
                        None => true,
                        Some(cur) => v.sql_cmp(cur).is_some_and(|o| o.is_lt()),
                    };
                    if replace {
                        self.min = Some(v.clone());
                    }
                }
            }
            AggFunc::Max => {
                if !v.is_null() {
                    let replace = match &self.max {
                        None => true,
                        Some(cur) => v.sql_cmp(cur).is_some_and(|o| o.is_gt()),
                    };
                    if replace {
                        self.max = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Final value of the aggregate.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Group `input` by the named columns and compute the aggregates.
///
/// With an empty `group_by`, produces exactly one row (global aggregates),
/// even over an empty input.
///
/// Vectorized: every aggregate input expression is evaluated once over the
/// whole table ([`crate::BoundExpr::eval_column`]), group keys are hashed
/// as typed `(tag, bits)` parts straight off the column buffers, and the
/// output's group columns are a typed `gather` of each group's first row.
///
/// Large inputs go morsel-parallel over the global [`HyperRuntime`]: the
/// agg-input columns and flattened group-key parts are produced per morsel
/// in parallel, but the accumulator fold runs over the merged stream in
/// global row order, so float sums and first-occurrence group order are
/// bit-identical to the sequential path (see [`crate::morsel`]).
pub fn aggregate(input: &Table, group_by: &[String], aggs: &[AggExpr]) -> Result<Table> {
    let rt = HyperRuntime::global();
    if morsel::should_parallelize(input.num_rows(), rt) {
        aggregate_on(rt, input, group_by, aggs, DEFAULT_MORSEL_ROWS)
    } else {
        // One morsel spanning the whole table: the plain sequential fold.
        aggregate_on(rt, input, group_by, aggs, input.num_rows().max(1))
    }
}

/// [`aggregate`] on a caller-chosen runtime and morsel size (the parity
/// tests drive this across worker counts and morsel sizes).
pub fn aggregate_on(
    rt: &HyperRuntime,
    input: &Table,
    group_by: &[String],
    aggs: &[AggExpr],
    morsel_rows: usize,
) -> Result<Table> {
    let morsel_rows = morsel_rows.max(1);
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|c| input.schema().index_of(c))
        .collect::<Result<_>>()?;
    // Evaluate each aggregate's input over all rows, morsel-parallel.
    let input_cols: Vec<Option<Column>> = aggs
        .iter()
        .map(|a| {
            a.input
                .as_ref()
                .map(|e| {
                    let bound = e.bind(input.schema())?;
                    morsel::eval_column_morsels(rt, &bound, input, morsel_rows)
                })
                .transpose()
        })
        .collect::<Result<_>>()?;

    // Output schema: group columns then aggregate aliases.
    let mut fields: Vec<Field> = group_idx
        .iter()
        .map(|&i| input.schema().field(i).clone())
        .collect();
    for (a, col) in aggs.iter().zip(&input_cols) {
        fields.push(Field::nullable(
            a.alias.clone(),
            a.output_type(col.as_ref()),
        ));
    }
    let schema = Schema::new(fields)?;

    // Encode the group key of every row as typed `(tag, bits)` parts —
    // one flat buffer per morsel, produced in parallel.
    let group_cols: Vec<&Column> = group_idx.iter().map(|&c| input.column(c)).collect();
    let n = input.num_rows();
    let ppr = group_cols.len() * 2; // u64 parts per row
    let key_bufs: Vec<Vec<u64>> = if group_cols.is_empty() {
        Vec::new()
    } else {
        morsel::for_each_morsel(rt, n, morsel_rows, |_, r| {
            let mut buf = Vec::with_capacity(r.len() * ppr);
            for i in r {
                for c in &group_cols {
                    c.write_key_part(i, &mut buf);
                }
            }
            buf
        })
    };

    // Group states keyed by typed parts; first-occurrence order preserved
    // for deterministic output, with a representative row per group. This
    // fold runs sequentially in global row order — float sums are
    // order-sensitive, and this is what makes the parallel path
    // bit-identical to the sequential one.
    let mut states: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut reps: Vec<usize> = Vec::new();
    let mut accs: Vec<Vec<Accumulator>> = Vec::new();

    let fold = |slot: usize, i: usize, accs: &mut Vec<Vec<Accumulator>>| -> Result<()> {
        for (a, col) in accs[slot].iter_mut().zip(&input_cols) {
            match col {
                Some(c) => a.update(&c.value(i))?,
                None => a.update(&Value::Int(1))?,
            }
        }
        Ok(())
    };

    if group_cols.is_empty() {
        if n > 0 {
            reps.push(0);
            accs.push(aggs.iter().map(|a| Accumulator::new(a.func)).collect());
            for i in 0..n {
                fold(0, i, &mut accs)?;
            }
        }
    } else {
        for (m, buf) in key_bufs.iter().enumerate() {
            let base = m * morsel_rows;
            for (local, key) in buf.chunks(ppr).enumerate() {
                let i = base + local;
                let slot = match states.get(key) {
                    Some(&s) => s,
                    None => {
                        reps.push(i);
                        accs.push(aggs.iter().map(|a| Accumulator::new(a.func)).collect());
                        states.insert(key.to_vec(), accs.len() - 1);
                        accs.len() - 1
                    }
                };
                fold(slot, i, &mut accs)?;
            }
        }
    }

    if reps.is_empty() && group_by.is_empty() && !aggs.is_empty() {
        // Global aggregate over empty input: COUNT = 0, others NULL.
        accs.push(aggs.iter().map(|a| Accumulator::new(a.func)).collect());
    }

    // Assemble output columns: gathered group columns + aggregate results.
    let mut columns: Vec<Column> = group_cols.iter().map(|c| c.gather(&reps)).collect();
    for (k, (a, col)) in aggs.iter().zip(&input_cols).enumerate() {
        let mut out_col = Column::with_capacity(a.output_type(col.as_ref()), accs.len());
        for group in &accs {
            out_col.push(&group[k].finish())?;
        }
        columns.push(out_col);
    }
    Ok(Table::from_columns(
        format!("agg({})", input.name()),
        schema,
        columns,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("brand", DataType::Str),
            Field::new("rating", DataType::Int),
        ])
        .unwrap();
        let mut t = crate::table::TableBuilder::new("r", schema);
        for (b, r) in [("asus", 4), ("asus", 2), ("hp", 3), ("hp", 5), ("vaio", 2)] {
            t.push(vec![b.into(), r.into()]).unwrap();
        }
        t.build()
    }

    #[test]
    fn group_by_with_avg_and_count() {
        let t = table();
        let out = aggregate(
            &t,
            &["brand".into()],
            &[
                AggExpr::new(AggFunc::Avg, Some(col("rating")), "avg_r"),
                AggExpr::new(AggFunc::Count, None, "n"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        // First group (insertion order) is asus.
        assert_eq!(out.column(0).value(0), Value::str("asus"));
        assert_eq!(out.column(1).value(0), Value::Float(3.0));
        assert_eq!(out.column(2).value(0), Value::Int(2));
    }

    #[test]
    fn global_aggregates() {
        let t = table();
        let out = aggregate(
            &t,
            &[],
            &[
                AggExpr::new(AggFunc::Sum, Some(col("rating")), "s"),
                AggExpr::new(AggFunc::Min, Some(col("rating")), "lo"),
                AggExpr::new(AggFunc::Max, Some(col("rating")), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column(0).value(0), Value::Float(16.0));
        assert_eq!(out.column(1).value(0), Value::Int(2));
        assert_eq!(out.column(2).value(0), Value::Int(5));
    }

    #[test]
    fn count_of_boolean_counts_trues() {
        let t = table();
        let out = aggregate(
            &t,
            &[],
            &[AggExpr::new(
                AggFunc::Count,
                Some(col("rating").ge(lit(3))),
                "good",
            )],
        )
        .unwrap();
        assert_eq!(out.column(0).value(0), Value::Int(3));
    }

    #[test]
    fn empty_input_global_aggregate() {
        let t = Table::new(
            "e",
            Schema::new(vec![Field::new("x", DataType::Int)]).unwrap(),
        );
        let out = aggregate(
            &t,
            &[],
            &[
                AggExpr::new(AggFunc::Count, None, "n"),
                AggExpr::new(AggFunc::Avg, Some(col("x")), "m"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column(0).value(0), Value::Int(0));
        assert_eq!(out.column(1).value(0), Value::Null);
    }

    #[test]
    fn empty_input_grouped_aggregate_is_empty() {
        let t = Table::new(
            "e",
            Schema::new(vec![
                Field::new("g", DataType::Str),
                Field::new("x", DataType::Int),
            ])
            .unwrap(),
        );
        let out = aggregate(
            &t,
            &["g".into()],
            &[AggExpr::new(AggFunc::Count, None, "n")],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn sum_type_error_on_strings() {
        let t = table();
        let err = aggregate(
            &t,
            &[],
            &[AggExpr::new(AggFunc::Sum, Some(col("brand")), "s")],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::TypeError(_)));
    }

    #[test]
    fn avg_decomposition_matches_definition6() {
        // Avg(D) = (1/|D|) * Σ_i Sum(D_i): the decomposable-aggregate law the
        // block optimization relies on (Example 8 of the paper).
        let t = table();
        let full = aggregate(
            &t,
            &[],
            &[AggExpr::new(AggFunc::Avg, Some(col("rating")), "m")],
        )
        .unwrap();
        let m = full.column(0).value(0).as_f64().unwrap();

        let blocks = [vec![0usize, 1], vec![2, 3], vec![4]];
        let n = t.num_rows() as f64;
        let mut recombined = 0.0;
        for b in &blocks {
            let part = t.gather(b);
            let s = aggregate(
                &part,
                &[],
                &[AggExpr::new(AggFunc::Sum, Some(col("rating")), "s")],
            )
            .unwrap();
            recombined += s.column(0).value(0).as_f64().unwrap() / n;
        }
        assert!((m - recombined).abs() < 1e-12);
    }
}
