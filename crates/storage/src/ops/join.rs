//! Hash equi-join (inner), vectorized: join keys are encoded as typed
//! `(tag, bits)` parts read straight off the column buffers (string keys
//! resolve through a join-local dictionary remap instead of hashing
//! characters per row), and the output is assembled with two typed
//! `gather`s over the matched row indices — no per-cell `Value` cloning.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::canonical_f64_bits;
#[cfg(test)]
use crate::value::Value;

/// Inner hash equi-join of `left` and `right` on positional key pairs
/// `left_on[i] = right_on[i]`.
///
/// The output schema is all left columns followed by the right columns,
/// except that right-side join keys (which duplicate the left keys) are
/// dropped. Any other column-name collision is an error; callers should
/// project/rename first (the query layer qualifies names before joining).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_on: &[String],
    right_on: &[String],
) -> Result<Table> {
    if left_on.len() != right_on.len() || left_on.is_empty() {
        return Err(StorageError::InvalidPlan(
            "join requires equal, non-empty key lists".into(),
        ));
    }
    let lkeys: Vec<usize> = left_on
        .iter()
        .map(|c| left.schema().index_of(c))
        .collect::<Result<_>>()?;
    let rkeys: Vec<usize> = right_on
        .iter()
        .map(|c| right.schema().index_of(c))
        .collect::<Result<_>>()?;

    // Output schema: left ++ (right \ join keys); reject other collisions.
    let mut fields = left.schema().fields().to_vec();
    let mut right_cols: Vec<usize> = Vec::new();
    for (i, f) in right.schema().fields().iter().enumerate() {
        if rkeys.contains(&i) && left.schema().contains(&f.name) {
            continue; // duplicate key column, dropped
        }
        if left.schema().contains(&f.name) {
            return Err(StorageError::DuplicateColumn(format!(
                "join output would contain `{}` twice; rename before joining",
                f.name
            )));
        }
        fields.push(f.clone());
        right_cols.push(i);
    }
    let schema = Schema::new(fields)?;

    // Build side: smaller input.
    let (build, probe, build_keys, probe_keys, build_is_left) =
        if left.num_rows() <= right.num_rows() {
            (left, right, &lkeys, &rkeys, true)
        } else {
            (right, left, &rkeys, &lkeys, false)
        };

    // Per key-column encoders producing `u64` parts such that equal parts
    // ⇔ strictly equal values across the two tables.
    let encoders: Vec<KeyEncoder> = build_keys
        .iter()
        .zip(probe_keys.iter())
        .map(|(&bc, &pc)| KeyEncoder::new(build.column(bc), probe.column(pc)))
        .collect();

    let mut index: HashMap<Vec<u64>, Vec<usize>> = HashMap::with_capacity(build.num_rows());
    let mut key: Vec<u64> = Vec::with_capacity(encoders.len());
    'build: for i in 0..build.num_rows() {
        key.clear();
        for e in &encoders {
            match e.build_part(i) {
                Some(p) => key.push(p),
                None => continue 'build, // NULL never joins
            }
        }
        index.entry(key.clone()).or_default().push(i);
    }

    // Probe, collecting matched (left, right) row indices.
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<usize> = Vec::new();
    'probe: for p in 0..probe.num_rows() {
        key.clear();
        for e in &encoders {
            match e.probe_part(p) {
                Some(part) => key.push(part),
                None => continue 'probe, // NULL or unmatched dictionary code
            }
        }
        if let Some(matches) = index.get(&key) {
            for &b in matches {
                let (li, ri) = if build_is_left { (b, p) } else { (p, b) };
                left_idx.push(li);
                right_idx.push(ri);
            }
        }
    }

    // Assemble with typed gathers: left columns, then the kept right ones.
    let mut columns: Vec<Column> = Vec::with_capacity(schema.len());
    for c in 0..left.num_columns() {
        columns.push(left.column(c).gather(&left_idx));
    }
    for &c in &right_cols {
        columns.push(right.column(c).gather(&right_idx));
    }
    Ok(Table::from_columns(
        format!("{}⋈{}", left.name(), right.name()),
        schema,
        columns,
    ))
}

/// Encodes one key-column pair into cross-table-comparable `u64` parts.
///
/// Because each column is uniformly typed, a key position needs no
/// per-value variant tag: a same-typed pair encodes canonical payload bits
/// (raw `i64`, canonical `f64` bits, bool), a string pair remaps probe
/// dictionary codes onto the *build* side's codes (strings absent from the
/// build dictionary can never match), and a differently-typed pair can
/// never produce strictly-equal values at all — matching the strict
/// `Value` equality the row-oriented join keyed on (`Int(1) ≠ Float(1.0)`).
enum KeyEncoder<'a> {
    /// Same non-string type on both sides.
    Typed {
        build: &'a Column,
        probe: &'a Column,
    },
    /// String pair: probe codes translate through `remap`.
    Str {
        build: &'a Column,
        probe: &'a Column,
        /// Probe dictionary code → build-side code (as `u64`).
        remap: Vec<Option<u64>>,
    },
    /// Type-mismatched pair: no row ever joins.
    Never,
}

impl<'a> KeyEncoder<'a> {
    fn new(build: &'a Column, probe: &'a Column) -> KeyEncoder<'a> {
        if let (Some((_, build_dict, _)), Some((_, probe_dict, _))) =
            (build.as_str(), probe.as_str())
        {
            let remap = probe_dict
                .strings()
                .iter()
                .map(|s| build_dict.code_of(s).map(|c| c as u64))
                .collect();
            return KeyEncoder::Str {
                build,
                probe,
                remap,
            };
        }
        if build.data_type() == probe.data_type() {
            KeyEncoder::Typed { build, probe }
        } else {
            KeyEncoder::Never
        }
    }

    fn build_part(&self, i: usize) -> Option<u64> {
        match self {
            KeyEncoder::Typed { build, .. } => scalar_bits(build, i),
            KeyEncoder::Str { build, .. } => {
                let (codes, _, nulls) = build.as_str().expect("Str encoder over Str column");
                (!nulls.is_null(i)).then(|| codes[i] as u64)
            }
            KeyEncoder::Never => None,
        }
    }

    fn probe_part(&self, i: usize) -> Option<u64> {
        match self {
            KeyEncoder::Typed { probe, .. } => scalar_bits(probe, i),
            KeyEncoder::Str { probe, remap, .. } => {
                let (codes, _, nulls) = probe.as_str().expect("Str encoder over Str column");
                if nulls.is_null(i) {
                    None
                } else {
                    remap[codes[i] as usize]
                }
            }
            KeyEncoder::Never => None,
        }
    }
}

/// Canonical payload bits of a non-string cell; `None` for NULL.
fn scalar_bits(col: &Column, i: usize) -> Option<u64> {
    if col.is_null(i) {
        return None;
    }
    Some(match col {
        Column::Int { values, .. } => values[i] as u64,
        Column::Float { values, .. } => canonical_f64_bits(values[i]),
        Column::Bool { values, .. } => values[i] as u64,
        Column::Str { codes, .. } => codes[i] as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn products() -> Table {
        let schema = Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("brand", DataType::Str),
        ])
        .unwrap();
        let mut t = crate::table::TableBuilder::new("product", schema);
        for (pid, brand) in [(1, "vaio"), (2, "asus"), (3, "hp")] {
            t.push(vec![pid.into(), brand.into()]).unwrap();
        }
        t.build()
    }

    fn reviews() -> Table {
        let schema = Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("rating", DataType::Int),
        ])
        .unwrap();
        let mut t = crate::table::TableBuilder::new("review", schema);
        for (pid, rating) in [(1, 2), (2, 4), (2, 1), (3, 3), (3, 5), (9, 5)] {
            t.push(vec![pid.into(), rating.into()]).unwrap();
        }
        t.build()
    }

    #[test]
    fn joins_matching_rows() {
        let out = hash_join(&products(), &reviews(), &["pid".into()], &["pid".into()]).unwrap();
        assert_eq!(out.num_rows(), 5, "pid=9 has no product");
        assert_eq!(out.schema().names(), vec!["pid", "brand", "rating"]);
        // asus (pid 2) appears twice.
        let brands = out.column_by_name("brand").unwrap();
        let asus = brands.iter().filter(|b| b.as_str() == Some("asus")).count();
        assert_eq!(asus, 2);
    }

    #[test]
    fn join_key_order_is_respected() {
        // Swap: probe/build selection must not change semantics.
        let out = hash_join(&reviews(), &products(), &["pid".into()], &["pid".into()]).unwrap();
        assert_eq!(out.num_rows(), 5);
        assert_eq!(out.schema().names(), vec!["pid", "rating", "brand"]);
    }

    #[test]
    fn null_keys_never_join() {
        let schema = Schema::new(vec![Field::nullable("pid", DataType::Int)]).unwrap();
        let l = crate::table::TableBuilder::new("l", schema.clone())
            .rows([vec![Value::Null], vec![1.into()]])
            .unwrap()
            .build();
        let r = crate::table::TableBuilder::new(
            "r",
            Schema::new(vec![Field::nullable("k", DataType::Int)]).unwrap(),
        )
        .rows([vec![Value::Null], vec![1.into()]])
        .unwrap()
        .build();
        let out = hash_join(&l, &r, &["pid".into()], &["k".into()]).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn name_collision_is_rejected() {
        let mut p2 = products();
        p2.add_column(
            Field::new("rating", DataType::Int),
            vec![1.into(), 2.into(), 3.into()],
        )
        .unwrap();
        let err = hash_join(&p2, &reviews(), &["pid".into()], &["pid".into()]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn(_)));
    }

    #[test]
    fn empty_key_list_rejected() {
        assert!(hash_join(&products(), &reviews(), &[], &[]).is_err());
    }
}
