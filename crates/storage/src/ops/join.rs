//! Hash equi-join (inner).

use std::collections::HashMap;

use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Inner hash equi-join of `left` and `right` on positional key pairs
/// `left_on[i] = right_on[i]`.
///
/// The output schema is all left columns followed by the right columns,
/// except that right-side join keys (which duplicate the left keys) are
/// dropped. Any other column-name collision is an error; callers should
/// project/rename first (the query layer qualifies names before joining).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_on: &[String],
    right_on: &[String],
) -> Result<Table> {
    if left_on.len() != right_on.len() || left_on.is_empty() {
        return Err(StorageError::InvalidPlan(
            "join requires equal, non-empty key lists".into(),
        ));
    }
    let lkeys: Vec<usize> = left_on
        .iter()
        .map(|c| left.schema().index_of(c))
        .collect::<Result<_>>()?;
    let rkeys: Vec<usize> = right_on
        .iter()
        .map(|c| right.schema().index_of(c))
        .collect::<Result<_>>()?;

    // Output schema: left ++ (right \ join keys); reject other collisions.
    let mut fields = left.schema().fields().to_vec();
    let mut right_cols: Vec<usize> = Vec::new();
    for (i, f) in right.schema().fields().iter().enumerate() {
        if rkeys.contains(&i) && left.schema().contains(&f.name) {
            continue; // duplicate key column, dropped
        }
        if left.schema().contains(&f.name) {
            return Err(StorageError::DuplicateColumn(format!(
                "join output would contain `{}` twice; rename before joining",
                f.name
            )));
        }
        fields.push(f.clone());
        right_cols.push(i);
    }
    let schema = Schema::new(fields)?;
    let mut out = Table::new(format!("{}⋈{}", left.name(), right.name()), schema);

    // Build side: smaller input.
    let (build, probe, build_keys, probe_keys, build_is_left) =
        if left.num_rows() <= right.num_rows() {
            (left, right, &lkeys, &rkeys, true)
        } else {
            (right, left, &rkeys, &lkeys, false)
        };

    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.num_rows());
    for i in 0..build.num_rows() {
        let key: Vec<Value> = build_keys
            .iter()
            .map(|&c| build.get(i, c).clone())
            .collect();
        if key.iter().any(Value::is_null) {
            continue; // NULL never joins
        }
        index.entry(key).or_default().push(i);
    }

    let mut row_buf: Vec<Value> = Vec::with_capacity(out.num_columns());
    for p in 0..probe.num_rows() {
        let key: Vec<Value> = probe_keys
            .iter()
            .map(|&c| probe.get(p, c).clone())
            .collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = index.get(&key) {
            for &b in matches {
                let (li, ri) = if build_is_left { (b, p) } else { (p, b) };
                row_buf.clear();
                for c in 0..left.num_columns() {
                    row_buf.push(left.get(li, c).clone());
                }
                for &c in &right_cols {
                    row_buf.push(right.get(ri, c).clone());
                }
                out.push_row_unchecked(std::mem::take(&mut row_buf));
                row_buf = Vec::with_capacity(out.num_columns());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn products() -> Table {
        let schema = Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("brand", DataType::Str),
        ])
        .unwrap();
        let mut t = Table::new("product", schema);
        for (pid, brand) in [(1, "vaio"), (2, "asus"), (3, "hp")] {
            t.push_row(vec![pid.into(), brand.into()]).unwrap();
        }
        t
    }

    fn reviews() -> Table {
        let schema = Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("rating", DataType::Int),
        ])
        .unwrap();
        let mut t = Table::new("review", schema);
        for (pid, rating) in [(1, 2), (2, 4), (2, 1), (3, 3), (3, 5), (9, 5)] {
            t.push_row(vec![pid.into(), rating.into()]).unwrap();
        }
        t
    }

    #[test]
    fn joins_matching_rows() {
        let out = hash_join(&products(), &reviews(), &["pid".into()], &["pid".into()]).unwrap();
        assert_eq!(out.num_rows(), 5, "pid=9 has no product");
        assert_eq!(out.schema().names(), vec!["pid", "brand", "rating"]);
        // asus (pid 2) appears twice.
        let brands = out.column_by_name("brand").unwrap();
        let asus = brands.iter().filter(|b| b.as_str() == Some("asus")).count();
        assert_eq!(asus, 2);
    }

    #[test]
    fn join_key_order_is_respected() {
        // Swap: probe/build selection must not change semantics.
        let out = hash_join(&reviews(), &products(), &["pid".into()], &["pid".into()]).unwrap();
        assert_eq!(out.num_rows(), 5);
        assert_eq!(out.schema().names(), vec!["pid", "rating", "brand"]);
    }

    #[test]
    fn null_keys_never_join() {
        let schema = Schema::new(vec![Field::nullable("pid", DataType::Int)]).unwrap();
        let mut l = Table::new("l", schema.clone());
        l.push_row(vec![Value::Null]).unwrap();
        l.push_row(vec![1.into()]).unwrap();
        let mut r = Table::new(
            "r",
            Schema::new(vec![Field::nullable("k", DataType::Int)]).unwrap(),
        );
        r.push_row(vec![Value::Null]).unwrap();
        r.push_row(vec![1.into()]).unwrap();
        let out = hash_join(&l, &r, &["pid".into()], &["k".into()]).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn name_collision_is_rejected() {
        let mut p2 = products();
        p2.add_column(
            Field::new("rating", DataType::Int),
            vec![1.into(), 2.into(), 3.into()],
        )
        .unwrap();
        let err = hash_join(&p2, &reviews(), &["pid".into()], &["pid".into()]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn(_)));
    }

    #[test]
    fn empty_key_list_rejected() {
        assert!(hash_join(&products(), &reviews(), &[], &[]).is_err());
    }
}
