//! Hash equi-join (inner), vectorized: join keys are encoded as typed
//! `(tag, bits)` parts read straight off the column buffers (string keys
//! resolve through a join-local dictionary remap instead of hashing
//! characters per row), and the output is assembled with two typed
//! `gather`s over the matched row indices — no per-cell `Value` cloning.

use std::collections::HashMap;

use hyper_runtime::HyperRuntime;

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::morsel::{self, DEFAULT_MORSEL_ROWS};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::canonical_f64_bits;
#[cfg(test)]
use crate::value::Value;

/// Inner hash equi-join of `left` and `right` on positional key pairs
/// `left_on[i] = right_on[i]`.
///
/// The output schema is all left columns followed by the right columns,
/// except that right-side join keys (which duplicate the left keys) are
/// dropped. Any other column-name collision is an error; callers should
/// project/rename first (the query layer qualifies names before joining).
///
/// Large inputs go morsel-parallel over the global [`HyperRuntime`]:
/// build-side key extraction, hash-partitioned build, and the probe all
/// run per morsel, with match lists merged in morsel order so the output
/// rows are bit-identical to the sequential join (see [`crate::morsel`]).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_on: &[String],
    right_on: &[String],
) -> Result<Table> {
    let rt = HyperRuntime::global();
    let rows = left.num_rows().max(right.num_rows());
    let morsel_rows = if morsel::should_parallelize(rows, rt) {
        DEFAULT_MORSEL_ROWS
    } else {
        rows.max(1) // one morsel: the plain sequential join
    };
    hash_join_on(rt, left, right, left_on, right_on, morsel_rows)
}

/// [`hash_join`] on a caller-chosen runtime and morsel size (the parity
/// tests drive this across worker counts and morsel sizes).
pub fn hash_join_on(
    rt: &HyperRuntime,
    left: &Table,
    right: &Table,
    left_on: &[String],
    right_on: &[String],
    morsel_rows: usize,
) -> Result<Table> {
    let morsel_rows = morsel_rows.max(1);
    if left_on.len() != right_on.len() || left_on.is_empty() {
        return Err(StorageError::InvalidPlan(
            "join requires equal, non-empty key lists".into(),
        ));
    }
    let lkeys: Vec<usize> = left_on
        .iter()
        .map(|c| left.schema().index_of(c))
        .collect::<Result<_>>()?;
    let rkeys: Vec<usize> = right_on
        .iter()
        .map(|c| right.schema().index_of(c))
        .collect::<Result<_>>()?;

    // Output schema: left ++ (right \ join keys); reject other collisions.
    let mut fields = left.schema().fields().to_vec();
    let mut right_cols: Vec<usize> = Vec::new();
    for (i, f) in right.schema().fields().iter().enumerate() {
        if rkeys.contains(&i) && left.schema().contains(&f.name) {
            continue; // duplicate key column, dropped
        }
        if left.schema().contains(&f.name) {
            return Err(StorageError::DuplicateColumn(format!(
                "join output would contain `{}` twice; rename before joining",
                f.name
            )));
        }
        fields.push(f.clone());
        right_cols.push(i);
    }
    let schema = Schema::new(fields)?;

    // Build side: smaller input.
    let (build, probe, build_keys, probe_keys, build_is_left) =
        if left.num_rows() <= right.num_rows() {
            (left, right, &lkeys, &rkeys, true)
        } else {
            (right, left, &rkeys, &lkeys, false)
        };

    // Per key-column encoders producing `u64` parts such that equal parts
    // ⇔ strictly equal values across the two tables.
    let encoders: Vec<KeyEncoder> = build_keys
        .iter()
        .zip(probe_keys.iter())
        .map(|(&bc, &pc)| KeyEncoder::new(build.column(bc), probe.column(pc)))
        .collect();

    let k = encoders.len();

    // Phase 1 (parallel): per-morsel build-key extraction into flat
    // fixed-stride part buffers (`k` parts per row; NULL rows flagged
    // invalid — NULL never joins).
    let build_bufs: Vec<(Vec<u64>, Vec<bool>)> =
        morsel::for_each_morsel(rt, build.num_rows(), morsel_rows, |_, r| {
            let mut parts = vec![0u64; r.len() * k];
            let mut valid = vec![true; r.len()];
            for (local, i) in r.enumerate() {
                for (j, e) in encoders.iter().enumerate() {
                    match e.build_part(i) {
                        Some(p) => parts[local * k + j] = p,
                        None => {
                            valid[local] = false;
                            break;
                        }
                    }
                }
            }
            (parts, valid)
        });

    // Phase 2 (parallel): hash-partitioned build. Each partition task
    // scans the precomputed keys in ascending row order and keeps the
    // keys that route to it, so every per-key row list is exactly the
    // ascending list the sequential build would produce.
    let partitions = rt.workers() + 1;
    let maps: Vec<HashMap<Vec<u64>, Vec<usize>>> =
        morsel::for_each_morsel(rt, partitions, 1, |p, _| {
            let mut map: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
            for (m, (parts, valid)) in build_bufs.iter().enumerate() {
                let base = m * morsel_rows;
                for (local, ok) in valid.iter().enumerate() {
                    if !ok {
                        continue;
                    }
                    let key = &parts[local * k..(local + 1) * k];
                    if key_hash(key) as usize % partitions != p {
                        continue;
                    }
                    map.entry(key.to_vec()).or_default().push(base + local);
                }
            }
            map
        });

    // Phase 3 (parallel): probe per morsel, collecting matched
    // (left, right) row indices; morsel-order concatenation reproduces
    // the sequential probe order exactly.
    let pair_bufs: Vec<(Vec<usize>, Vec<usize>)> =
        morsel::for_each_morsel(rt, probe.num_rows(), morsel_rows, |_, r| {
            let mut li: Vec<usize> = Vec::new();
            let mut ri: Vec<usize> = Vec::new();
            let mut key: Vec<u64> = Vec::with_capacity(k);
            'probe: for p in r {
                key.clear();
                for e in &encoders {
                    match e.probe_part(p) {
                        Some(part) => key.push(part),
                        None => continue 'probe, // NULL or unmatched dictionary code
                    }
                }
                let map = &maps[key_hash(&key) as usize % partitions];
                if let Some(matches) = map.get(&key) {
                    for &b in matches {
                        let (l, r2) = if build_is_left { (b, p) } else { (p, b) };
                        li.push(l);
                        ri.push(r2);
                    }
                }
            }
            (li, ri)
        });
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<usize> = Vec::new();
    for (li, ri) in pair_bufs {
        left_idx.extend(li);
        right_idx.extend(ri);
    }

    // Assemble with typed gathers: left columns, then the kept right ones.
    let mut columns: Vec<Column> = Vec::with_capacity(schema.len());
    for c in 0..left.num_columns() {
        columns.push(left.column(c).gather(&left_idx));
    }
    for &c in &right_cols {
        columns.push(right.column(c).gather(&right_idx));
    }
    Ok(Table::from_columns(
        format!("{}⋈{}", left.name(), right.name()),
        schema,
        columns,
    ))
}

/// Encodes one key-column pair into cross-table-comparable `u64` parts.
///
/// Because each column is uniformly typed, a key position needs no
/// per-value variant tag: a same-typed pair encodes canonical payload bits
/// (raw `i64`, canonical `f64` bits, bool), a string pair remaps probe
/// dictionary codes onto the *build* side's codes (strings absent from the
/// build dictionary can never match), and a differently-typed pair can
/// never produce strictly-equal values at all — matching the strict
/// `Value` equality the row-oriented join keyed on (`Int(1) ≠ Float(1.0)`).
enum KeyEncoder<'a> {
    /// Same non-string type on both sides.
    Typed {
        build: &'a Column,
        probe: &'a Column,
    },
    /// String pair: probe codes translate through `remap`.
    Str {
        build: &'a Column,
        probe: &'a Column,
        /// Probe dictionary code → build-side code (as `u64`).
        remap: Vec<Option<u64>>,
    },
    /// Type-mismatched pair: no row ever joins.
    Never,
}

impl<'a> KeyEncoder<'a> {
    fn new(build: &'a Column, probe: &'a Column) -> KeyEncoder<'a> {
        if let (Some((_, build_dict, _)), Some((_, probe_dict, _))) =
            (build.as_str(), probe.as_str())
        {
            let remap = probe_dict
                .strings()
                .iter()
                .map(|s| build_dict.code_of(s).map(|c| c as u64))
                .collect();
            return KeyEncoder::Str {
                build,
                probe,
                remap,
            };
        }
        if build.data_type() == probe.data_type() {
            KeyEncoder::Typed { build, probe }
        } else {
            KeyEncoder::Never
        }
    }

    fn build_part(&self, i: usize) -> Option<u64> {
        match self {
            KeyEncoder::Typed { build, .. } => scalar_bits(build, i),
            KeyEncoder::Str { build, .. } => {
                let (codes, _, nulls) = build.as_str().expect("Str encoder over Str column");
                (!nulls.is_null(i)).then(|| codes[i] as u64)
            }
            KeyEncoder::Never => None,
        }
    }

    fn probe_part(&self, i: usize) -> Option<u64> {
        match self {
            KeyEncoder::Typed { probe, .. } => scalar_bits(probe, i),
            KeyEncoder::Str { probe, remap, .. } => {
                let (codes, _, nulls) = probe.as_str().expect("Str encoder over Str column");
                if nulls.is_null(i) {
                    None
                } else {
                    remap[codes[i] as usize]
                }
            }
            KeyEncoder::Never => None,
        }
    }
}

/// Deterministic hash of a key's `u64` parts (SplitMix64-style mix),
/// used only to route keys to build partitions — the routing affects
/// which map holds a key, never which rows match.
fn key_hash(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        h ^= p;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    }
    h ^ (h >> 31)
}

/// Canonical payload bits of a non-string cell; `None` for NULL.
fn scalar_bits(col: &Column, i: usize) -> Option<u64> {
    if col.is_null(i) {
        return None;
    }
    Some(match col {
        Column::Int { values, .. } => values[i] as u64,
        Column::Float { values, .. } => canonical_f64_bits(values[i]),
        Column::Bool { values, .. } => values[i] as u64,
        Column::Str { codes, .. } => codes[i] as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn products() -> Table {
        let schema = Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("brand", DataType::Str),
        ])
        .unwrap();
        let mut t = crate::table::TableBuilder::new("product", schema);
        for (pid, brand) in [(1, "vaio"), (2, "asus"), (3, "hp")] {
            t.push(vec![pid.into(), brand.into()]).unwrap();
        }
        t.build()
    }

    fn reviews() -> Table {
        let schema = Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("rating", DataType::Int),
        ])
        .unwrap();
        let mut t = crate::table::TableBuilder::new("review", schema);
        for (pid, rating) in [(1, 2), (2, 4), (2, 1), (3, 3), (3, 5), (9, 5)] {
            t.push(vec![pid.into(), rating.into()]).unwrap();
        }
        t.build()
    }

    #[test]
    fn joins_matching_rows() {
        let out = hash_join(&products(), &reviews(), &["pid".into()], &["pid".into()]).unwrap();
        assert_eq!(out.num_rows(), 5, "pid=9 has no product");
        assert_eq!(out.schema().names(), vec!["pid", "brand", "rating"]);
        // asus (pid 2) appears twice.
        let brands = out.column_by_name("brand").unwrap();
        let asus = brands.iter().filter(|b| b.as_str() == Some("asus")).count();
        assert_eq!(asus, 2);
    }

    #[test]
    fn join_key_order_is_respected() {
        // Swap: probe/build selection must not change semantics.
        let out = hash_join(&reviews(), &products(), &["pid".into()], &["pid".into()]).unwrap();
        assert_eq!(out.num_rows(), 5);
        assert_eq!(out.schema().names(), vec!["pid", "rating", "brand"]);
    }

    #[test]
    fn null_keys_never_join() {
        let schema = Schema::new(vec![Field::nullable("pid", DataType::Int)]).unwrap();
        let l = crate::table::TableBuilder::new("l", schema.clone())
            .rows([vec![Value::Null], vec![1.into()]])
            .unwrap()
            .build();
        let r = crate::table::TableBuilder::new(
            "r",
            Schema::new(vec![Field::nullable("k", DataType::Int)]).unwrap(),
        )
        .rows([vec![Value::Null], vec![1.into()]])
        .unwrap()
        .build();
        let out = hash_join(&l, &r, &["pid".into()], &["k".into()]).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn name_collision_is_rejected() {
        let mut p2 = products();
        p2.add_column(
            Field::new("rating", DataType::Int),
            vec![1.into(), 2.into(), 3.into()],
        )
        .unwrap();
        let err = hash_join(&p2, &reviews(), &["pid".into()], &["pid".into()]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn(_)));
    }

    #[test]
    fn empty_key_list_rejected() {
        assert!(hash_join(&products(), &reviews(), &[], &[]).is_err());
    }
}
