//! Typed columnar storage: one contiguous buffer per column plus a null
//! bitmap, with dictionary encoding for strings.
//!
//! [`Column`] replaces the former `Vec<Value>` cell storage. Each variant
//! holds a dense typed buffer (`Vec<i64>`, `Vec<f64>`, `Vec<bool>`, or
//! `Vec<u32>` dictionary codes into a shared [`StrDict`]) and a
//! [`NullBitmap`]; NULL slots keep a default payload and are masked by the
//! bitmap. Operators work directly on the typed buffers — `gather` is a
//! typed copy, predicates scan slices, and the feature encoder reads
//! dictionary codes instead of hashing `Value`s — while the [`Value`]-based
//! cell API ([`Column::value`], [`Column::push`]) remains as a
//! compatibility layer for row-at-a-time callers.
//!
//! Invariants:
//! * `values.len() == nulls.len()` for every variant;
//! * a `Str` column's codes always index into its dictionary, and the
//!   dictionary never contains duplicate strings (codes are canonical:
//!   equal strings ⇔ equal codes within one column);
//! * the dictionary is append-only and shared via [`Arc`], so `gather`,
//!   `project`, and table clones reuse it without copying.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::value::{canonical_f64_bits, DataType, Value};

/// A packed validity bitmap: bit `i` set ⇔ row `i` is NULL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
    set_bits: usize,
}

impl NullBitmap {
    /// An empty bitmap.
    pub fn new() -> NullBitmap {
        NullBitmap::default()
    }

    /// An all-valid bitmap of length `n`.
    pub fn all_valid(n: usize) -> NullBitmap {
        NullBitmap {
            words: vec![0; n.div_ceil(64)],
            len: n,
            set_bits: 0,
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is row `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.set_bits
    }

    /// True when any row is NULL.
    pub fn any_null(&self) -> bool {
        self.set_bits > 0
    }

    /// Append one row.
    #[inline]
    pub fn push(&mut self, null: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if null {
            self.words[self.len / 64] |= 1 << (self.len % 64);
            self.set_bits += 1;
        }
        self.len += 1;
    }

    /// Set row `i`'s nullness in place.
    pub fn set(&mut self, i: usize, null: bool) {
        debug_assert!(i < self.len);
        let was = self.is_null(i);
        if was == null {
            return;
        }
        if null {
            self.words[i / 64] |= 1 << (i % 64);
            self.set_bits += 1;
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
            self.set_bits -= 1;
        }
    }

    /// Bitmap containing rows `indices`, in order.
    pub fn gather(&self, indices: &[usize]) -> NullBitmap {
        let mut out = NullBitmap::all_valid(indices.len());
        if self.any_null() {
            for (k, &i) in indices.iter().enumerate() {
                if self.is_null(i) {
                    out.set(k, true);
                }
            }
        }
        out
    }

    /// Bitmap covering rows `start..start + len`, in order. Word-aligned
    /// starts copy whole words; unaligned starts fall back to a bit loop.
    pub fn slice(&self, start: usize, len: usize) -> NullBitmap {
        debug_assert!(start + len <= self.len);
        if !self.any_null() {
            return NullBitmap::all_valid(len);
        }
        if start.is_multiple_of(64) {
            let first = start / 64;
            let mut words: Vec<u64> = self.words[first..first + len.div_ceil(64)].to_vec();
            if let (Some(last), false) = (words.last_mut(), len.is_multiple_of(64)) {
                *last &= (1u64 << (len % 64)) - 1;
            }
            let set_bits = words.iter().map(|w| w.count_ones() as usize).sum();
            return NullBitmap {
                words,
                len,
                set_bits,
            };
        }
        let mut out = NullBitmap::all_valid(len);
        for i in 0..len {
            if self.is_null(start + i) {
                out.set(i, true);
            }
        }
        out
    }

    fn reserve(&mut self, additional: usize) {
        let needed = (self.len + additional).div_ceil(64);
        self.words.reserve(needed.saturating_sub(self.words.len()));
    }

    /// The packed words backing the bitmap (bit `i` of word `i / 64` is
    /// row `i`'s NULL flag). Exposed for serialization.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a bitmap of `len` rows from its packed words (the inverse
    /// of [`NullBitmap::words`]). The word count must be exactly
    /// `len.div_ceil(64)` and bits at positions ≥ `len` must be zero —
    /// both are validated so untrusted bytes cannot produce a bitmap
    /// whose `null_count` disagrees with its reads.
    pub fn from_words(len: usize, words: Vec<u64>) -> Result<NullBitmap> {
        if words.len() != len.div_ceil(64) {
            return Err(StorageError::SchemaMismatch(format!(
                "null bitmap for {len} rows needs {} word(s), got {}",
                len.div_ceil(64),
                words.len()
            )));
        }
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return Err(StorageError::SchemaMismatch(
                        "null bitmap has bits set past its length".into(),
                    ));
                }
            }
        }
        let set_bits = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(NullBitmap {
            words,
            len,
            set_bits,
        })
    }
}

/// An append-only string dictionary: `code → Arc<str>` with reverse
/// interning. Shared across gathered/projected columns via `Arc`.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    strings: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl StrDict {
    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no strings are interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The string for `code`.
    #[inline]
    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }

    /// The code for `s`, if interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Intern `s`, returning its (possibly new) code.
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&c) = self.index.get(s.as_ref()) {
            return c;
        }
        let code = self.strings.len() as u32;
        self.strings.push(Arc::clone(s));
        self.index.insert(Arc::clone(s), code);
        code
    }

    /// All interned strings, in code order.
    pub fn strings(&self) -> &[Arc<str>] {
        &self.strings
    }

    /// Approximate heap footprint in bytes (strings + interning index).
    pub fn approx_bytes(&self) -> usize {
        self.strings
            .iter()
            // Each string is held twice (vec + index key) via `Arc`, so
            // count the payload once plus two pointer-sized handles.
            .map(|s| s.len() + 2 * std::mem::size_of::<Arc<str>>())
            .sum::<usize>()
            + self.index.capacity() * std::mem::size_of::<u32>()
    }
}

/// A typed column: dense values + null bitmap (+ dictionary for strings).
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int {
        /// Dense payload (NULL slots hold 0).
        values: Vec<i64>,
        /// Validity.
        nulls: NullBitmap,
    },
    /// 64-bit floats.
    Float {
        /// Dense payload (NULL slots hold 0.0).
        values: Vec<f64>,
        /// Validity.
        nulls: NullBitmap,
    },
    /// Booleans.
    Bool {
        /// Dense payload (NULL slots hold false).
        values: Vec<bool>,
        /// Validity.
        nulls: NullBitmap,
    },
    /// Dictionary-encoded strings.
    Str {
        /// Per-row dictionary codes (NULL slots hold 0 or any valid code).
        codes: Vec<u32>,
        /// Shared dictionary.
        dict: Arc<StrDict>,
        /// Validity.
        nulls: NullBitmap,
    },
}

impl Column {
    /// An empty column of the given type.
    pub fn new(dt: DataType) -> Column {
        Column::with_capacity(dt, 0)
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Column {
        match dt {
            DataType::Int => Column::Int {
                values: Vec::with_capacity(cap),
                nulls: NullBitmap::new(),
            },
            DataType::Float => Column::Float {
                values: Vec::with_capacity(cap),
                nulls: NullBitmap::new(),
            },
            DataType::Bool => Column::Bool {
                values: Vec::with_capacity(cap),
                nulls: NullBitmap::new(),
            },
            DataType::Str => Column::Str {
                codes: Vec::with_capacity(cap),
                dict: Arc::new(StrDict::default()),
                nulls: NullBitmap::new(),
            },
        }
    }

    /// Build a column of type `dt` from materialized values (Ints coerce
    /// into Float columns, mirroring [`crate::Schema::check_row`]).
    pub fn from_values(dt: DataType, values: &[Value]) -> Result<Column> {
        let mut c = Column::with_capacity(dt, values.len());
        for v in values {
            c.push(v)?;
        }
        Ok(c)
    }

    /// Build a column from values, inferring the narrowest type that fits:
    /// all-integer → `Int`, numeric mixtures (Int/Float/Bool-free) →
    /// `Float`, uniform strings/bools → `Str`/`Bool`; an all-NULL input
    /// defaults to `Float`. Incompatible mixtures are an error.
    pub fn from_values_inferred(values: &[Value]) -> Result<Column> {
        let mut dt: Option<DataType> = None;
        for v in values {
            let vt = match v.data_type() {
                None => continue,
                Some(t) => t,
            };
            dt = Some(match (dt, vt) {
                (None, t) => t,
                (Some(a), b) if a == b => a,
                (Some(DataType::Int), DataType::Float) | (Some(DataType::Float), DataType::Int) => {
                    DataType::Float
                }
                (Some(a), b) => {
                    return Err(StorageError::TypeError(format!(
                        "cannot build a typed column from mixed {a} and {b} values"
                    )))
                }
            });
        }
        Column::from_values(dt.unwrap_or(DataType::Float), values)
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int { .. } => DataType::Int,
            Column::Float { .. } => DataType::Float,
            Column::Bool { .. } => DataType::Bool,
            Column::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { values, .. } => values.len(),
            Column::Float { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The null bitmap.
    pub fn nulls(&self) -> &NullBitmap {
        match self {
            Column::Int { nulls, .. }
            | Column::Float { nulls, .. }
            | Column::Bool { nulls, .. }
            | Column::Str { nulls, .. } => nulls,
        }
    }

    /// Is row `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls().is_null(i)
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.nulls().null_count()
    }

    /// Reserve capacity for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            Column::Int { values, nulls } => {
                values.reserve(additional);
                nulls.reserve(additional);
            }
            Column::Float { values, nulls } => {
                values.reserve(additional);
                nulls.reserve(additional);
            }
            Column::Bool { values, nulls } => {
                values.reserve(additional);
                nulls.reserve(additional);
            }
            Column::Str { codes, nulls, .. } => {
                codes.reserve(additional);
                nulls.reserve(additional);
            }
        }
    }

    /// Append a value. Ints coerce into Float columns; any other type
    /// mismatch is an error. NULL is always accepted (nullability is the
    /// schema's concern, checked by [`crate::Schema::check_row`]).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (Column::Int { values, nulls }, Value::Int(x)) => {
                values.push(*x);
                nulls.push(false);
            }
            (Column::Float { values, nulls }, Value::Float(x)) => {
                values.push(*x);
                nulls.push(false);
            }
            (Column::Float { values, nulls }, Value::Int(x)) => {
                values.push(*x as f64);
                nulls.push(false);
            }
            (Column::Bool { values, nulls }, Value::Bool(b)) => {
                values.push(*b);
                nulls.push(false);
            }
            (Column::Str { codes, dict, nulls }, Value::Str(s)) => {
                let code = Arc::make_mut(dict).intern(s);
                codes.push(code);
                nulls.push(false);
            }
            (c, Value::Null) => {
                match c {
                    Column::Int { values, nulls } => {
                        values.push(0);
                        nulls.push(true);
                    }
                    Column::Float { values, nulls } => {
                        values.push(0.0);
                        nulls.push(true);
                    }
                    Column::Bool { values, nulls } => {
                        values.push(false);
                        nulls.push(true);
                    }
                    Column::Str { codes, nulls, .. } => {
                        codes.push(0);
                        nulls.push(true);
                    }
                };
            }
            (c, v) => {
                return Err(StorageError::TypeError(format!(
                    "cannot store {v} in a {} column",
                    c.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Append every row of `other`: typed concatenation straight off the
    /// buffers — Ints widen into Float columns, string codes are
    /// re-interned into this column's dictionary (copied verbatim when
    /// both sides share one), NULLs carry over. No per-cell [`Value`]
    /// materialization.
    pub fn append_column(&mut self, other: &Column) -> Result<()> {
        self.reserve(other.len());
        match (self, other) {
            (
                Column::Int { values, nulls },
                Column::Int {
                    values: ov,
                    nulls: on,
                },
            ) => {
                values.extend_from_slice(ov);
                for i in 0..ov.len() {
                    nulls.push(on.is_null(i));
                }
            }
            (
                Column::Float { values, nulls },
                Column::Float {
                    values: ov,
                    nulls: on,
                },
            ) => {
                values.extend_from_slice(ov);
                for i in 0..ov.len() {
                    nulls.push(on.is_null(i));
                }
            }
            (
                Column::Float { values, nulls },
                Column::Int {
                    values: ov,
                    nulls: on,
                },
            ) => {
                values.extend(ov.iter().map(|&v| v as f64));
                for i in 0..ov.len() {
                    nulls.push(on.is_null(i));
                }
            }
            (
                Column::Bool { values, nulls },
                Column::Bool {
                    values: ov,
                    nulls: on,
                },
            ) => {
                values.extend_from_slice(ov);
                for i in 0..ov.len() {
                    nulls.push(on.is_null(i));
                }
            }
            (
                Column::Str { codes, dict, nulls },
                Column::Str {
                    codes: oc,
                    dict: od,
                    nulls: on,
                },
            ) => {
                if Arc::ptr_eq(dict, od) {
                    codes.extend_from_slice(oc);
                    for i in 0..oc.len() {
                        nulls.push(on.is_null(i));
                    }
                } else {
                    let d = Arc::make_mut(dict);
                    for (i, &code) in oc.iter().enumerate() {
                        let null = on.is_null(i);
                        codes.push(if null { 0 } else { d.intern(od.get(code)) });
                        nulls.push(null);
                    }
                }
            }
            (c, o) => {
                return Err(StorageError::TypeError(format!(
                    "cannot append a {} column to a {} column",
                    o.data_type(),
                    c.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Materialize row `i` as a [`Value`].
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self {
            Column::Int { values, .. } => Value::Int(values[i]),
            Column::Float { values, .. } => Value::Float(values[i]),
            Column::Bool { values, .. } => Value::Bool(values[i]),
            Column::Str { codes, dict, .. } => Value::Str(Arc::clone(dict.get(codes[i]))),
        }
    }

    /// Numeric view of row `i` (Int/Float pass through, Bool maps to 0/1);
    /// `None` for NULL or strings.
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        match self {
            Column::Int { values, .. } => Some(values[i] as f64),
            Column::Float { values, .. } => Some(values[i]),
            Column::Bool { values, .. } => Some(if values[i] { 1.0 } else { 0.0 }),
            Column::Str { .. } => None,
        }
    }

    /// String view of row `i` (`None` for NULL or non-string columns).
    #[inline]
    pub fn str_at(&self, i: usize) -> Option<&str> {
        if self.is_null(i) {
            return None;
        }
        match self {
            Column::Str { codes, dict, .. } => Some(dict.get(codes[i])),
            _ => None,
        }
    }

    /// Overwrite row `i` (same coercion rules as [`Column::push`]).
    pub fn set(&mut self, i: usize, v: &Value) -> Result<()> {
        match (self, v) {
            (Column::Int { values, nulls }, Value::Int(x)) => {
                values[i] = *x;
                nulls.set(i, false);
            }
            (Column::Float { values, nulls }, Value::Float(x)) => {
                values[i] = *x;
                nulls.set(i, false);
            }
            (Column::Float { values, nulls }, Value::Int(x)) => {
                values[i] = *x as f64;
                nulls.set(i, false);
            }
            (Column::Bool { values, nulls }, Value::Bool(b)) => {
                values[i] = *b;
                nulls.set(i, false);
            }
            (Column::Str { codes, dict, nulls }, Value::Str(s)) => {
                codes[i] = match dict.code_of(s) {
                    Some(c) => c,
                    None => Arc::make_mut(dict).intern(s),
                };
                nulls.set(i, false);
            }
            (c, Value::Null) => match c {
                Column::Int { nulls, .. }
                | Column::Float { nulls, .. }
                | Column::Bool { nulls, .. }
                | Column::Str { nulls, .. } => nulls.set(i, true),
            },
            (c, v) => {
                return Err(StorageError::TypeError(format!(
                    "cannot store {v} in a {} column",
                    c.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Typed copy of rows `indices`, in order. For string columns this
    /// copies codes only; the dictionary is shared.
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int { values, nulls } => Column::Int {
                values: indices.iter().map(|&i| values[i]).collect(),
                nulls: nulls.gather(indices),
            },
            Column::Float { values, nulls } => Column::Float {
                values: indices.iter().map(|&i| values[i]).collect(),
                nulls: nulls.gather(indices),
            },
            Column::Bool { values, nulls } => Column::Bool {
                values: indices.iter().map(|&i| values[i]).collect(),
                nulls: nulls.gather(indices),
            },
            Column::Str { codes, dict, nulls } => Column::Str {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                dict: Arc::clone(dict),
                nulls: nulls.gather(indices),
            },
        }
    }

    /// Typed copy of the contiguous rows `start..start + len` — the
    /// column-level morsel primitive. Payload bytes are copied verbatim
    /// (same bits, same null pattern), and string columns share the
    /// dictionary, so a sliced column is indistinguishable from the same
    /// rows of the original.
    pub fn slice(&self, start: usize, len: usize) -> Column {
        match self {
            Column::Int { values, nulls } => Column::Int {
                values: values[start..start + len].to_vec(),
                nulls: nulls.slice(start, len),
            },
            Column::Float { values, nulls } => Column::Float {
                values: values[start..start + len].to_vec(),
                nulls: nulls.slice(start, len),
            },
            Column::Bool { values, nulls } => Column::Bool {
                values: values[start..start + len].to_vec(),
                nulls: nulls.slice(start, len),
            },
            Column::Str { codes, dict, nulls } => Column::Str {
                codes: codes[start..start + len].to_vec(),
                dict: Arc::clone(dict),
                nulls: nulls.slice(start, len),
            },
        }
    }

    /// Materialize every row (compatibility shim; prefer the typed
    /// accessors on hot paths).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }

    /// Iterate over materialized values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Typed integer buffer, when this is an Int column.
    pub fn as_int(&self) -> Option<(&[i64], &NullBitmap)> {
        match self {
            Column::Int { values, nulls } => Some((values, nulls)),
            _ => None,
        }
    }

    /// Typed float buffer, when this is a Float column.
    pub fn as_float(&self) -> Option<(&[f64], &NullBitmap)> {
        match self {
            Column::Float { values, nulls } => Some((values, nulls)),
            _ => None,
        }
    }

    /// Typed bool buffer, when this is a Bool column.
    pub fn as_bool(&self) -> Option<(&[bool], &NullBitmap)> {
        match self {
            Column::Bool { values, nulls } => Some((values, nulls)),
            _ => None,
        }
    }

    /// Dictionary codes + dictionary, when this is a Str column.
    pub fn as_str(&self) -> Option<(&[u32], &StrDict, &NullBitmap)> {
        match self {
            Column::Str { codes, dict, nulls } => Some((codes, dict, nulls)),
            _ => None,
        }
    }

    /// Approximate memory footprint in bytes: the typed payload buffer
    /// plus the null bitmap. A `Str` column counts its codes and — because
    /// dictionaries are shared across gathered/projected copies — an
    /// *amortized* share of its dictionary. Used for the byte-budgeted
    /// artifact-store eviction policy; approximate by design.
    pub fn approx_bytes(&self) -> usize {
        let bitmap = self.nulls().words().len() * 8;
        bitmap
            + match self {
                Column::Int { values, .. } => values.len() * 8,
                Column::Float { values, .. } => values.len() * 8,
                Column::Bool { values, .. } => values.len(),
                Column::Str { codes, dict, .. } => codes.len() * 4 + dict.approx_bytes(),
            }
    }

    /// Compare rows `i` and `j` with the same total order as
    /// [`Value::cmp`]: NULL sorts first, payloads compare typed (floats by
    /// `total_cmp`, strings lexicographically).
    pub fn cmp_rows(&self, i: usize, j: usize) -> Ordering {
        match (self.is_null(i), self.is_null(j)) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {}
        }
        match self {
            Column::Int { values, .. } => values[i].cmp(&values[j]),
            Column::Float { values, .. } => values[i].total_cmp(&values[j]),
            Column::Bool { values, .. } => values[i].cmp(&values[j]),
            Column::Str { codes, dict, .. } => {
                if codes[i] == codes[j] {
                    Ordering::Equal
                } else {
                    dict.get(codes[i]).as_ref().cmp(dict.get(codes[j]).as_ref())
                }
            }
        }
    }

    /// Append row `i`'s *strict-equality key* to `out`: a `(tag, bits)`
    /// pair such that two rows of the **same table** produce equal parts
    /// iff their [`Value`]s are strictly equal (`Value::eq`). Floats use
    /// canonical bits (NaN/-0 normalized); strings use dictionary codes,
    /// which are canonical within one column.
    #[inline]
    pub fn write_key_part(&self, i: usize, out: &mut Vec<u64>) {
        if self.is_null(i) {
            out.push(KEY_TAG_NULL);
            out.push(0);
            return;
        }
        match self {
            Column::Int { values, .. } => {
                out.push(KEY_TAG_INT);
                out.push(values[i] as u64);
            }
            Column::Float { values, .. } => {
                out.push(KEY_TAG_FLOAT);
                out.push(canonical_f64_bits(values[i]));
            }
            Column::Bool { values, .. } => {
                out.push(KEY_TAG_BOOL);
                out.push(values[i] as u64);
            }
            Column::Str { codes, .. } => {
                out.push(KEY_TAG_STR);
                out.push(codes[i] as u64);
            }
        }
    }
}

impl PartialEq for Column {
    /// Semantic equality: same type, length, null pattern, and strictly
    /// equal payloads ([`Value::eq`] semantics — floats by canonical bits,
    /// strings by content, not by dictionary code).
    fn eq(&self, other: &Self) -> bool {
        if self.data_type() != other.data_type() || self.len() != other.len() {
            return false;
        }
        (0..self.len()).all(|i| match (self.is_null(i), other.is_null(i)) {
            (true, true) => true,
            (false, false) => match (self, other) {
                (Column::Int { values: a, .. }, Column::Int { values: b, .. }) => a[i] == b[i],
                (Column::Float { values: a, .. }, Column::Float { values: b, .. }) => {
                    canonical_f64_bits(a[i]) == canonical_f64_bits(b[i])
                }
                (Column::Bool { values: a, .. }, Column::Bool { values: b, .. }) => a[i] == b[i],
                (
                    Column::Str {
                        codes: a, dict: da, ..
                    },
                    Column::Str {
                        codes: b, dict: db, ..
                    },
                ) => da.get(a[i]) == db.get(b[i]),
                _ => unreachable!("same data_type checked above"),
            },
            _ => false,
        })
    }
}

/// Key-part tags for [`Column::write_key_part`] (distinct per variant so
/// cross-variant values never collide, matching strict [`Value`] equality).
pub(crate) const KEY_TAG_NULL: u64 = 0;
pub(crate) const KEY_TAG_INT: u64 = 1;
pub(crate) const KEY_TAG_FLOAT: u64 = 2;
pub(crate) const KEY_TAG_BOOL: u64 = 3;
pub(crate) const KEY_TAG_STR: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_typed() {
        let mut c = Column::new(DataType::Int);
        c.push(&Value::Int(5)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Int(-3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Int(5));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.null_count(), 1);
        assert!(c.push(&Value::str("x")).is_err());
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = Column::new(DataType::Float);
        c.push(&Value::Int(2)).unwrap();
        assert_eq!(c.value(0), Value::Float(2.0));
    }

    #[test]
    fn string_dictionary_interns() {
        let mut c = Column::new(DataType::Str);
        for s in ["a", "b", "a", "a"] {
            c.push(&Value::str(s)).unwrap();
        }
        let (codes, dict, _) = c.as_str().unwrap();
        assert_eq!(dict.len(), 2, "two distinct strings");
        assert_eq!(codes, &[0, 1, 0, 0]);
        assert_eq!(c.str_at(1), Some("b"));
    }

    #[test]
    fn gather_shares_dictionary() {
        let mut c = Column::new(DataType::Str);
        for s in ["x", "y", "z"] {
            c.push(&Value::str(s)).unwrap();
        }
        let g = c.gather(&[2, 0]);
        let (codes, dict, _) = g.as_str().unwrap();
        assert_eq!(codes, &[2, 0]);
        let (_, orig_dict, _) = c.as_str().unwrap();
        assert_eq!(dict.len(), orig_dict.len());
        assert_eq!(g.value(0), Value::str("z"));
    }

    #[test]
    fn gather_preserves_nulls() {
        let mut c = Column::new(DataType::Float);
        c.push(&Value::Float(1.0)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Float(3.0)).unwrap();
        let g = c.gather(&[1, 2, 1]);
        assert!(g.is_null(0) && g.is_null(2));
        assert_eq!(g.value(1), Value::Float(3.0));
    }

    #[test]
    fn cmp_rows_matches_value_order() {
        let mut c = Column::new(DataType::Float);
        for v in [Value::Float(2.0), Value::Null, Value::Float(-1.0)] {
            c.push(&v).unwrap();
        }
        assert_eq!(c.cmp_rows(1, 0), Ordering::Less, "NULL sorts first");
        assert_eq!(c.cmp_rows(0, 2), Ordering::Greater);
        assert_eq!(c.cmp_rows(1, 1), Ordering::Equal);
    }

    #[test]
    fn key_parts_follow_strict_equality() {
        let mut f = Column::new(DataType::Float);
        f.push(&Value::Float(0.0)).unwrap();
        f.push(&Value::Float(-0.0)).unwrap();
        f.push(&Value::Float(f64::NAN)).unwrap();
        f.push(&Value::Float(f64::NAN)).unwrap();
        let part = |c: &Column, i| {
            let mut k = Vec::new();
            c.write_key_part(i, &mut k);
            k
        };
        assert_eq!(part(&f, 0), part(&f, 1), "-0.0 == 0.0");
        assert_eq!(part(&f, 2), part(&f, 3), "NaN == NaN (strict)");
        let mut i = Column::new(DataType::Int);
        i.push(&Value::Int(0)).unwrap();
        assert_ne!(part(&i, 0), part(&f, 0), "Int(0) != Float(0.0) strictly");
    }

    #[test]
    fn set_updates_in_place() {
        let mut c = Column::new(DataType::Str);
        c.push(&Value::str("old")).unwrap();
        c.set(0, &Value::str("new")).unwrap();
        assert_eq!(c.value(0), Value::str("new"));
        c.set(0, &Value::Null).unwrap();
        assert!(c.is_null(0));
    }

    #[test]
    fn slice_matches_per_row_reads() {
        let mut c = Column::new(DataType::Int);
        for i in 0..200 {
            let v = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            };
            c.push(&v).unwrap();
        }
        // Aligned and unaligned starts, including a tail shorter than a word.
        for (start, len) in [(0, 200), (64, 100), (3, 61), (190, 10), (5, 0)] {
            let s = c.slice(start, len);
            assert_eq!(s.len(), len);
            for i in 0..len {
                assert_eq!(s.value(i), c.value(start + i), "start={start} i={i}");
            }
            assert_eq!(
                s.null_count(),
                (0..len).filter(|&i| c.is_null(start + i)).count()
            );
        }
    }

    #[test]
    fn slice_shares_string_dictionary() {
        let mut c = Column::new(DataType::Str);
        for s in ["a", "b", "c", "a", "b"] {
            c.push(&Value::str(s)).unwrap();
        }
        let s = c.slice(2, 3);
        let (_, sd, _) = s.as_str().unwrap();
        let (_, cd, _) = c.as_str().unwrap();
        assert!(std::ptr::eq(sd, cd) || sd.len() == cd.len());
        assert_eq!(s.value(0), Value::str("c"));
        assert_eq!(s.value(2), Value::str("b"));
    }

    #[test]
    fn null_bitmap_word_boundaries() {
        let mut b = NullBitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.is_null(i), i % 3 == 0, "row {i}");
        }
        assert_eq!(b.null_count(), (0..130).filter(|i| i % 3 == 0).count());
    }
}
