//! Relation schemas: named, typed columns plus key metadata.

use std::collections::HashMap;
use std::fmt;

use crate::error::{Result, StorageError};
use crate::value::{DataType, Value};

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (unique within the schema).
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

/// Ordered collection of fields with O(1) name lookup.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(StorageError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields, by_name })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Position of the named column.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// True iff the column exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Append a field, rejecting duplicates.
    pub fn push(&mut self, field: Field) -> Result<usize> {
        if self.by_name.contains_key(&field.name) {
            return Err(StorageError::DuplicateColumn(field.name));
        }
        let idx = self.fields.len();
        self.by_name.insert(field.name.clone(), idx);
        self.fields.push(field);
        Ok(idx)
    }

    /// Validate that `row` matches this schema (arity, types, nullability).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.fields.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.fields.len()
            )));
        }
        for (v, f) in row.iter().zip(&self.fields) {
            match v.data_type() {
                None if f.nullable => {}
                None => {
                    return Err(StorageError::SchemaMismatch(format!(
                        "NULL in non-nullable column `{}`",
                        f.name
                    )))
                }
                // Ints are accepted into float columns (common when data
                // generators emit round numbers).
                Some(DataType::Int) if f.data_type == DataType::Float => {}
                Some(dt) if dt == f.data_type => {}
                Some(dt) => {
                    return Err(StorageError::SchemaMismatch(format!(
                        "column `{}` expects {}, got {} ({v})",
                        f.name, f.data_type, dt
                    )))
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .fields
            .iter()
            .map(|fld| format!("{} {}", fld.name, fld.data_type))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::nullable("score", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
        assert!(s.contains("score"));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn rejects_duplicate_columns() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err, StorageError::DuplicateColumn("a".into()));
    }

    #[test]
    fn check_row_validates() {
        let s = schema();
        assert!(s
            .check_row(&[Value::Int(1), Value::str("x"), Value::Float(0.5)])
            .is_ok());
        // Int accepted into Float column.
        assert!(s
            .check_row(&[Value::Int(1), Value::str("x"), Value::Int(2)])
            .is_ok());
        // NULL only where nullable.
        assert!(s
            .check_row(&[Value::Int(1), Value::str("x"), Value::Null])
            .is_ok());
        assert!(s
            .check_row(&[Value::Null, Value::str("x"), Value::Null])
            .is_err());
        // Arity.
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        // Type.
        assert!(s
            .check_row(&[Value::str("1"), Value::str("x"), Value::Null])
            .is_err());
    }

    #[test]
    fn push_extends() {
        let mut s = schema();
        let idx = s.push(Field::new("extra", DataType::Bool)).unwrap();
        assert_eq!(idx, 3);
        assert!(s.push(Field::new("extra", DataType::Int)).is_err());
    }
}
