//! Multi-relation databases with foreign-key metadata.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::error::{Result, StorageError};
use crate::table::Table;

/// A declared foreign-key relationship `child.columns → parent.columns`.
///
/// HypeR uses these to connect tuples across relations when grounding the
/// causal graph and when building relevant views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub child_table: String,
    /// Referencing columns (in the child).
    pub child_columns: Vec<String>,
    /// Referenced table.
    pub parent_table: String,
    /// Referenced columns (in the parent, typically its primary key).
    pub parent_columns: Vec<String>,
}

/// A named collection of tables, preserving registration order.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, usize>,
    foreign_keys: Vec<ForeignKey>,
    /// Memoized content fingerprint, cleared by every `&mut` accessor —
    /// session construction fingerprints the (usually immutable,
    /// `Arc`-shared) database per build, which must not re-hash every
    /// cell each time.
    fingerprint: OnceLock<u64>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a table; names must be unique.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        if self.by_name.contains_key(table.name()) {
            return Err(StorageError::DuplicateTable(table.name().to_string()));
        }
        self.fingerprint = OnceLock::new();
        self.by_name
            .insert(table.name().to_string(), self.tables.len());
        self.tables.push(table);
        Ok(())
    }

    /// Replace a table that already exists (e.g. after a hypothetical update).
    pub fn replace_table(&mut self, table: Table) -> Result<()> {
        self.fingerprint = OnceLock::new();
        match self.by_name.get(table.name()) {
            Some(&i) => {
                self.tables[i] = table;
                Ok(())
            }
            None => Err(StorageError::UnknownTable(table.name().to_string())),
        }
    }

    /// Declare a foreign key after validating that both sides exist.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        {
            let child = self.table(&fk.child_table)?;
            for c in &fk.child_columns {
                child.schema().index_of(c)?;
            }
            let parent = self.table(&fk.parent_table)?;
            for c in &fk.parent_columns {
                parent.schema().index_of(c)?;
            }
            if fk.child_columns.len() != fk.parent_columns.len() {
                return Err(StorageError::SchemaMismatch(
                    "foreign key column count mismatch".into(),
                ));
            }
        }
        self.fingerprint = OnceLock::new();
        self.foreign_keys.push(fk);
        Ok(())
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.by_name
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup. (Invalidate the memoized fingerprint up front —
    /// the caller may mutate the table through the returned reference.)
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.fingerprint = OnceLock::new();
        match self.by_name.get(name) {
            Some(&i) => Ok(&mut self.tables[i]),
            None => Err(StorageError::UnknownTable(name.to_string())),
        }
    }

    /// All tables in registration order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Foreign keys touching the given table (as child or parent).
    pub fn foreign_keys_of(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.child_table == table || fk.parent_table == table)
            .collect()
    }

    /// True iff the named table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Content fingerprint of the whole database: tables (in registration
    /// order) and foreign keys. Databases with equal content fingerprint
    /// equal whether or not they share `Arc`s or construction history —
    /// this keys the process-wide shared artifact store. Computed once
    /// and memoized (every `&mut` accessor clears the memo), so
    /// per-request session construction over a shared `Arc<Database>`
    /// does not re-hash the data.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = crate::fingerprint::Fingerprint::new();
            h.write_u64(self.tables.len() as u64);
            for t in &self.tables {
                h.write_u64(t.fingerprint());
            }
            h.write_u64(self.foreign_keys.len() as u64);
            for fk in &self.foreign_keys {
                h.write_str(&fk.child_table);
                for c in &fk.child_columns {
                    h.write_str(c);
                }
                h.write_str(&fk.parent_table);
                for c in &fk.parent_columns {
                    h.write_str(c);
                }
            }
            h.finish()
        })
    }

    /// Find the unique table holding a column named `attr`, if unambiguous.
    ///
    /// The paper assumes update/output attributes appear in a single relation
    /// (§2); this helper enforces that assumption.
    pub fn table_of_attribute(&self, attr: &str) -> Result<&Table> {
        let mut found: Option<&Table> = None;
        for t in &self.tables {
            if t.schema().contains(attr) {
                if found.is_some() {
                    return Err(StorageError::SchemaMismatch(format!(
                        "attribute `{attr}` appears in multiple relations; qualify it"
                    )));
                }
                found = Some(t);
            }
        }
        found.ok_or_else(|| StorageError::UnknownColumn(attr.to_string()))
    }

    /// Total number of tuples across relations.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::num_rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        let prod = Table::with_key(
            "product",
            Schema::new(vec![
                Field::new("pid", DataType::Int),
                Field::new("price", DataType::Float),
            ])
            .unwrap(),
            &["pid"],
        )
        .unwrap();
        let rev = Table::with_key(
            "review",
            Schema::new(vec![
                Field::new("pid", DataType::Int),
                Field::new("rid", DataType::Int),
                Field::new("rating", DataType::Int),
            ])
            .unwrap(),
            &["pid", "rid"],
        )
        .unwrap();
        db.add_table(prod).unwrap();
        db.add_table(rev).unwrap();
        db.add_foreign_key(ForeignKey {
            child_table: "review".into(),
            child_columns: vec!["pid".into()],
            parent_table: "product".into(),
            parent_columns: vec!["pid".into()],
        })
        .unwrap();
        db
    }

    #[test]
    fn registration_and_lookup() {
        let db = db();
        assert!(db.contains("product"));
        assert!(db.table("review").is_ok());
        assert!(db.table("missing").is_err());
        assert_eq!(db.tables().len(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let t = Table::new("product", Schema::new(vec![]).unwrap());
        assert!(db.add_table(t).is_err());
    }

    #[test]
    fn foreign_key_validation() {
        let mut db = db();
        let bad = ForeignKey {
            child_table: "review".into(),
            child_columns: vec!["nope".into()],
            parent_table: "product".into(),
            parent_columns: vec!["pid".into()],
        };
        assert!(db.add_foreign_key(bad).is_err());
        assert_eq!(db.foreign_keys_of("product").len(), 1);
    }

    #[test]
    fn attribute_resolution() {
        let db = db();
        assert_eq!(db.table_of_attribute("price").unwrap().name(), "product");
        assert_eq!(db.table_of_attribute("rating").unwrap().name(), "review");
        // pid is ambiguous.
        assert!(db.table_of_attribute("pid").is_err());
        assert!(db.table_of_attribute("ghost").is_err());
    }

    #[test]
    fn fingerprint_memo_invalidates_on_mutation() {
        let mut db = db();
        let before = db.fingerprint();
        assert_eq!(before, db.fingerprint(), "memoized value is stable");
        let schema = db.table("product").unwrap().schema().clone();
        let t = crate::table::TableBuilder::new("product", schema)
            .row(vec![9.into(), 1.0.into()])
            .unwrap()
            .build();
        db.replace_table(t).unwrap();
        assert_ne!(before, db.fingerprint(), "mutation clears the memo");
    }

    #[test]
    fn sibling_append_rehashes_only_the_mutated_table() {
        let mut db = db();
        db.fingerprint(); // memoize every per-table digest + the combine
        let before = crate::fingerprint::HASH_TABLE_CALLS.with(|c| c.get());

        // Append a row to `review`; `product` is untouched.
        #[allow(deprecated)]
        db.table_mut("review")
            .unwrap()
            .push_row(vec![1.into(), 9.into(), 5.into()])
            .unwrap();
        db.fingerprint();

        let after = crate::fingerprint::HASH_TABLE_CALLS.with(|c| c.get());
        assert_eq!(
            after - before,
            1,
            "only the mutated table re-hashes; the sibling's memo survives"
        );
    }

    #[test]
    fn replace_table_swaps_contents() {
        let mut db = db();
        let schema = db.table("product").unwrap().schema().clone();
        let t = crate::table::TableBuilder::new("product", schema)
            .row(vec![1.into(), 10.0.into()])
            .unwrap()
            .build();
        db.replace_table(t).unwrap();
        assert_eq!(db.table("product").unwrap().num_rows(), 1);
    }
}
