//! Content fingerprints of databases and tables.
//!
//! A fingerprint is a deterministic 64-bit FNV-1a hash of *content* —
//! schemas, keys, and every cell value — independent of construction
//! history: a table loaded from CSV, built row-wise through the
//! compatibility shim, or assembled from typed column builders hashes
//! identically as long as the data agrees (string cells hash their
//! characters, not their dictionary codes, so shared or re-built
//! dictionaries don't matter).
//!
//! The process-wide shared artifact store keys its shards by
//! `(database fingerprint, causal-graph fingerprint)`: sessions over
//! equal data share relevant views, block decompositions, and fitted
//! estimators, whether or not they share `Arc`s.

use crate::column::Column;
use crate::table::Table;
use crate::value::canonical_f64_bits;

/// Streaming FNV-1a over 64-bit words and byte strings. Stable across
/// runs and platforms (unlike `DefaultHasher`, which is seeded per
/// process) so fingerprints can be logged and compared externally.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint(FNV_OFFSET)
    }
}

impl Fingerprint {
    /// Fresh hasher.
    pub fn new() -> Fingerprint {
        Fingerprint::default()
    }

    /// Mix one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }

    /// Mix a 64-bit word (little-endian byte order).
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Mix a byte string, length-prefixed so concatenations can't collide.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Mix a string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash one column's content: a type tag, then per row either a NULL
/// marker or the canonical payload.
pub(crate) fn hash_column(col: &Column, h: &mut Fingerprint) {
    h.write_u64(col.len() as u64);
    match col {
        Column::Int { values, nulls } => {
            h.write_u8(b'i');
            for (i, &v) in values.iter().enumerate() {
                if nulls.is_null(i) {
                    h.write_u8(0);
                } else {
                    h.write_u8(1);
                    h.write_u64(v as u64);
                }
            }
        }
        Column::Float { values, nulls } => {
            h.write_u8(b'f');
            for (i, &v) in values.iter().enumerate() {
                if nulls.is_null(i) {
                    h.write_u8(0);
                } else {
                    h.write_u8(1);
                    h.write_u64(canonical_f64_bits(v));
                }
            }
        }
        Column::Bool { values, nulls } => {
            h.write_u8(b'b');
            for (i, &v) in values.iter().enumerate() {
                if nulls.is_null(i) {
                    h.write_u8(0);
                } else {
                    h.write_u8(if v { 2 } else { 1 });
                }
            }
        }
        Column::Str { codes, dict, nulls } => {
            h.write_u8(b's');
            // Hash characters, not codes: dictionaries are append-ordered
            // by construction history, which must not leak into the
            // fingerprint.
            for (i, &c) in codes.iter().enumerate() {
                if nulls.is_null(i) {
                    h.write_u8(0);
                } else {
                    h.write_u8(1);
                    h.write_str(dict.get(c));
                }
            }
        }
    }
}

/// Hash a table: name, schema (names, types, nullability), primary key,
/// and every column's content.
pub(crate) fn hash_table(table: &Table, h: &mut Fingerprint) {
    h.write_str(table.name());
    let schema = table.schema();
    h.write_u64(schema.len() as u64);
    for f in schema.fields() {
        h.write_str(&f.name);
        h.write_u8(f.data_type as u8);
        h.write_u8(f.nullable as u8);
    }
    h.write_u64(table.primary_key().len() as u64);
    for &k in table.primary_key() {
        h.write_u64(k as u64);
    }
    for c in 0..table.num_columns() {
        hash_column(table.column(c), h);
    }
}

#[cfg(test)]
mod tests {
    use crate::{DataType, Field, Schema, TableBuilder, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("tag", DataType::Str),
            Field::nullable("score", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn equal_content_hashes_equal() {
        let a = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .row(vec![2.into(), "y".into(), Value::Null])
            .unwrap()
            .build();
        let b = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .row(vec![2.into(), "y".into(), Value::Null])
            .unwrap()
            .build();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn content_differences_change_the_hash() {
        let base = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .build();
        let cell = TableBuilder::new("t", schema())
            .row(vec![1.into(), "z".into(), 0.5.into()])
            .unwrap()
            .build();
        let name = TableBuilder::new("u", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .build();
        let null = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), Value::Null])
            .unwrap()
            .build();
        assert_ne!(base.fingerprint(), cell.fingerprint());
        assert_ne!(base.fingerprint(), name.fingerprint());
        assert_ne!(base.fingerprint(), null.fingerprint());
    }

    #[test]
    fn dictionary_history_does_not_leak() {
        // A gathered table shares a dictionary that is a superset of its
        // rows; its fingerprint must equal a freshly built equivalent.
        let big = TableBuilder::new("t", schema())
            .row(vec![1.into(), "only-in-big".into(), 1.0.into()])
            .unwrap()
            .row(vec![2.into(), "kept".into(), 2.0.into()])
            .unwrap()
            .build();
        let gathered = big.gather(&[1]);
        let fresh = TableBuilder::new("t", schema())
            .row(vec![2.into(), "kept".into(), 2.0.into()])
            .unwrap()
            .build();
        assert_eq!(gathered.fingerprint(), fresh.fingerprint());
    }
}
