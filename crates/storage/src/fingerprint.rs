//! Content fingerprints of databases and tables.
//!
//! A fingerprint is a deterministic 64-bit FNV-1a hash of *content* —
//! schemas, keys, and every cell value — independent of construction
//! history: a table loaded from CSV, built row-wise through the
//! compatibility shim, or assembled from typed column builders hashes
//! identically as long as the data agrees (string cells hash their
//! characters, not their dictionary codes, so shared or re-built
//! dictionaries don't matter).
//!
//! The process-wide shared artifact store keys its shards by
//! `(database fingerprint, causal-graph fingerprint)`: sessions over
//! equal data share relevant views, block decompositions, and fitted
//! estimators, whether or not they share `Arc`s.

use crate::column::Column;
use crate::table::Table;
use crate::value::canonical_f64_bits;

/// Streaming FNV-1a over 64-bit words and byte strings, with a
/// SplitMix64 finalizer. Stable across runs and platforms (unlike
/// `DefaultHasher`, which is seeded per process) so fingerprints can be
/// logged and compared externally.
///
/// Words are mixed **one multiply per 64-bit word** (not per byte):
/// fingerprinting sits on the session-construction and snapshot-load hot
/// paths, where a whole database is hashed cell by cell, and the
/// word-at-a-time variant is ~8× faster at the same 64-bit collision
/// budget. FNV's weak low→high diffusion is compensated by the
/// [`Fingerprint::finish`] finalizer, which avalanches the accumulated
/// state across the whole output word.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint(FNV_OFFSET)
    }
}

impl Fingerprint {
    /// Fresh hasher.
    pub fn new() -> Fingerprint {
        Fingerprint::default()
    }

    /// Mix one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }

    /// Mix a 64-bit word in one step.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(FNV_PRIME);
    }

    /// Mix a byte string, length-prefixed so concatenations can't
    /// collide; the body is consumed eight bytes at a time.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        for &b in chunks.remainder() {
            self.write_u8(b);
        }
    }

    /// Mix a string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The digest (SplitMix64-finalized so every input bit avalanches
    /// across the whole output word).
    pub fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Hash one column's content: a type tag and the null count, then — for
/// the common all-valid column — the bare payloads, or per row a NULL
/// marker byte ahead of each payload. The dispatch is on *content*
/// (`any_null`), so equal-content columns hash equal whichever way they
/// were built, while all-valid columns skip 1 byte-mix per cell — this
/// sits on the session-construction and snapshot-validation hot paths.
pub(crate) fn hash_column(
    col: &Column,
    h: &mut Fingerprint,
    dict_memos: &mut std::collections::HashMap<usize, std::rc::Rc<Vec<u64>>>,
) {
    h.write_u64(col.len() as u64);
    let nulls = col.nulls();
    h.write_u64(nulls.null_count() as u64);
    let dense = !nulls.any_null();
    match col {
        Column::Int { values, .. } => {
            h.write_u8(b'i');
            if dense {
                for &v in values {
                    h.write_u64(v as u64);
                }
            } else {
                for (i, &v) in values.iter().enumerate() {
                    if nulls.is_null(i) {
                        h.write_u8(0);
                    } else {
                        h.write_u8(1);
                        h.write_u64(v as u64);
                    }
                }
            }
        }
        Column::Float { values, .. } => {
            h.write_u8(b'f');
            if dense {
                for &v in values {
                    h.write_u64(canonical_f64_bits(v));
                }
            } else {
                for (i, &v) in values.iter().enumerate() {
                    if nulls.is_null(i) {
                        h.write_u8(0);
                    } else {
                        h.write_u8(1);
                        h.write_u64(canonical_f64_bits(v));
                    }
                }
            }
        }
        Column::Bool { values, .. } => {
            h.write_u8(b'b');
            for (i, &v) in values.iter().enumerate() {
                if nulls.is_null(i) {
                    h.write_u8(0);
                } else {
                    h.write_u8(if v { 2 } else { 1 });
                }
            }
        }
        Column::Str { codes, dict, .. } => {
            h.write_u8(b's');
            // Hash characters, not codes: dictionaries are append-ordered
            // by construction history, which must not leak into the
            // fingerprint. Each distinct string is hashed once
            // (content-only sub-digest) and cells mix the memoized word,
            // so a 10k-row column over a handful of categories costs one
            // multiply per cell, not one per character. The memo is
            // shared across a table's columns by `Arc` identity, so a
            // dictionary shared by k columns is digested once, not k
            // times.
            let memo = std::rc::Rc::clone(
                dict_memos
                    .entry(std::sync::Arc::as_ptr(dict) as usize)
                    .or_insert_with(|| {
                        std::rc::Rc::new(
                            dict.strings()
                                .iter()
                                .map(|s| {
                                    let mut sh = Fingerprint::new();
                                    sh.write_str(s);
                                    sh.finish()
                                })
                                .collect(),
                        )
                    }),
            );
            if dense {
                for &c in codes {
                    h.write_u64(memo[c as usize]);
                }
            } else {
                for (i, &c) in codes.iter().enumerate() {
                    if nulls.is_null(i) {
                        h.write_u8(0);
                    } else {
                        h.write_u8(1);
                        h.write_u64(memo[c as usize]);
                    }
                }
            }
        }
    }
}

// Test-only observability: how many whole-table hashes this thread has
// run. The memoization regression tests use it to assert that an
// untouched table is *not* re-hashed after a sibling mutation.
// Thread-local so parallel tests can't perturb each other's counts.
#[cfg(test)]
thread_local! {
    pub(crate) static HASH_TABLE_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Hash a table: name, schema (names, types, nullability), primary key,
/// and every column's content.
pub(crate) fn hash_table(table: &Table, h: &mut Fingerprint) {
    #[cfg(test)]
    HASH_TABLE_CALLS.with(|c| c.set(c.get() + 1));
    h.write_str(table.name());
    let schema = table.schema();
    h.write_u64(schema.len() as u64);
    for f in schema.fields() {
        h.write_str(&f.name);
        h.write_u8(f.data_type as u8);
        h.write_u8(f.nullable as u8);
    }
    h.write_u64(table.primary_key().len() as u64);
    for &k in table.primary_key() {
        h.write_u64(k as u64);
    }
    // One dictionary-digest memo for the whole table (dictionaries are
    // commonly shared across projected/gathered columns).
    let mut dict_memos = std::collections::HashMap::new();
    for c in 0..table.num_columns() {
        hash_column(table.column(c), h, &mut dict_memos);
    }
}

/// Per-row content digests of a table: each row's hash covers the table
/// name plus every cell (type-tagged; floats canonicalized, strings by
/// character content via memoized dictionary digests) — and nothing
/// positional, so a row's digest survives re-ordering and sibling
/// appends/deletes. Used to fingerprint Prop.-1 blocks for block-scoped
/// invalidation: a block's digest is the XOR of its tuples' digests
/// (order-insensitive by construction).
pub(crate) fn hash_rows(table: &Table) -> Vec<u64> {
    let mut seed = Fingerprint::new();
    seed.write_str(table.name());
    let mut hashers: Vec<Fingerprint> = vec![seed; table.num_rows()];
    let mut dict_memos: std::collections::HashMap<usize, std::rc::Rc<Vec<u64>>> =
        std::collections::HashMap::new();
    for c in 0..table.num_columns() {
        let col = table.column(c);
        let nulls = col.nulls();
        match col {
            Column::Int { values, .. } => {
                for (i, &v) in values.iter().enumerate() {
                    if nulls.is_null(i) {
                        hashers[i].write_u8(0);
                    } else {
                        hashers[i].write_u8(b'i');
                        hashers[i].write_u64(v as u64);
                    }
                }
            }
            Column::Float { values, .. } => {
                for (i, &v) in values.iter().enumerate() {
                    if nulls.is_null(i) {
                        hashers[i].write_u8(0);
                    } else {
                        hashers[i].write_u8(b'f');
                        hashers[i].write_u64(canonical_f64_bits(v));
                    }
                }
            }
            Column::Bool { values, .. } => {
                for (i, &v) in values.iter().enumerate() {
                    if nulls.is_null(i) {
                        hashers[i].write_u8(0);
                    } else {
                        hashers[i].write_u8(if v { 2 } else { 1 });
                    }
                }
            }
            Column::Str { codes, dict, .. } => {
                let memo = std::rc::Rc::clone(
                    dict_memos
                        .entry(std::sync::Arc::as_ptr(dict) as usize)
                        .or_insert_with(|| {
                            std::rc::Rc::new(
                                dict.strings()
                                    .iter()
                                    .map(|s| {
                                        let mut sh = Fingerprint::new();
                                        sh.write_str(s);
                                        sh.finish()
                                    })
                                    .collect(),
                            )
                        }),
                );
                for (i, &code) in codes.iter().enumerate() {
                    if nulls.is_null(i) {
                        hashers[i].write_u8(0);
                    } else {
                        hashers[i].write_u8(b's');
                        hashers[i].write_u64(memo[code as usize]);
                    }
                }
            }
        }
    }
    hashers.into_iter().map(|h| h.finish()).collect()
}

#[cfg(test)]
mod tests {
    use crate::{DataType, Field, Schema, TableBuilder, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("tag", DataType::Str),
            Field::nullable("score", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn equal_content_hashes_equal() {
        let a = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .row(vec![2.into(), "y".into(), Value::Null])
            .unwrap()
            .build();
        let b = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .row(vec![2.into(), "y".into(), Value::Null])
            .unwrap()
            .build();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn content_differences_change_the_hash() {
        let base = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .build();
        let cell = TableBuilder::new("t", schema())
            .row(vec![1.into(), "z".into(), 0.5.into()])
            .unwrap()
            .build();
        let name = TableBuilder::new("u", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .build();
        let null = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), Value::Null])
            .unwrap()
            .build();
        assert_ne!(base.fingerprint(), cell.fingerprint());
        assert_ne!(base.fingerprint(), name.fingerprint());
        assert_ne!(base.fingerprint(), null.fingerprint());
    }

    #[test]
    fn dictionary_history_does_not_leak() {
        // A gathered table shares a dictionary that is a superset of its
        // rows; its fingerprint must equal a freshly built equivalent.
        let big = TableBuilder::new("t", schema())
            .row(vec![1.into(), "only-in-big".into(), 1.0.into()])
            .unwrap()
            .row(vec![2.into(), "kept".into(), 2.0.into()])
            .unwrap()
            .build();
        let gathered = big.gather(&[1]);
        let fresh = TableBuilder::new("t", schema())
            .row(vec![2.into(), "kept".into(), 2.0.into()])
            .unwrap()
            .build();
        assert_eq!(gathered.fingerprint(), fresh.fingerprint());
    }

    #[test]
    fn row_fingerprints_are_content_and_position_independent() {
        let a = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .row(vec![2.into(), "y".into(), Value::Null])
            .unwrap()
            .build();
        let rows = a.row_fingerprints();
        assert_eq!(rows.len(), 2);
        assert_ne!(rows[0], rows[1], "distinct content → distinct digests");

        // A row keeps its digest when siblings are appended around it and
        // when its position shifts (gather), because digests are
        // index-free content hashes.
        let extended = TableBuilder::new("t", schema())
            .row(vec![0.into(), "z".into(), 9.0.into()])
            .unwrap()
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .row(vec![2.into(), "y".into(), Value::Null])
            .unwrap()
            .build();
        let ext_rows = extended.row_fingerprints();
        assert_eq!(ext_rows[1], rows[0]);
        assert_eq!(ext_rows[2], rows[1]);
        let shuffled = extended.gather(&[2, 0, 1]);
        let mut sorted_a: Vec<u64> = ext_rows.clone();
        let mut sorted_b = shuffled.row_fingerprints();
        sorted_a.sort_unstable();
        sorted_b.sort_unstable();
        assert_eq!(sorted_a, sorted_b);

        // Same content in a differently-named table digests differently.
        let renamed = TableBuilder::new("u", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .build();
        assert_ne!(renamed.row_fingerprints()[0], rows[0]);
    }

    #[test]
    fn table_fingerprint_is_memoized_until_mutation() {
        let mut t = TableBuilder::new("t", schema())
            .row(vec![1.into(), "x".into(), 0.5.into()])
            .unwrap()
            .build();
        let before = super::HASH_TABLE_CALLS.with(|c| c.get());
        let fp = t.fingerprint();
        assert_eq!(fp, t.fingerprint());
        let after = super::HASH_TABLE_CALLS.with(|c| c.get());
        assert_eq!(after - before, 1, "second call served from the memo");

        t.set(0, 0, Value::Int(7)).unwrap();
        let changed = t.fingerprint();
        assert_ne!(fp, changed, "mutation cleared the memo");
        let rehash = super::HASH_TABLE_CALLS.with(|c| c.get());
        assert_eq!(rehash - after, 1);
    }
}
