//! In-memory tables with columnar storage.

use std::fmt;

use crate::error::{Result, StorageError};
use crate::schema::{Field, Schema};
use crate::value::{Row, Value};

/// A named relation: schema + columnar data + optional primary key.
///
/// Storage is column-major (`Vec<Vec<Value>>`), which keeps aggregate scans
/// and per-attribute statistics cache-friendly; row views are materialized on
/// demand.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Vec<Value>>,
    /// Indices of the primary-key columns (possibly empty for derived views).
    primary_key: Vec<usize>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = (0..schema.len()).map(|_| Vec::new()).collect();
        Table {
            name: name.into(),
            schema,
            columns,
            primary_key: Vec::new(),
        }
    }

    /// Create an empty table and declare its primary-key columns by name.
    pub fn with_key(name: impl Into<String>, schema: Schema, key_columns: &[&str]) -> Result<Self> {
        let mut t = Table::new(name, schema);
        let mut key = Vec::with_capacity(key_columns.len());
        for k in key_columns {
            key.push(t.schema.index_of(k)?);
        }
        t.primary_key = key;
        Ok(t)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when registering derived views).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Primary-key column indices.
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// Reserve capacity for `additional` more rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.columns {
            c.reserve(additional);
        }
    }

    /// Append a row after validating it against the schema.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        Ok(())
    }

    /// Append a row without schema validation (hot path for operators whose
    /// output schema is constructed alongside the data).
    pub(crate) fn push_row_unchecked(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.columns.len());
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Full column by index.
    pub fn column(&self, idx: usize) -> &[Value] {
        &self.columns[idx]
    }

    /// Full column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&[Value]> {
        Ok(self.column(self.schema.index_of(name)?))
    }

    /// Mutable access to a cell (used by hypothetical-update application).
    pub fn set(&mut self, row: usize, col: usize, v: Value) {
        self.columns[col][row] = v;
    }

    /// Cell value.
    pub fn get(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Iterate over materialized rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.num_rows()).map(move |i| self.row(i))
    }

    /// Build a new table containing only the rows at `indices` (in order).
    pub fn gather(&self, indices: &[usize]) -> Table {
        let mut columns: Vec<Vec<Value>> = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            let mut out = Vec::with_capacity(indices.len());
            for &i in indices {
                out.push(c[i].clone());
            }
            columns.push(out);
        }
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            primary_key: self.primary_key.clone(),
        }
    }

    /// Project to the named columns, producing a new table.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let mut fields = Vec::with_capacity(names.len());
        let mut idxs = Vec::with_capacity(names.len());
        for n in names {
            let i = self.schema.index_of(n)?;
            fields.push(self.schema.field(i).clone());
            idxs.push(i);
        }
        let schema = Schema::new(fields)?;
        let columns = idxs.iter().map(|&i| self.columns[i].clone()).collect();
        Ok(Table {
            name: self.name.clone(),
            schema,
            columns,
            primary_key: Vec::new(),
        })
    }

    /// Add a new column with the given values.
    pub fn add_column(&mut self, field: Field, values: Vec<Value>) -> Result<()> {
        if values.len() != self.num_rows() {
            return Err(StorageError::SchemaMismatch(format!(
                "column `{}` has {} values, table has {} rows",
                field.name,
                values.len(),
                self.num_rows()
            )));
        }
        self.schema.push(field)?;
        self.columns.push(values);
        Ok(())
    }

    /// Sort rows by the given column (ascending), stable.
    pub fn sort_by_column(&self, name: &str) -> Result<Table> {
        let idx = self.schema.index_of(name)?;
        let mut order: Vec<usize> = (0..self.num_rows()).collect();
        order.sort_by(|&a, &b| self.columns[idx][a].cmp(&self.columns[idx][b]));
        Ok(self.gather(&order))
    }

    /// Verify the declared primary key is unique; returns the offending key
    /// rendering on failure.
    pub fn check_key_unique(&self) -> Result<()> {
        if self.primary_key.is_empty() {
            return Ok(());
        }
        let mut seen = std::collections::HashSet::with_capacity(self.num_rows());
        for i in 0..self.num_rows() {
            let key: Vec<&Value> = self
                .primary_key
                .iter()
                .map(|&c| &self.columns[c][i])
                .collect();
            if !seen.insert(key.iter().map(|v| (*v).clone()).collect::<Vec<_>>()) {
                let rendered: Vec<String> = key.iter().map(|v| v.to_string()).collect();
                return Err(StorageError::DuplicateKey(rendered.join(",")));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {}", self.name, self.schema)?;
        let n = self.num_rows().min(20);
        for i in 0..n {
            let cells: Vec<String> = (0..self.num_columns())
                .map(|c| self.get(i, c).to_string())
                .collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.num_rows() > n {
            writeln!(f, "  … {} more rows", self.num_rows() - n)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("brand", DataType::Str),
            Field::new("price", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::with_key("product", schema, &["id"]).unwrap();
        t.push_row(vec![1.into(), "vaio".into(), 999.0.into()])
            .unwrap();
        t.push_row(vec![2.into(), "asus".into(), 529.0.into()])
            .unwrap();
        t.push_row(vec![3.into(), "hp".into(), 599.0.into()])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.get(1, 1), &Value::str("asus"));
        assert_eq!(t.row(2), vec![3.into(), "hp".into(), 599.0.into()]);
    }

    #[test]
    fn push_rejects_bad_rows() {
        let mut t = sample();
        assert!(t.push_row(vec![4.into(), 5.into(), 1.0.into()]).is_err());
        assert!(t.push_row(vec![4.into()]).is_err());
        assert_eq!(t.num_rows(), 3, "failed insert must not partially apply");
    }

    #[test]
    fn gather_and_project() {
        let t = sample();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.get(0, 1), &Value::str("hp"));
        let p = t.project(&["brand"]).unwrap();
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.column(0).len(), 3);
        assert!(t.project(&["missing"]).is_err());
    }

    #[test]
    fn sort_by_column_orders_rows() {
        let t = sample();
        let s = t.sort_by_column("price").unwrap();
        assert_eq!(s.get(0, 1), &Value::str("asus"));
        assert_eq!(s.get(2, 1), &Value::str("vaio"));
    }

    #[test]
    fn key_uniqueness() {
        let mut t = sample();
        assert!(t.check_key_unique().is_ok());
        t.push_row(vec![2.into(), "dup".into(), 1.0.into()])
            .unwrap();
        assert!(t.check_key_unique().is_err());
    }

    #[test]
    fn add_column_validates_length() {
        let mut t = sample();
        assert!(t
            .add_column(
                Field::new("stock", DataType::Int),
                vec![1.into(), 2.into(), 3.into()]
            )
            .is_ok());
        assert!(t
            .add_column(Field::new("bad", DataType::Int), vec![1.into()])
            .is_err());
    }
}
