//! In-memory tables over typed columnar storage.
//!
//! A [`Table`] is a schema plus one typed [`Column`] per field: `Int`
//! columns are `Vec<i64>`, `Float` are `Vec<f64>`, `Bool` are `Vec<bool>`,
//! and `Str` columns are dictionary-encoded (`Vec<u32>` codes into an
//! `Arc`-shared [`crate::StrDict`]); every column carries a null bitmap.
//! Hot operators (`gather`, filtering, join key extraction, feature
//! encoding) work on the typed buffers directly; the row-oriented API
//! ([`Table::push_row`], [`Table::row`], [`Table::iter_rows`],
//! [`Table::get`]) materializes [`Value`]s on demand and is kept as a
//! compatibility layer for loaders and tests.
//!
//! NULL semantics: a NULL cell is a set bit in the column's bitmap; the
//! payload slot holds a type-default placeholder that no reader observes.
//! [`Table::get`] returns [`Value::Null`] for such cells, and typed readers
//! check `is_null` (or the bitmap slice) before the payload.

use std::fmt;
use std::sync::OnceLock;

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::fingerprint::{hash_table, Fingerprint};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Row, Value};

/// Columnar table construction: the supported ingest path now that the
/// row-oriented [`Table`] mutators are deprecated. The builder owns one
/// typed [`Column`] per schema field; rows validate against the schema as
/// they are appended ([`TableBuilder::push`] / the chainable
/// [`TableBuilder::row`]), and whole typed columns can be installed
/// directly ([`TableBuilder::set_column`]) when the producer works
/// column-at-a-time (CSV parsing, dataset generators).
///
/// ```
/// use hyper_storage::{DataType, Field, Schema, TableBuilder, Value};
///
/// let schema = Schema::new(vec![
///     Field::new("id", DataType::Int),
///     Field::new("brand", DataType::Str),
/// ]).unwrap();
/// let t = TableBuilder::new("product", schema)
///     .row(vec![1.into(), "asus".into()]).unwrap()
///     .row(vec![2.into(), "hp".into()]).unwrap()
///     .build();
/// assert_eq!(t.num_rows(), 2);
/// assert_eq!(t.column(1).value(0), Value::str("asus"));
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    primary_key: Vec<usize>,
}

impl TableBuilder {
    /// Start an empty builder over `schema`.
    pub fn new(name: impl Into<String>, schema: Schema) -> TableBuilder {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.data_type))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            columns,
            primary_key: Vec::new(),
        }
    }

    /// Start a builder and declare the primary-key columns by name.
    pub fn with_key(
        name: impl Into<String>,
        schema: Schema,
        key_columns: &[&str],
    ) -> Result<TableBuilder> {
        let mut b = TableBuilder::new(name, schema);
        let mut key = Vec::with_capacity(key_columns.len());
        for k in key_columns {
            key.push(b.schema.index_of(k)?);
        }
        b.primary_key = key;
        Ok(b)
    }

    /// Reserve capacity for `additional` more rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.columns {
            c.reserve(additional);
        }
    }

    /// Append one row after validating it against the schema.
    pub fn push(&mut self, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        for (col, v) in self.columns.iter_mut().zip(&row) {
            col.push(v)?;
        }
        Ok(())
    }

    /// Chainable [`TableBuilder::push`].
    pub fn row(mut self, row: Row) -> Result<TableBuilder> {
        self.push(row)?;
        Ok(self)
    }

    /// Append many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Row>) -> Result<TableBuilder> {
        for r in rows {
            self.push(r)?;
        }
        Ok(self)
    }

    /// Install a fully-built typed column for the named field, replacing
    /// whatever the builder held for it. The column's type must match the
    /// schema (Int columns are accepted for Float fields, mirroring the
    /// row path's coercion), its length must agree with the builder's
    /// other non-empty columns, and NULLs require a nullable field.
    pub fn set_column(&mut self, name: &str, column: Column) -> Result<()> {
        let idx = self.schema.index_of(name)?;
        let field = self.schema.field(idx);
        // Int → Float widening, mirroring `Column::push`'s row-path
        // coercion.
        let column = match (&column, field.data_type) {
            (Column::Int { values, nulls }, crate::value::DataType::Float) => Column::Float {
                values: values.iter().map(|&v| v as f64).collect(),
                nulls: nulls.clone(),
            },
            _ => column,
        };
        if column.data_type() != field.data_type {
            return Err(StorageError::TypeError(format!(
                "column `{name}` is {}, got a {} column",
                field.data_type,
                column.data_type()
            )));
        }
        if !field.nullable && column.null_count() > 0 {
            return Err(StorageError::SchemaMismatch(format!(
                "column `{name}` is not nullable but holds {} NULLs",
                column.null_count()
            )));
        }
        if let Some(n) = self
            .columns
            .iter()
            .enumerate()
            .filter(|&(c, col)| c != idx && !col.is_empty())
            .map(|(_, col)| col.len())
            .next()
        {
            if column.len() != n {
                return Err(StorageError::SchemaMismatch(format!(
                    "column `{name}` has {} rows, builder has {n}",
                    column.len()
                )));
            }
        }
        self.columns[idx] = column;
        Ok(())
    }

    /// Rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Finish: every column must have the same length (guaranteed when
    /// rows came through [`TableBuilder::push`]; asserted here because
    /// [`TableBuilder::set_column`] can install columns independently and
    /// mixing the two styles without filling every column is a
    /// programming error).
    pub fn build(self) -> Table {
        assert!(
            self.columns.windows(2).all(|w| w[0].len() == w[1].len()),
            "ragged columns: install every column before build()"
        );
        let mut t = Table::from_columns(self.name, self.schema, self.columns);
        t.primary_key = self.primary_key;
        t
    }
}

/// A named relation: schema + typed columns + optional primary key.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    /// Indices of the primary-key columns (possibly empty for derived views).
    primary_key: Vec<usize>,
    /// Memoized content fingerprint, cleared by every content-mutating
    /// method. A `Database::fingerprint` recombines per-table digests, so
    /// only tables that actually changed re-hash their cells.
    memo: OnceLock<u64>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.data_type))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            primary_key: Vec::new(),
            memo: OnceLock::new(),
        }
    }

    /// Create an empty table and declare its primary-key columns by name.
    pub fn with_key(name: impl Into<String>, schema: Schema, key_columns: &[&str]) -> Result<Self> {
        let mut t = Table::new(name, schema);
        let mut key = Vec::with_capacity(key_columns.len());
        for k in key_columns {
            key.push(t.schema.index_of(k)?);
        }
        t.primary_key = key;
        Ok(t)
    }

    /// Assemble a table directly from typed columns (lengths must agree
    /// with each other; types must match the schema).
    pub(crate) fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
    ) -> Table {
        debug_assert_eq!(schema.len(), columns.len());
        debug_assert!(columns.windows(2).all(|w| w[0].len() == w[1].len()));
        Table {
            name: name.into(),
            schema,
            columns,
            primary_key: Vec::new(),
            memo: OnceLock::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when registering derived views).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.memo = OnceLock::new();
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Primary-key column indices.
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// Reserve capacity for `additional` more rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.columns {
            c.reserve(additional);
        }
    }

    /// Append a row after validating it against the schema.
    #[deprecated(
        since = "0.1.0",
        note = "row-oriented ingest materializes a `Value` per cell; build tables \
                through the typed `TableBuilder` (or `Column` builders) instead"
    )]
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        self.memo = OnceLock::new();
        for (col, v) in self.columns.iter_mut().zip(&row) {
            col.push(v)?;
        }
        Ok(())
    }

    /// Typed column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Typed column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(self.column(self.schema.index_of(name)?))
    }

    /// Overwrite one cell. With typed columns this is fallible: the value
    /// must match the column type (Ints coerce into Float columns).
    pub fn set(&mut self, row: usize, col: usize, v: Value) -> Result<()> {
        self.memo = OnceLock::new();
        self.columns[col].set(row, &v)
    }

    /// Materialize one cell.
    #[deprecated(
        since = "0.1.0",
        note = "per-cell `Value` materialization; read `table.column(col).value(row)` \
                (or the column's typed accessors) instead"
    )]
    pub fn get(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialize row `i`.
    #[deprecated(
        since = "0.1.0",
        note = "whole-row `Value` materialization; iterate the typed columns instead"
    )]
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Iterate over materialized rows.
    #[deprecated(
        since = "0.1.0",
        note = "whole-row `Value` materialization; iterate the typed columns instead"
    )]
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        #[allow(deprecated)]
        (0..self.num_rows()).map(move |i| self.row(i))
    }

    /// Append every row of `rows` (typed column concatenation — the
    /// ingest path; see [`crate::Column::append_column`]). Schemas must
    /// match by column name and type (Ints widen into Float columns);
    /// NULLs in non-nullable fields are rejected.
    pub fn append_rows(&mut self, rows: &Table) -> Result<()> {
        if rows.num_columns() != self.num_columns() {
            return Err(StorageError::SchemaMismatch(format!(
                "append to `{}`: {} column(s), got {}",
                self.name,
                self.num_columns(),
                rows.num_columns()
            )));
        }
        for (mine, theirs) in self.schema.fields().iter().zip(rows.schema.fields()) {
            if !mine.name.eq_ignore_ascii_case(&theirs.name) {
                return Err(StorageError::SchemaMismatch(format!(
                    "append to `{}`: expected column `{}`, got `{}`",
                    self.name, mine.name, theirs.name
                )));
            }
        }
        for (i, (col, incoming)) in self.columns.iter().zip(&rows.columns).enumerate() {
            let field = self.schema.field(i);
            let widens =
                col.data_type() == DataType::Float && incoming.data_type() == DataType::Int;
            if incoming.data_type() != col.data_type() && !widens {
                return Err(StorageError::TypeError(format!(
                    "append to `{}`: column `{}` is {}, got {}",
                    self.name,
                    field.name,
                    col.data_type(),
                    incoming.data_type()
                )));
            }
            if !field.nullable && incoming.null_count() > 0 {
                return Err(StorageError::SchemaMismatch(format!(
                    "append to `{}`: column `{}` is not nullable but the delta holds {} NULL(s)",
                    self.name,
                    field.name,
                    incoming.null_count()
                )));
            }
        }
        self.memo = OnceLock::new();
        for (col, incoming) in self.columns.iter_mut().zip(&rows.columns) {
            col.append_column(incoming)?;
        }
        Ok(())
    }

    /// Build a new table holding the contiguous row range
    /// `[start, start + len)`: the verbatim typed slice of every column
    /// (same bits, same null pattern, shared string dictionaries), with
    /// the name, schema, and primary key preserved. This is the morsel /
    /// paging-chunk primitive — see [`crate::morsel`].
    pub fn slice(&self, start: usize, len: usize) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.slice(start, len)).collect(),
            primary_key: self.primary_key.clone(),
            memo: OnceLock::new(),
        }
    }

    /// Build a new table containing only the rows at `indices` (in order).
    /// A typed copy per column — no `Value` materialization; string
    /// dictionaries are shared, not rebuilt.
    pub fn gather(&self, indices: &[usize]) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
            primary_key: self.primary_key.clone(),
            memo: OnceLock::new(),
        }
    }

    /// Project to the named columns, producing a new table (columns are
    /// cloned buffers; string dictionaries are shared).
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let mut fields = Vec::with_capacity(names.len());
        let mut idxs = Vec::with_capacity(names.len());
        for n in names {
            let i = self.schema.index_of(n)?;
            fields.push(self.schema.field(i).clone());
            idxs.push(i);
        }
        let schema = Schema::new(fields)?;
        let columns = idxs.iter().map(|&i| self.columns[i].clone()).collect();
        Ok(Table {
            name: self.name.clone(),
            schema,
            columns,
            primary_key: Vec::new(),
            memo: OnceLock::new(),
        })
    }

    /// Add a new column with the given values.
    pub fn add_column(&mut self, field: Field, values: Vec<Value>) -> Result<()> {
        if values.len() != self.num_rows() {
            return Err(StorageError::SchemaMismatch(format!(
                "column `{}` has {} values, table has {} rows",
                field.name,
                values.len(),
                self.num_rows()
            )));
        }
        let column = Column::from_values(field.data_type, &values)?;
        self.memo = OnceLock::new();
        self.schema.push(field)?;
        self.columns.push(column);
        Ok(())
    }

    /// Sort rows by the given column (ascending), stable. Comparison runs
    /// on the typed buffer ([`Column::cmp_rows`]); NULLs sort first.
    pub fn sort_by_column(&self, name: &str) -> Result<Table> {
        let idx = self.schema.index_of(name)?;
        let col = &self.columns[idx];
        let mut order: Vec<usize> = (0..self.num_rows()).collect();
        order.sort_by(|&a, &b| col.cmp_rows(a, b));
        Ok(self.gather(&order))
    }

    /// Content fingerprint: a stable 64-bit hash of name, schema, key,
    /// and every cell (see [`crate::fingerprint`]). Equal-content tables
    /// hash equal regardless of how they were built. Memoized per table:
    /// sibling mutations in the same [`crate::Database`] do not force
    /// this table to re-hash its cells.
    pub fn fingerprint(&self) -> u64 {
        *self.memo.get_or_init(|| {
            let mut h = Fingerprint::new();
            hash_table(self, &mut h);
            h.finish()
        })
    }

    /// Per-row content fingerprints: one stable 64-bit digest per tuple,
    /// covering the table name and every cell's content (type-tagged;
    /// strings hash their characters, not dictionary codes) but **not**
    /// the row index — so a tuple keeps its digest when unrelated rows
    /// are appended or deleted around it. Block-scoped invalidation XORs
    /// these per Prop.-1 block to detect which blocks a delta touched.
    pub fn row_fingerprints(&self) -> Vec<u64> {
        crate::fingerprint::hash_rows(self)
    }

    /// Approximate memory footprint in bytes (typed column buffers, null
    /// bitmaps, amortized dictionary shares). Used by the byte-budgeted
    /// shared-artifact eviction policy.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(Column::approx_bytes).sum()
    }

    /// Verify the declared primary key is unique; returns the offending key
    /// rendering on failure. Hashes typed key parts straight off the
    /// column buffers — no per-row `Value` materialization.
    pub fn check_key_unique(&self) -> Result<()> {
        if self.primary_key.is_empty() {
            return Ok(());
        }
        let key_cols: Vec<&Column> = self.primary_key.iter().map(|&c| &self.columns[c]).collect();
        let mut seen = std::collections::HashSet::with_capacity(self.num_rows());
        let mut key: Vec<u64> = Vec::with_capacity(key_cols.len() * 2);
        for i in 0..self.num_rows() {
            key.clear();
            for c in &key_cols {
                c.write_key_part(i, &mut key);
            }
            if !seen.insert(key.clone()) {
                let rendered: Vec<String> =
                    key_cols.iter().map(|c| c.value(i).to_string()).collect();
                return Err(StorageError::DuplicateKey(rendered.join(",")));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {}", self.name, self.schema)?;
        let n = self.num_rows().min(20);
        for i in 0..n {
            let cells: Vec<String> = (0..self.num_columns())
                .map(|c| self.column(c).value(i).to_string())
                .collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.num_rows() > n {
            writeln!(f, "  … {} more rows", self.num_rows() - n)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("brand", DataType::Str),
            Field::new("price", DataType::Float),
        ])
        .unwrap();
        TableBuilder::with_key("product", schema, &["id"])
            .unwrap()
            .rows([
                vec![1.into(), "vaio".into(), 999.0.into()],
                vec![2.into(), "asus".into(), 529.0.into()],
                vec![3.into(), "hp".into(), 599.0.into()],
            ])
            .unwrap()
            .build()
    }

    #[test]
    fn build_and_read() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column(1).value(1), Value::str("asus"));
        assert_eq!(t.column(2).value(2), Value::Float(599.0));
    }

    #[test]
    fn builder_rejects_bad_rows() {
        let t = sample();
        let mut b = TableBuilder::new("t", t.schema().clone());
        assert!(b.push(vec![4.into(), 5.into(), 1.0.into()]).is_err());
        assert!(b.push(vec![4.into()]).is_err());
        assert_eq!(b.num_rows(), 0, "failed insert must not partially apply");
    }

    #[test]
    fn set_column_widens_int_into_float_fields() {
        let t = sample();
        let mut b = TableBuilder::new("t", t.schema().clone());
        b.set_column(
            "price",
            Column::from_values(DataType::Int, &[5.into(), 7.into()]).unwrap(),
        )
        .unwrap();
        b.set_column(
            "id",
            Column::from_values(DataType::Int, &[1.into(), 2.into()]).unwrap(),
        )
        .unwrap();
        b.set_column(
            "brand",
            Column::from_values(DataType::Str, &["a".into(), "b".into()]).unwrap(),
        )
        .unwrap();
        let t = b.build();
        assert_eq!(t.column(2).value(0), Value::Float(5.0));
    }

    #[test]
    fn builder_set_column_validates() {
        let t = sample();
        let mut b = TableBuilder::new("t", t.schema().clone());
        // Type mismatch.
        assert!(b
            .set_column(
                "id",
                Column::from_values(DataType::Str, &["x".into()]).unwrap()
            )
            .is_err());
        // NULL into a non-nullable field.
        assert!(b
            .set_column(
                "id",
                Column::from_values(DataType::Int, &[Value::Null]).unwrap()
            )
            .is_err());
        // Length mismatch against an installed column.
        b.set_column(
            "id",
            Column::from_values(DataType::Int, &[1.into(), 2.into()]).unwrap(),
        )
        .unwrap();
        assert!(b
            .set_column(
                "price",
                Column::from_values(DataType::Float, &[1.0.into()]).unwrap()
            )
            .is_err());
    }

    /// The deprecated row-oriented shim stays semantically equivalent to
    /// the builder path for loaders/tests that still depend on it.
    #[test]
    #[allow(deprecated)]
    fn row_shim_matches_builder() {
        let built = sample();
        let mut shim = Table::with_key("product", built.schema().clone(), &["id"]).unwrap();
        shim.push_row(vec![1.into(), "vaio".into(), 999.0.into()])
            .unwrap();
        shim.push_row(vec![2.into(), "asus".into(), 529.0.into()])
            .unwrap();
        shim.push_row(vec![3.into(), "hp".into(), 599.0.into()])
            .unwrap();
        assert_eq!(shim.fingerprint(), built.fingerprint());
        assert_eq!(shim.get(1, 1), Value::str("asus"));
        assert_eq!(shim.row(2), vec![3.into(), "hp".into(), 599.0.into()]);
        assert_eq!(shim.iter_rows().count(), 3);
        assert!(shim.push_row(vec![4.into(), 5.into(), 1.0.into()]).is_err());
    }

    #[test]
    fn columns_are_typed() {
        let t = sample();
        assert!(t.column(0).as_int().is_some());
        assert!(t.column(2).as_float().is_some());
        let (codes, dict, _) = t.column(1).as_str().unwrap();
        assert_eq!(codes.len(), 3);
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn gather_and_project() {
        let t = sample();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.column(1).value(0), Value::str("hp"));
        let p = t.project(&["brand"]).unwrap();
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.column(0).len(), 3);
        assert!(t.project(&["missing"]).is_err());
    }

    #[test]
    fn sort_by_column_orders_rows() {
        let t = sample();
        let s = t.sort_by_column("price").unwrap();
        assert_eq!(s.column(1).value(0), Value::str("asus"));
        assert_eq!(s.column(1).value(2), Value::str("vaio"));
    }

    #[test]
    fn key_uniqueness() {
        let t = sample();
        assert!(t.check_key_unique().is_ok());
        let dup = TableBuilder::with_key("product", t.schema().clone(), &["id"])
            .unwrap()
            .rows([
                vec![1.into(), "vaio".into(), 999.0.into()],
                vec![1.into(), "dup".into(), 1.0.into()],
            ])
            .unwrap()
            .build();
        assert!(dup.check_key_unique().is_err());
    }

    #[test]
    fn multi_column_key_uniqueness() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::new("x", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::with_key("t", schema, &["a", "b"]).unwrap();
        b.push(vec![1.into(), "l".into(), 0.0.into()]).unwrap();
        b.push(vec![1.into(), "r".into(), 0.0.into()]).unwrap();
        b.push(vec![2.into(), "l".into(), 0.0.into()]).unwrap();
        assert!(
            b.clone().build().check_key_unique().is_ok(),
            "distinct (a, b) combinations are unique"
        );
        b.push(vec![1.into(), "r".into(), 9.0.into()]).unwrap();
        let err = b.build().check_key_unique().unwrap_err();
        assert!(
            matches!(&err, StorageError::DuplicateKey(k) if k == "1,r"),
            "duplicate composite key is reported: {err}"
        );
    }

    #[test]
    fn add_column_validates_length() {
        let mut t = sample();
        assert!(t
            .add_column(
                Field::new("stock", DataType::Int),
                vec![1.into(), 2.into(), 3.into()]
            )
            .is_ok());
        assert!(t
            .add_column(Field::new("bad", DataType::Int), vec![1.into()])
            .is_err());
    }

    #[test]
    fn nulls_round_trip_through_columns() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::nullable("b", DataType::Str),
        ])
        .unwrap();
        let t = TableBuilder::new("t", schema)
            .row(vec![1.into(), Value::Null])
            .unwrap()
            .row(vec![2.into(), "x".into()])
            .unwrap()
            .build();
        assert_eq!(t.column(1).value(0), Value::Null);
        assert_eq!(t.column(0).value(0), Value::Int(1));
        assert_eq!(t.column(1).null_count(), 1);
    }
}
