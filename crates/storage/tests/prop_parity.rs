//! Semantics-parity property tests for the typed columnar engine.
//!
//! Every vectorized path (filter selection, projection, aggregation, hash
//! join, feature-style value round-trips) must agree **exactly** with a
//! `Value`-at-a-time reference evaluated through the row-compatibility API
//! (`BoundExpr::eval_predicate_at` / `eval_at`, `Table::row`) on random
//! tables of every column type, NULLs included. Dictionary codes must
//! survive `gather`/`project`/`sort_by_column` with value-level fidelity
//! and a shared (never rebuilt) dictionary.

use proptest::prelude::*;

use hyper_storage::ops::{aggregate, filter, hash_join, matching_rows, Accumulator};
use hyper_storage::plan::project;
use hyper_storage::{
    col, lit, AggExpr, AggFunc, DataType, Expr, Field, Schema, Table, TableBuilder, Value,
};

// ---------------------------------------------------------------- tables

/// One generated column: a type tag plus per-row (null?, payload) seeds.
type ColSpec = (u8, Vec<(bool, i32)>);

fn value_for(dt: DataType, null: bool, seed: i32) -> Value {
    if null {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::Int((seed % 7) as i64),
        // Small halves so Sum/Avg stay exact in f64 and comparisons hit
        // equal values often.
        DataType::Float => Value::Float((seed % 9) as f64 / 2.0),
        DataType::Bool => Value::Bool(seed % 2 == 0),
        DataType::Str => Value::str(format!("s{}", seed % 5)),
    }
}

fn dt_of(tag: u8) -> DataType {
    match tag % 4 {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Bool,
        _ => DataType::Str,
    }
}

fn build_table(specs: &[ColSpec]) -> Table {
    let rows = specs.first().map_or(0, |(_, cells)| cells.len());
    let fields: Vec<Field> = specs
        .iter()
        .enumerate()
        .map(|(i, (tag, _))| Field::nullable(format!("c{i}"), dt_of(*tag)))
        .collect();
    let mut t = TableBuilder::new("t", Schema::new(fields).unwrap());
    for r in 0..rows {
        let row: Vec<Value> = specs
            .iter()
            .map(|(tag, cells)| {
                let (null, seed) = cells[r];
                value_for(dt_of(*tag), null, seed)
            })
            .collect();
        t.push(row).unwrap();
    }
    t.build()
}

fn arb_specs(max_cols: usize, max_rows: usize) -> impl Strategy<Value = Vec<ColSpec>> {
    (1..=max_cols, 0..=max_rows).prop_flat_map(|(ncols, nrows)| {
        prop::collection::vec(
            (
                0u8..8,
                prop::collection::vec((prop::bool::ANY, 0i32..40), nrows..=nrows),
            ),
            ncols..=ncols,
        )
    })
}

// ------------------------------------------------------------ predicates

/// A well-typed random predicate over the table's columns: comparisons of
/// a column against a same-type literal (numerics may cross Int/Float),
/// IS NULL tests, IN lists, combined with AND/OR/NOT.
fn arb_predicate(specs: Vec<ColSpec>) -> impl Strategy<Value = Expr> {
    let ncols = specs.len();
    let leaf =
        (0..ncols, 0u8..6, 0i32..40, prop::bool::ANY).prop_map(move |(c, kind, seed, negated)| {
            let dt = dt_of(specs[c].0);
            let name = format!("c{c}");
            let v = value_for(dt, false, seed);
            match kind {
                0 => col(name).eq(lit(v)),
                1 => col(name).lt(lit(v)),
                2 => col(name).ge(lit(v)),
                3 => col(name).ne(lit(v)),
                4 => Expr::IsNull {
                    expr: Box::new(col(name)),
                    negated,
                },
                _ => Expr::InList {
                    expr: Box::new(col(name)),
                    list: vec![v, value_for(dt, false, seed + 1)],
                    negated,
                },
            }
        });
    // One or two leaves composed with a connective (depth ≥ 2 exercises
    // the logical kernels and NULL propagation).
    (leaf.clone(), leaf, 0u8..4).prop_map(|(a, b, joiner)| match joiner {
        0 => a.and(b),
        1 => a.or(b),
        2 => a.and(b.not()),
        _ => a,
    })
}

/// Materialized rows through the deprecated compatibility shim — this is
/// the parity suite that pins the shim's semantics to the typed paths, so
/// it deliberately keeps exercising the row API.
#[allow(deprecated)]
fn rows_of(t: &Table) -> Vec<Vec<Value>> {
    t.iter_rows().collect()
}

/// One cell through the deprecated shim (see [`rows_of`]).
#[allow(deprecated)]
fn cell(t: &Table, i: usize, c: usize) -> Value {
    t.get(i, c)
}

/// One row through the deprecated shim (see [`rows_of`]).
#[allow(deprecated)]
fn row_ref(t: &Table, i: usize) -> Vec<Value> {
    t.row(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Vectorized filter/selection agrees with the row-at-a-time reference.
    #[test]
    fn filter_matches_row_reference(
        (specs, pred) in arb_specs(3, 24)
            .prop_flat_map(|s| (Just(s.clone()), arb_predicate(s)))
    ) {
        let t = build_table(&specs);
        let bound = pred.bind(t.schema()).unwrap();
        let mut expected = Vec::new();
        for i in 0..t.num_rows() {
            if bound.eval_predicate_at(&t, i).unwrap() {
                expected.push(i);
            }
        }
        prop_assert_eq!(matching_rows(&t, &pred).unwrap(), expected.clone());
        let filtered = filter(&t, &pred).unwrap();
        prop_assert_eq!(rows_of(&filtered), rows_of(&t.gather(&expected)));
    }

    /// Vectorized projection produces exactly the values the row evaluator
    /// yields, cell by cell (strict `Value` equality).
    #[test]
    fn project_matches_row_reference(
        (specs, pred) in arb_specs(3, 20)
            .prop_flat_map(|s| (Just(s.clone()), arb_predicate(s)))
    ) {
        let t = build_table(&specs);
        // Project a plain column and the predicate (a computed boolean).
        let exprs = vec![
            (col("c0"), "a".to_string()),
            (pred, "p".to_string()),
        ];
        let out = project(&t, &exprs).unwrap();
        prop_assert_eq!(out.num_rows(), t.num_rows());
        for (e, alias) in &exprs {
            let b = e.bind(t.schema()).unwrap();
            let oc = out.column_by_name(alias).unwrap();
            for i in 0..t.num_rows() {
                prop_assert_eq!(oc.value(i), b.eval_at(&t, i).unwrap());
            }
        }
    }

    /// Vectorized group-by aggregation agrees with a `Value`-keyed,
    /// accumulator-per-group reference (same first-occurrence group order,
    /// same float accumulation order, strict value equality).
    #[test]
    fn aggregate_matches_row_reference(specs in arb_specs(2, 24)) {
        let t = build_table(&specs);
        let group_by = vec!["c0".to_string()];
        let numeric = matches!(t.schema().field(0).data_type, DataType::Int | DataType::Float);
        let mut aggs = vec![
            AggExpr::new(AggFunc::Count, None, "n"),
            AggExpr::new(AggFunc::Min, Some(col("c0")), "lo"),
            AggExpr::new(AggFunc::Max, Some(col("c0")), "hi"),
        ];
        if numeric {
            aggs.push(AggExpr::new(AggFunc::Sum, Some(col("c0")), "s"));
            aggs.push(AggExpr::new(AggFunc::Avg, Some(col("c0")), "m"));
        }
        let out = aggregate(&t, &group_by, &aggs).unwrap();

        // Reference: strict-Value grouping in first-occurrence order.
        let mut order: Vec<(Value, Vec<Accumulator>)> = Vec::new();
        for i in 0..t.num_rows() {
            let key = cell(&t, i, 0);
            let slot = match order.iter().position(|(k, _)| *k == key) {
                Some(s) => s,
                None => {
                    order.push((key.clone(), aggs.iter().map(|a| Accumulator::new(a.func)).collect()));
                    order.len() - 1
                }
            };
            for (k, a) in aggs.iter().enumerate() {
                let v = match &a.input {
                    Some(e) => e.bind(t.schema()).unwrap().eval_at(&t, i).unwrap(),
                    None => Value::Int(1),
                };
                order[slot].1[k].update(&v).unwrap();
            }
        }
        prop_assert_eq!(out.num_rows(), order.len());
        for (g, (key, accs)) in order.iter().enumerate() {
            prop_assert_eq!(cell(&out, g, 0), key.clone());
            for (k, acc) in accs.iter().enumerate() {
                prop_assert_eq!(cell(&out, g, 1 + k), acc.finish());
            }
        }
    }

    /// The typed hash join produces exactly the row multiset of a strict
    /// `Value`-equality nested-loop join; NULL keys never join.
    #[test]
    fn join_matches_nested_loop_reference(
        left in arb_specs(2, 14),
        right in arb_specs(2, 14),
    ) {
        let l = build_table(&left);
        let mut r = build_table(&right);
        // Rename right columns to avoid output collisions (keep c0 as key).
        let names: Vec<String> = (0..r.num_columns())
            .map(|i| if i == 0 { "c0".into() } else { format!("r{i}") })
            .collect();
        r = hyper_storage::plan::rename(&r, &names).unwrap();

        let joined = hash_join(&l, &r, &["c0".into()], &["c0".into()]).unwrap();

        let mut expected: Vec<Vec<Value>> = Vec::new();
        for i in 0..l.num_rows() {
            let lk = cell(&l, i, 0);
            if lk.is_null() {
                continue;
            }
            for j in 0..r.num_rows() {
                if lk == cell(&r, j, 0) {
                    let mut row = row_ref(&l, i);
                    row.extend(row_ref(&r, j).into_iter().skip(1));
                    expected.push(row);
                }
            }
        }
        let mut got = rows_of(&joined);
        got.sort();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// Dictionary codes survive gather / project / sort: values round-trip
    /// exactly and the string dictionary is shared, not rebuilt.
    #[test]
    fn dictionary_survives_gather_project_sort(
        cells in prop::collection::vec((prop::bool::ANY, 0i32..40), 0..24),
        idx_seeds in prop::collection::vec(0usize..64, 0..32),
    ) {
        let specs: Vec<ColSpec> = vec![(3, cells.clone()), (0, cells)];
        let t = build_table(&specs);
        let n = t.num_rows();
        let (_, dict, _) = t.column(0).as_str().unwrap();
        let dict_len = dict.len();

        if n > 0 {
            let idx: Vec<usize> = idx_seeds.iter().map(|s| s % n).collect();
            let g = t.gather(&idx);
            let (gcodes, gdict, _) = g.column(0).as_str().unwrap();
            prop_assert_eq!(gdict.len(), dict_len, "gather shares the dictionary");
            for (k, &i) in idx.iter().enumerate() {
                prop_assert_eq!(cell(&g, k, 0), cell(&t, i, 0));
                if !g.column(0).is_null(k) {
                    // Codes are preserved verbatim (same dictionary).
                    let (tcodes, _, _) = t.column(0).as_str().unwrap();
                    prop_assert_eq!(gcodes[k], tcodes[i]);
                }
            }
        }

        let p = t.project(&["c0"]).unwrap();
        let (_, pdict, _) = p.column(0).as_str().unwrap();
        prop_assert_eq!(pdict.len(), dict_len, "project shares the dictionary");
        for i in 0..n {
            prop_assert_eq!(cell(&p, i, 0), cell(&t, i, 0));
        }

        let s = t.sort_by_column("c0").unwrap();
        prop_assert_eq!(s.num_rows(), n);
        let mut expected: Vec<Value> = t.column(0).to_values();
        expected.sort();
        let got: Vec<Value> = s.column(0).to_values();
        prop_assert_eq!(got, expected, "sort is the Value total order");
        // Sorted rows stay aligned across columns (stable permutation).
        let mut seen = rows_of(&s);
        let mut orig = rows_of(&t);
        seen.sort();
        orig.sort();
        prop_assert_eq!(seen, orig);
    }
}
