//! Bit-determinism property tests for the morsel-parallel operators.
//!
//! Every morsel-parallel path — filter selection, expression column
//! evaluation, group-by aggregation, hash join — must be **bit-identical**
//! (`f64::to_bits`-level, dictionary codes verbatim) to the sequential
//! path, across worker counts {0, 1, 3} and morsel sizes {1 row (tiny,
//! every tail uneven), 7 rows (uneven tail), 4096 rows (huge — one
//! morsel)}, on random tables of every column type with NULLs and shared
//! string dictionaries.
//!
//! Every parallel call runs inside an installed [`hyper_trace`] context
//! (`with_trace`), so the suite also proves that phase tracing — the
//! runtime pool captures the submitter's context and attaches it on
//! worker threads — observes without participating: the traced parallel
//! result must match the *untraced* sequential reference bit for bit.

use std::sync::OnceLock;

use proptest::prelude::*;

use hyper_runtime::HyperRuntime;
use hyper_storage::morsel::eval_column_morsels;
use hyper_storage::ops::{
    aggregate, aggregate_on, hash_join, hash_join_on, matching_rows, matching_rows_on,
};
use hyper_storage::{
    col, lit, AggExpr, AggFunc, Column, DataType, Expr, Field, Schema, Table, TableBuilder, Value,
};
use hyper_trace::{with_trace, TraceTree};

/// Worker counts under test. 0 = caller-only (sequential degradation),
/// 1 = one background worker, 3 = more workers than this container has
/// cores (oversubscription must not change a single bit).
const WORKERS: [usize; 3] = [0, 1, 3];

/// Morsel sizes under test: tiny (1), uneven tail (7), huge (4096 — a
/// single morsel for these tables).
const MORSELS: [usize; 3] = [1, 7, 4096];

fn runtimes() -> &'static Vec<(usize, HyperRuntime)> {
    static POOLS: OnceLock<Vec<(usize, HyperRuntime)>> = OnceLock::new();
    POOLS.get_or_init(|| {
        WORKERS
            .iter()
            .map(|&w| (w, HyperRuntime::with_workers(w)))
            .collect()
    })
}

// ---------------------------------------------------------------- tables

type ColSpec = (u8, Vec<(bool, i32)>);

fn dt_of(tag: u8) -> DataType {
    match tag % 4 {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Bool,
        _ => DataType::Str,
    }
}

fn value_for(dt: DataType, null: bool, seed: i32) -> Value {
    if null {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::Int((seed % 7) as i64),
        DataType::Float => Value::Float((seed % 9) as f64 / 2.0),
        DataType::Bool => Value::Bool(seed % 2 == 0),
        DataType::Str => Value::str(format!("s{}", seed % 5)),
    }
}

fn build_table(specs: &[ColSpec]) -> Table {
    let rows = specs.first().map_or(0, |(_, cells)| cells.len());
    let fields: Vec<Field> = specs
        .iter()
        .enumerate()
        .map(|(i, (tag, _))| Field::nullable(format!("c{i}"), dt_of(*tag)))
        .collect();
    let mut t = TableBuilder::new("t", Schema::new(fields).unwrap());
    for r in 0..rows {
        let row: Vec<Value> = specs
            .iter()
            .map(|(tag, cells)| {
                let (null, seed) = cells[r];
                value_for(dt_of(*tag), null, seed)
            })
            .collect();
        t.push(row).unwrap();
    }
    t.build()
}

fn arb_specs(max_cols: usize, max_rows: usize) -> impl Strategy<Value = Vec<ColSpec>> {
    (1..=max_cols, 0..=max_rows).prop_flat_map(|(ncols, nrows)| {
        prop::collection::vec(
            (
                0u8..8,
                prop::collection::vec((prop::bool::ANY, 0i32..40), nrows..=nrows),
            ),
            ncols..=ncols,
        )
    })
}

fn arb_predicate(specs: Vec<ColSpec>) -> impl Strategy<Value = Expr> {
    let ncols = specs.len();
    let leaf =
        (0..ncols, 0u8..6, 0i32..40, prop::bool::ANY).prop_map(move |(c, kind, seed, negated)| {
            let dt = dt_of(specs[c].0);
            let name = format!("c{c}");
            let v = value_for(dt, false, seed);
            match kind {
                0 => col(name).eq(lit(v)),
                1 => col(name).lt(lit(v)),
                2 => col(name).ge(lit(v)),
                3 => col(name).ne(lit(v)),
                4 => Expr::IsNull {
                    expr: Box::new(col(name)),
                    negated,
                },
                _ => Expr::InList {
                    expr: Box::new(col(name)),
                    list: vec![v, value_for(dt, false, seed + 1)],
                    negated,
                },
            }
        });
    (leaf.clone(), leaf, 0u8..4).prop_map(|(a, b, joiner)| match joiner {
        0 => a.and(b),
        1 => a.or(b),
        2 => a.and(b.not()),
        _ => a,
    })
}

// --------------------------------------------------- bit-exact comparison

/// Strict bit-level column equality: same type, same null bitmap, raw
/// payload bits equal (`f64::to_bits` for floats, verbatim dictionary
/// codes for strings — not just equal string values).
fn columns_bit_identical(a: &Column, b: &Column) -> std::result::Result<(), String> {
    if a.data_type() != b.data_type() {
        return Err(format!("type {:?} != {:?}", a.data_type(), b.data_type()));
    }
    if a.len() != b.len() {
        return Err(format!("len {} != {}", a.len(), b.len()));
    }
    for i in 0..a.len() {
        if a.is_null(i) != b.is_null(i) {
            return Err(format!("null mismatch at row {i}"));
        }
    }
    match (a.data_type(), a, b) {
        (DataType::Float, _, _) => {
            let (av, _) = a.as_float().unwrap();
            let (bv, _) = b.as_float().unwrap();
            for i in 0..av.len() {
                if av[i].to_bits() != bv[i].to_bits() {
                    return Err(format!(
                        "float bits differ at row {i}: {:#018x} != {:#018x}",
                        av[i].to_bits(),
                        bv[i].to_bits()
                    ));
                }
            }
        }
        (DataType::Int, _, _) => {
            let (av, _) = a.as_int().unwrap();
            let (bv, _) = b.as_int().unwrap();
            if av != bv {
                return Err("int payloads differ".into());
            }
        }
        (DataType::Bool, _, _) => {
            let (av, _) = a.as_bool().unwrap();
            let (bv, _) = b.as_bool().unwrap();
            if av != bv {
                return Err("bool payloads differ".into());
            }
        }
        (DataType::Str, _, _) => {
            let (ac, ad, _) = a.as_str().unwrap();
            let (bc, bd, _) = b.as_str().unwrap();
            for i in 0..ac.len() {
                if a.is_null(i) {
                    continue;
                }
                if ad.get(ac[i]) != bd.get(bc[i]) {
                    return Err(format!("string mismatch at row {i}"));
                }
            }
        }
    }
    Ok(())
}

fn tables_bit_identical(a: &Table, b: &Table) -> std::result::Result<(), String> {
    if a.num_columns() != b.num_columns() {
        return Err(format!(
            "columns {} != {}",
            a.num_columns(),
            b.num_columns()
        ));
    }
    if a.num_rows() != b.num_rows() {
        return Err(format!("rows {} != {}", a.num_rows(), b.num_rows()));
    }
    for c in 0..a.num_columns() {
        columns_bit_identical(a.column(c), b.column(c))
            .map_err(|e| format!("column {c} ({}): {e}", a.schema().field(c).name))?;
    }
    Ok(())
}

// ------------------------------------------------------------------ tests

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Morsel-parallel filter selections equal the sequential selection
    /// exactly, for every worker count × morsel size.
    #[test]
    fn filter_selection_is_bit_identical(
        (specs, pred) in arb_specs(3, 24)
            .prop_flat_map(|s| (Just(s.clone()), arb_predicate(s)))
    ) {
        let t = build_table(&specs);
        let seq = matching_rows(&t, &pred);
        let trace = TraceTree::new();
        for (w, rt) in runtimes() {
            for m in MORSELS {
                let par = with_trace(&trace, || matching_rows_on(rt, &t, &pred, m));
                match (&seq, &par) {
                    (Ok(s), Ok(p)) => prop_assert_eq!(
                        s, p, "selection diverged (workers={}, morsel={})", w, m
                    ),
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(
                        false,
                        "ok/err diverged (workers={w}, morsel={m}): seq={seq:?} par={par:?}"
                    ),
                }
            }
        }
    }

    /// Morsel-parallel expression evaluation produces bit-identical
    /// columns (including NULL bitmaps and dictionary-coded strings).
    #[test]
    fn eval_column_is_bit_identical(
        (specs, pred) in arb_specs(3, 24)
            .prop_flat_map(|s| (Just(s.clone()), arb_predicate(s)))
    ) {
        let t = build_table(&specs);
        let bound = pred.bind(t.schema()).unwrap();
        let seq = bound.eval_column(&t);
        let trace = TraceTree::new();
        for (w, rt) in runtimes() {
            for m in MORSELS {
                let par = with_trace(&trace, || eval_column_morsels(rt, &bound, &t, m));
                match (&seq, &par) {
                    (Ok(s), Ok(p)) => {
                        if let Err(e) = columns_bit_identical(s, p) {
                            prop_assert!(false, "workers={w}, morsel={m}: {e}");
                        }
                    }
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(
                        false,
                        "ok/err diverged (workers={w}, morsel={m})"
                    ),
                }
            }
        }
    }

    /// Morsel-parallel aggregation (parallel key encode + input eval,
    /// sequential fold) is bit-identical: same group order, same float
    /// accumulation bits.
    #[test]
    fn aggregate_is_bit_identical(specs in arb_specs(2, 24)) {
        let t = build_table(&specs);
        let group_by = vec!["c0".to_string()];
        let numeric = matches!(t.schema().field(0).data_type, DataType::Int | DataType::Float);
        let mut aggs = vec![
            AggExpr::new(AggFunc::Count, None, "n"),
            AggExpr::new(AggFunc::Min, Some(col("c0")), "lo"),
            AggExpr::new(AggFunc::Max, Some(col("c0")), "hi"),
        ];
        if numeric {
            aggs.push(AggExpr::new(AggFunc::Sum, Some(col("c0")), "s"));
            aggs.push(AggExpr::new(AggFunc::Avg, Some(col("c0")), "m"));
        }
        let seq = aggregate(&t, &group_by, &aggs).unwrap();
        let trace = TraceTree::new();
        for (w, rt) in runtimes() {
            for m in MORSELS {
                let par = with_trace(&trace, || aggregate_on(rt, &t, &group_by, &aggs, m)).unwrap();
                if let Err(e) = tables_bit_identical(&seq, &par) {
                    prop_assert!(false, "workers={w}, morsel={m}: {e}");
                }
            }
        }
    }

    /// Morsel-parallel hash join (parallel key extraction, partitioned
    /// build, parallel probe) emits exactly the sequential row order.
    #[test]
    fn join_is_bit_identical(
        left in arb_specs(2, 14),
        right in arb_specs(2, 14),
    ) {
        let l = build_table(&left);
        let mut r = build_table(&right);
        let names: Vec<String> = (0..r.num_columns())
            .map(|i| if i == 0 { "c0".into() } else { format!("r{i}") })
            .collect();
        r = hyper_storage::plan::rename(&r, &names).unwrap();

        let on = ["c0".to_string()];
        let seq = hash_join(&l, &r, &on, &on).unwrap();
        let trace = TraceTree::new();
        for (w, rt) in runtimes() {
            for m in MORSELS {
                let par = with_trace(&trace, || hash_join_on(rt, &l, &r, &on, &on, m)).unwrap();
                if let Err(e) = tables_bit_identical(&seq, &par) {
                    prop_assert!(false, "workers={w}, morsel={m}: {e}");
                }
            }
        }
    }
}
