//! Cross-tuple effect tests: the §2.2 summary-function (ψ) feature lets a
//! price update on one set of products move the predicted ratings of
//! *competitor* products in the same category (the dashed edges of
//! Figure 2).
// These tests deliberately run through the deprecated `HyperEngine` shim:
// they double as coverage that the shim still delegates to the same
// evaluation pipeline the `HyperSession` API uses.
#![allow(deprecated)]

use hyper_core::{EngineConfig, HyperEngine};
use hyper_query::{parse_query, HypotheticalQuery, WhatIfQuery};
use hyper_storage::{DataType, Database, Field, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single-relation market where a product's rating rises when its price
/// is *below* the mean competitor price in its category:
/// `rating = 3 + (peer_mean_price − price) / 100 + noise`.
fn market_db(n: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(vec![
        Field::new("pid", DataType::Int),
        Field::new("category", DataType::Str),
        Field::new("brand", DataType::Str),
        Field::new("price", DataType::Float),
        Field::new("rating", DataType::Float),
    ])
    .unwrap();
    let mut t = Table::with_key("product", schema, &["pid"]).unwrap();

    // Generate prices first so peer means are computable.
    let cats = ["a", "b", "c", "d"];
    let brands = ["asus", "vaio", "hp"];
    let mut rows: Vec<(i64, &str, &str, f64)> = Vec::with_capacity(n);
    for i in 0..n {
        let cat = cats[rng.gen_range(0..cats.len())];
        let brand = brands[rng.gen_range(0..brands.len())];
        let price = 300.0 + 400.0 * rng.gen::<f64>();
        rows.push((i as i64, cat, brand, price));
    }
    // Peer means per category (leave-one-out).
    let mut sums: std::collections::HashMap<&str, (f64, usize)> = Default::default();
    for &(_, cat, _, price) in &rows {
        let e = sums.entry(cat).or_insert((0.0, 0));
        e.0 += price;
        e.1 += 1;
    }
    for (pid, cat, brand, price) in rows {
        let (s, c) = sums[cat];
        let peer_mean = if c > 1 {
            (s - price) / (c - 1) as f64
        } else {
            price
        };
        let rating = 3.0 + (peer_mean - price) / 100.0 + 0.2 * (rng.gen::<f64>() - 0.5);
        t.push_row(vec![
            pid.into(),
            cat.into(),
            brand.into(),
            price.into(),
            rating.into(),
        ])
        .unwrap();
    }
    let mut db = Database::new();
    db.add_table(t).unwrap();
    db
}

/// Price → rating intra-tuple, plus the dashed cross-tuple price edge
/// grouped by category.
fn market_graph() -> hyper_causal::CausalGraph {
    let mut g = hyper_causal::CausalGraph::new();
    let price = g.node("product", "price");
    let rating = g.node("product", "rating");
    g.add_edge(price, rating, hyper_causal::EdgeKind::Intra)
        .unwrap();
    g.add_edge(
        price,
        rating,
        hyper_causal::EdgeKind::SameValue {
            group_by: "category".into(),
        },
    )
    .unwrap();
    g
}

fn whatif(text: &str) -> WhatIfQuery {
    match parse_query(text).unwrap() {
        HypotheticalQuery::WhatIf(q) => q,
        _ => panic!("expected what-if"),
    }
}

#[test]
fn competitor_price_hike_helps_unchanged_products() {
    let db = market_db(4000, 5);
    let graph = market_graph();
    // Raise asus prices massively; measure ratings of NON-asus products.
    let q = whatif(
        "Use product When brand = 'asus'
         Update(price) = 300 + Pre(price)
         Output Avg(Post(rating))
         For Pre(brand) <> 'asus'",
    );
    let with_peers = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    let without_peers = HyperEngine::new(&db, Some(&graph))
        .with_config(EngineConfig {
            peer_summaries: false,
            ..EngineConfig::hyper()
        })
        .whatif(&q)
        .unwrap();
    // Without cross-tuple summaries, non-updated rows are treated as
    // unaffected: the result is exactly the observed average.
    let t = db.table("product").unwrap();
    let mut obs_sum = 0.0;
    let mut obs_n = 0usize;
    for i in 0..t.num_rows() {
        if t.get(i, 2).as_str() != Some("asus") {
            obs_sum += t.get(i, 4).as_f64().unwrap();
            obs_n += 1;
        }
    }
    let observed = obs_sum / obs_n as f64;
    assert!(
        (without_peers.value - observed).abs() < 1e-9,
        "without peers, unchanged rows keep observed ratings"
    );
    // With peer summaries, competitors benefit from asus' price hike.
    assert!(
        with_peers.value > observed + 0.05,
        "peer-aware estimate {:.3} should exceed observed {:.3}",
        with_peers.value,
        observed
    );
}

#[test]
fn peer_effect_direction_reverses_with_price_cut() {
    let db = market_db(4000, 7);
    let graph = market_graph();
    let hike = whatif(
        "Use product When brand = 'asus'
         Update(price) = 300 + Pre(price)
         Output Avg(Post(rating))
         For Pre(brand) <> 'asus'",
    );
    let cut = whatif(
        "Use product When brand = 'asus'
         Update(price) = 0.5 * Pre(price)
         Output Avg(Post(rating))
         For Pre(brand) <> 'asus'",
    );
    let engine = HyperEngine::new(&db, Some(&graph));
    let up = engine.whatif(&hike).unwrap().value;
    let down = engine.whatif(&cut).unwrap().value;
    assert!(
        up > down + 0.05,
        "competitor hike ({up:.3}) must help more than competitor cut ({down:.3})"
    );
}

#[test]
fn no_cross_tuple_edge_means_no_peer_feature() {
    let db = market_db(1000, 9);
    // Graph without the SameValue edge: peers are ignored even when the
    // config allows them.
    let mut graph = hyper_causal::CausalGraph::new();
    let price = graph.node("product", "price");
    let rating = graph.node("product", "rating");
    graph
        .add_edge(price, rating, hyper_causal::EdgeKind::Intra)
        .unwrap();
    let q = whatif(
        "Use product When brand = 'asus'
         Update(price) = 300 + Pre(price)
         Output Avg(Post(rating))
         For Pre(brand) <> 'asus'",
    );
    let r = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    // Non-updated rows unaffected → exact observed mean.
    let t = db.table("product").unwrap();
    let mut obs_sum = 0.0;
    let mut obs_n = 0usize;
    for i in 0..t.num_rows() {
        if t.get(i, 2).as_str() != Some("asus") {
            obs_sum += t.get(i, 4).as_f64().unwrap();
            obs_n += 1;
        }
    }
    assert!((r.value - obs_sum / obs_n as f64).abs() < 1e-9);
}
