//! Shared fixtures for engine integration tests.
#![allow(dead_code)] // each integration test binary uses a subset

use std::collections::HashMap;

use hyper_causal::scm::{Mechanism, Scm};
use hyper_storage::{DataType, Database, Value};

/// Binary confounded model: Z → B, Z → Y, B → Y (the canonical graph where
/// conditioning matters: the Indep baseline is biased, HypeR is not).
pub fn confounded_scm() -> Scm {
    let mut scm = Scm::new();
    scm.add_node(
        "z",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(vec![(Value::Int(0), 0.6), (Value::Int(1), 0.4)]),
    )
    .unwrap();
    let mut b = HashMap::new();
    b.insert(
        vec![Value::Int(0)],
        vec![(Value::Int(0), 0.8), (Value::Int(1), 0.2)],
    );
    b.insert(
        vec![Value::Int(1)],
        vec![(Value::Int(0), 0.3), (Value::Int(1), 0.7)],
    );
    scm.add_node(
        "b",
        DataType::Int,
        &["z"],
        Mechanism::DiscreteCpd {
            table: b,
            default: vec![(Value::Int(0), 1.0)],
        },
    )
    .unwrap();
    let mut y = HashMap::new();
    for (z, bv, p1) in [(0, 0, 0.1), (0, 1, 0.5), (1, 0, 0.4), (1, 1, 0.9)] {
        y.insert(
            vec![Value::Int(z), Value::Int(bv)],
            vec![(Value::Int(0), 1.0 - p1), (Value::Int(1), p1)],
        );
    }
    scm.add_node(
        "y",
        DataType::Int,
        &["z", "b"],
        Mechanism::DiscreteCpd {
            table: y,
            default: vec![(Value::Int(0), 1.0)],
        },
    )
    .unwrap();
    scm
}

/// Sample the confounded SCM into a single-relation database named `d`.
pub fn confounded_db(n: usize, seed: u64) -> (Database, Scm, hyper_causal::CausalGraph) {
    let scm = confounded_scm();
    let table = scm.sample("d", n, seed).unwrap();
    let mut db = Database::new();
    db.add_table(table).unwrap();
    let graph = scm.to_causal_graph("d");
    (db, scm, graph)
}

/// A 5-attribute discrete model with two confounders and a mediator-free
/// structure, for richer how-to tests:
/// `age → income, edu → income, edu → status, income → credit, status → credit`.
pub fn credit_scm() -> Scm {
    let mut scm = Scm::new();
    scm.add_node(
        "age",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(vec![
            (Value::Int(0), 0.3),
            (Value::Int(1), 0.4),
            (Value::Int(2), 0.3),
        ]),
    )
    .unwrap();
    scm.add_node(
        "edu",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(vec![(Value::Int(0), 0.5), (Value::Int(1), 0.5)]),
    )
    .unwrap();
    let mut income = HashMap::new();
    for a in 0..3i64 {
        for e in 0..2i64 {
            let p_hi = 0.15 + 0.2 * a as f64 + 0.25 * e as f64;
            income.insert(
                vec![Value::Int(a), Value::Int(e)],
                vec![(Value::Int(0), 1.0 - p_hi), (Value::Int(1), p_hi)],
            );
        }
    }
    scm.add_node(
        "income",
        DataType::Int,
        &["age", "edu"],
        Mechanism::DiscreteCpd {
            table: income,
            default: vec![(Value::Int(0), 1.0)],
        },
    )
    .unwrap();
    let mut status = HashMap::new();
    for e in 0..2i64 {
        let p_hi = 0.3 + 0.4 * e as f64;
        status.insert(
            vec![Value::Int(e)],
            vec![(Value::Int(0), 1.0 - p_hi), (Value::Int(1), p_hi)],
        );
    }
    scm.add_node(
        "status",
        DataType::Int,
        &["edu"],
        Mechanism::DiscreteCpd {
            table: status,
            default: vec![(Value::Int(0), 1.0)],
        },
    )
    .unwrap();
    let mut credit = HashMap::new();
    for i in 0..2i64 {
        for s in 0..2i64 {
            let p_good = 0.2 + 0.35 * i as f64 + 0.3 * s as f64;
            credit.insert(
                vec![Value::Int(i), Value::Int(s)],
                vec![
                    (Value::str("Bad"), 1.0 - p_good),
                    (Value::str("Good"), p_good),
                ],
            );
        }
    }
    scm.add_node(
        "credit",
        DataType::Str,
        &["income", "status"],
        Mechanism::DiscreteCpd {
            table: credit,
            default: vec![(Value::str("Bad"), 1.0)],
        },
    )
    .unwrap();
    scm
}

/// Sample the credit SCM into a database named `d`.
pub fn credit_db(n: usize, seed: u64) -> (Database, Scm, hyper_causal::CausalGraph) {
    let scm = credit_scm();
    let table = scm.sample("d", n, seed).unwrap();
    let mut db = Database::new();
    db.add_table(table).unwrap();
    let graph = scm.to_causal_graph("d");
    (db, scm, graph)
}
