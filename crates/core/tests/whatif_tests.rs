//! What-if engine integration tests: the estimator must track the exact
//! possible-world oracle, the variants must behave as the paper describes
//! (Fig. 10: HypeR ≈ ground truth, Indep biased by confounding).
// These tests deliberately run through the deprecated `HyperEngine` shim:
// they double as coverage that the shim still delegates to the same
// evaluation pipeline the `HyperSession` API uses.
#![allow(deprecated)]

mod common;

use common::{confounded_db, credit_db};
use hyper_core::{exact_whatif, EngineConfig, HyperEngine};
use hyper_query::{parse_query, HypotheticalQuery, WhatIfQuery};

fn whatif(text: &str) -> WhatIfQuery {
    match parse_query(text).unwrap() {
        HypotheticalQuery::WhatIf(q) => q,
        _ => panic!("expected what-if"),
    }
}

const N: usize = 20_000;

#[test]
fn estimator_tracks_oracle_on_count_query() {
    let (db, scm, graph) = confounded_db(N, 7);
    let q = whatif("Use d Update(b) = 1 Output Count(Post(y) = 1)");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let engine = HyperEngine::new(&db, Some(&graph));
    let est = engine.whatif(&q).unwrap();
    // Exact interventional: P(y=1 | do(b=1)) = 0.66 → count ≈ 0.66·N.
    let rel_err = (est.value - exact).abs() / exact;
    assert!(
        rel_err < 0.05,
        "estimate {} vs oracle {exact} (rel err {rel_err:.3})",
        est.value
    );
    assert!((exact / N as f64 - 0.66).abs() < 0.01);
}

#[test]
fn indep_baseline_is_confounded() {
    let (db, scm, graph) = confounded_db(N, 11);
    let q = whatif("Use d Update(b) = 1 Output Count(Post(y) = 1)");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();

    let hyper = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    let indep = HyperEngine::new(&db, None)
        .with_config(EngineConfig::indep())
        .whatif(&q)
        .unwrap();

    let hyper_err = (hyper.value - exact).abs() / exact;
    let indep_err = (indep.value - exact).abs() / exact;
    // Indep estimates P(y=1 | b=1) ≈ 0.7224 instead of 0.66: ~9.5% high.
    assert!(hyper_err < 0.05, "HypeR err {hyper_err:.3}");
    assert!(
        indep_err > 0.05,
        "Indep must be visibly biased, err {indep_err:.3}"
    );
    assert!(indep.value > hyper.value, "confounding inflates Indep here");
}

#[test]
fn nb_variant_matches_hyper_when_all_attrs_are_safe() {
    // In the confounded model, conditioning on everything except b, y is
    // exactly {z} — the true backdoor set — so NB agrees with HypeR.
    let (db, scm, graph) = confounded_db(N, 13);
    let q = whatif("Use d Update(b) = 1 Output Count(Post(y) = 1)");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let nb = HyperEngine::new(&db, None)
        .with_config(EngineConfig::hyper_nb())
        .whatif(&q)
        .unwrap();
    let err = (nb.value - exact).abs() / exact;
    assert!(err < 0.05, "NB err {err:.3}");
    assert_eq!(nb.backdoor, vec!["z".to_string()]);
    let hyper = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    assert_eq!(hyper.backdoor, vec!["z".to_string()]);
}

#[test]
fn sampled_variant_stays_accurate() {
    let (db, scm, graph) = confounded_db(N, 17);
    let q = whatif("Use d Update(b) = 1 Output Count(Post(y) = 1)");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let sampled = HyperEngine::new(&db, Some(&graph))
        .with_config(EngineConfig::hyper_sampled(4_000))
        .whatif(&q)
        .unwrap();
    assert_eq!(sampled.trained_rows, 4_000);
    let err = (sampled.value - exact).abs() / exact;
    assert!(err < 0.08, "sampled err {err:.3}");
}

#[test]
fn when_clause_restricts_update_set() {
    let (db, scm, graph) = confounded_db(N, 19);
    // Update only z=0 rows; z=1 rows keep observational behaviour.
    let q = whatif("Use d When z = 0 Update(b) = 1 Output Count(Post(y) = 1)");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let est = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    let rel = (est.value - exact).abs() / exact;
    assert!(rel < 0.05, "estimate {} vs oracle {exact}", est.value);
    // The oracle itself: z=0 rows contribute P(y=1|z=0,do(b=1)) = 0.5 each;
    // z=1 rows contribute their observed y.
    assert!(est.n_updated_rows < est.n_view_rows);
}

#[test]
fn for_clause_pre_conditions_select_scope() {
    let (db, scm, graph) = confounded_db(N, 23);
    let q = whatif("Use d Update(b) = 1 Output Count(Post(y) = 1) For Pre(z) = 1");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let est = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    // All scoped rows have z=1: P(y=1 | z=1, do(b=1)) = 0.9.
    let n_z1 = est.n_scope_rows as f64;
    assert!((exact / n_z1 - 0.9).abs() < 0.02);
    let rel = (est.value - exact).abs() / exact;
    assert!(rel < 0.05);
}

#[test]
fn avg_aggregate_tracks_oracle() {
    let (db, scm, graph) = credit_db(N, 29);
    let q = whatif("Use d Update(status) = 1 Output Avg(Post(income))");
    // income is NOT a descendant of status → avg income unchanged.
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let est = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    assert!(
        (est.value - exact).abs() < 0.03,
        "estimate {} vs oracle {exact}",
        est.value
    );
}

#[test]
fn count_on_string_outcome() {
    let (db, scm, graph) = credit_db(N, 31);
    let q = whatif("Use d Update(status) = 1 Output Count(Post(credit) = 'Good')");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let est = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    let rel = (est.value - exact).abs() / exact;
    assert!(rel < 0.05, "estimate {} vs oracle {exact}", est.value);
}

#[test]
fn deterministic_path_when_post_refers_to_updated_attr() {
    let (db, _, graph) = confounded_db(1000, 37);
    // Post(b) is fully determined by the update: no estimation needed.
    let q = whatif("Use d Update(b) = 1 Output Count(Post(b) = 1)");
    let est = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    assert_eq!(est.value, 1000.0);
    assert_eq!(est.trained_rows, 0, "deterministic fast path");
}

#[test]
fn count_star_with_post_free_for_is_plain_count() {
    let (db, _, graph) = confounded_db(1000, 41);
    let q = whatif("Use d Update(b) = 1 Output Count(*) For Pre(z) = 0");
    let est = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    let z0 = db
        .table("d")
        .unwrap()
        .column_by_name("z")
        .unwrap()
        .iter()
        .filter(|v| *v == hyper_storage::Value::Int(0))
        .count();
    assert_eq!(est.value, z0 as f64);
}

#[test]
fn scale_and_shift_updates_apply() {
    let (db, _, graph) = confounded_db(500, 43);
    let q = whatif("Use d Update(b) = 2 * Pre(b) Output Avg(Post(b))");
    let est = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    let mean_b: f64 = db
        .table("d")
        .unwrap()
        .column_by_name("b")
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .sum::<f64>()
        / 500.0;
    assert!((est.value - 2.0 * mean_b).abs() < 1e-9);
}

#[test]
fn unknown_attribute_is_a_validation_error() {
    let (db, _, graph) = confounded_db(100, 47);
    let q = whatif("Use d Update(ghost) = 1 Output Count(Post(y) = 1)");
    assert!(HyperEngine::new(&db, Some(&graph)).whatif(&q).is_err());
}

#[test]
fn from_graph_mode_without_graph_errors() {
    let (db, _, _) = confounded_db(100, 53);
    let q = whatif("Use d Update(b) = 1 Output Count(Post(y) = 1)");
    let err = HyperEngine::new(&db, None).whatif(&q).unwrap_err();
    assert!(matches!(err, hyper_core::EngineError::Causal(_)));
}

#[test]
fn engine_execute_dispatches_by_query_kind() {
    let (db, _, graph) = confounded_db(2000, 59);
    let engine = HyperEngine::new(&db, Some(&graph));
    let out = engine
        .execute("Use d Update(b) = 1 Output Count(Post(y) = 1)")
        .unwrap();
    assert!(matches!(out, hyper_core::QueryOutcome::WhatIf(_)));
}

#[test]
fn block_decomposed_evaluation_matches_monolithic() {
    // Proposition 1: evaluating per independent block and recombining with
    // g = Sum gives the same result as the single pass, for every
    // decomposable aggregate.
    let (db, _, graph) = confounded_db(6000, 61);
    for query in [
        "Use d Update(b) = 1 Output Count(Post(y) = 1)",
        "Use d Update(b) = 1 Output Sum(Post(y))",
        "Use d Update(b) = 1 Output Avg(Post(y)) For Pre(z) = 0",
    ] {
        let q = whatif(query);
        let mono = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
        let blocked = HyperEngine::new(&db, Some(&graph))
            .with_config(EngineConfig {
                use_blocks: true,
                ..EngineConfig::hyper()
            })
            .whatif(&q)
            .unwrap();
        assert!(
            (mono.value - blocked.value).abs() < 1e-9,
            "{query}: monolithic {} vs blocked {}",
            mono.value,
            blocked.value
        );
    }
}

#[test]
fn linear_estimator_tracks_oracle_on_discrete_model() {
    let (db, scm, graph) = confounded_db(N, 67);
    let q = whatif("Use d Update(b) = 1 Output Count(Post(y) = 1)");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let linear = HyperEngine::new(&db, Some(&graph))
        .with_config(EngineConfig {
            estimator: hyper_core::EstimatorKind::Linear,
            ..EngineConfig::hyper()
        })
        .whatif(&q)
        .unwrap();
    // With binary z and b, the saturated linear model is… not saturated
    // (no interaction term), but the adjustment is close on this model.
    let rel = (linear.value - exact).abs() / exact;
    assert!(rel < 0.08, "linear estimator err {rel:.3}");
}

#[test]
fn multi_update_tracks_oracle() {
    // Update two causally independent attributes simultaneously.
    let (db, scm, graph) = credit_db(N, 71);
    let q = whatif(
        "Use d Update(income) = 1 And Update(status) = 1
         Output Count(Post(credit) = 'Good')",
    );
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let est = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    let rel = (est.value - exact).abs() / exact;
    assert!(rel < 0.05, "estimate {} vs oracle {exact}", est.value);
}

#[test]
fn multi_update_on_connected_attrs_rejected() {
    // edu → income: connected, so a joint update must be rejected.
    let (db, _, graph) = credit_db(1000, 73);
    let q = whatif(
        "Use d Update(edu) = 1 And Update(income) = 1
         Output Count(Post(credit) = 'Good')",
    );
    let err = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap_err();
    assert!(matches!(err, hyper_core::EngineError::Unsupported(_)));
}

#[test]
fn avg_with_post_condition_in_for_tracks_oracle() {
    let (db, scm, graph) = confounded_db(N, 79);
    // Average of y over rows whose post-update y is 1 is trivially 1 — use
    // the reverse: average of z over rows with post y = 1? z isn't post.
    // Instead: Avg(Post(y)) restricted by a post condition on y is a
    // degenerate check; use Sum with a post condition.
    let q = whatif("Use d Update(b) = 1 Output Sum(Post(y)) For Post(y) = 1");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let est = HyperEngine::new(&db, Some(&graph)).whatif(&q).unwrap();
    let rel = (est.value - exact).abs() / exact.max(1.0);
    assert!(rel < 0.05, "estimate {} vs oracle {exact}", est.value);
}

#[test]
fn cells_estimator_is_nearly_exact_on_discrete_data() {
    // The cell estimator IS the empirical adjustment formula: on discrete
    // data it should match the oracle even more tightly than the forest.
    let (db, scm, graph) = confounded_db(N, 83);
    let q = whatif("Use d Update(b) = 1 Output Count(Post(y) = 1)");
    let exact = exact_whatif(&scm, db.table("d").unwrap(), &q).unwrap();
    let cells = HyperEngine::new(&db, Some(&graph))
        .with_config(EngineConfig {
            estimator: hyper_core::EstimatorKind::Cells,
            ..EngineConfig::hyper()
        })
        .whatif(&q)
        .unwrap();
    let rel = (cells.value - exact).abs() / exact;
    assert!(
        rel < 0.02,
        "cells estimator err {rel:.4} (should be ~exact)"
    );
}

#[test]
fn cells_estimator_handles_unseen_update_values() {
    // Setting b to a value never observed jointly with some z: the marginal
    // fallback must keep the estimate finite and in range.
    let (db, _, graph) = confounded_db(2000, 89);
    let q = whatif("Use d Update(b) = 7 Output Count(Post(y) = 1)");
    let cells = HyperEngine::new(&db, Some(&graph))
        .with_config(EngineConfig {
            estimator: hyper_core::EstimatorKind::Cells,
            ..EngineConfig::hyper()
        })
        .whatif(&q)
        .unwrap();
    assert!(cells.value >= 0.0 && cells.value <= 2000.0);
}

#[test]
fn budgeted_training_streams_and_matches_resident() {
    // A 1-byte budget forces every forest training through the streaming
    // two-pass layout; the what-if value must be bit-identical to the
    // resident trainer's, and the session counters must show the reroute.
    use hyper_core::HyperSession;
    use std::sync::Arc;
    let (db, _, graph) = confounded_db(N, 29);
    let db = Arc::new(db);
    let graph = Arc::new(graph);
    let q = whatif("Use d Update(b) = 1 Output Count(Post(y) = 1)");

    let resident = HyperSession::builder(Arc::clone(&db))
        .graph(Arc::clone(&graph))
        .share_artifacts(false)
        .build();
    let streamed = HyperSession::builder(db)
        .graph(graph)
        .share_artifacts(false)
        .train_budget_bytes(1)
        .build();

    let a = resident.whatif(&q).unwrap();
    let b = streamed.whatif(&q).unwrap();
    assert_eq!(
        a.value.to_bits(),
        b.value.to_bits(),
        "streamed training must be bit-identical to resident"
    );
    assert_eq!(b.trained_rows, N);

    let stats = streamed.stats();
    assert_eq!(stats.trainings_streamed, 1);
    // Two binner passes, each over at least ⌈N / morsel⌉ chunks.
    assert!(stats.train_chunks_streamed >= 2 * (N as u64 / 4096));
    assert!(stats.train_peak_resident_bytes > 0);
    assert_eq!(resident.stats().trainings_streamed, 0);
}
