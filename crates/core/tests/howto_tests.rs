//! How-to engine integration tests: the IP optimizer must agree with the
//! exhaustive Opt-HowTo baseline (§5.4), respect Limit constraints, and
//! support the lexicographic multi-objective extension.
// These tests deliberately run through the deprecated `HyperEngine` shim:
// they double as coverage that the shim still delegates to the same
// evaluation pipeline the `HyperSession` API uses.
#![allow(deprecated)]

mod common;

use common::credit_db;
use hyper_core::{EngineConfig, HowToOptions, HyperEngine};
use hyper_query::{parse_query, HowToQuery, HypotheticalQuery, UpdateFunc};

fn howto(text: &str) -> HowToQuery {
    match parse_query(text).unwrap() {
        HypotheticalQuery::HowTo(q) => q,
        _ => panic!("expected how-to"),
    }
}

const N: usize = 8_000;

#[test]
fn ip_matches_bruteforce_optimum() {
    let (db, _, graph) = credit_db(N, 3);
    // Maximize average income by updating its causes age/edu.
    let q = howto("Use d HowToUpdate age, edu ToMaximize Avg(Post(income))");
    let engine = HyperEngine::new(&db, Some(&graph)).with_howto_options(HowToOptions {
        buckets: 3,
        max_attrs_updated: None,
    });
    let ip = engine.howto(&q).unwrap();
    let brute = engine.howto_bruteforce(&q).unwrap();
    assert!(
        (ip.objective - brute.objective).abs() < 1e-6,
        "IP {} vs brute force {}",
        ip.objective,
        brute.objective
    );
    // Setting age and edu to their maxima maximizes income probability.
    assert_eq!(ip.chosen.len(), 2);
    assert!(ip.objective > ip.baseline);
}

#[test]
fn budget_of_one_attribute_is_respected() {
    let (db, _, graph) = credit_db(N, 5);
    let q = howto("Use d HowToUpdate age, edu ToMaximize Avg(Post(income))");
    let engine = HyperEngine::new(&db, Some(&graph)).with_howto_options(HowToOptions {
        buckets: 3,
        max_attrs_updated: Some(1),
    });
    let ip = engine.howto(&q).unwrap();
    assert_eq!(ip.chosen.len(), 1);
    let brute = engine.howto_bruteforce(&q).unwrap();
    assert!((ip.objective - brute.objective).abs() < 1e-6);
    // edu has the larger coefficient on income (0.25 vs 0.2 per level), but
    // age spans 3 levels (max effect 0.4): age to its max wins.
    assert!(ip.chosen[0].attr.eq_ignore_ascii_case("age"));
}

#[test]
fn limit_in_set_restricts_candidates() {
    let (db, _, graph) = credit_db(N, 7);
    let q = howto(
        "Use d HowToUpdate edu Limit Post(edu) In (0)
         ToMaximize Avg(Post(income))",
    );
    let engine = HyperEngine::new(&db, Some(&graph));
    let r = engine.howto(&q).unwrap();
    assert_eq!(r.candidates, 1);
    // Forcing edu to 0 can only hurt average income: optimizer keeps the
    // best between no-change (0 delta) and the forced candidate.
    assert!(r.objective <= r.baseline + 1e-9 || r.chosen.is_empty());
}

#[test]
fn range_limit_bounds_candidates() {
    let (db, _, graph) = credit_db(N, 11);
    let q = howto(
        "Use d HowToUpdate age Limit 0 <= Post(age) <= 1
         ToMaximize Avg(Post(income))",
    );
    let engine = HyperEngine::new(&db, Some(&graph)).with_howto_options(HowToOptions {
        buckets: 4,
        max_attrs_updated: None,
    });
    let r = engine.howto(&q).unwrap();
    for u in &r.chosen {
        let UpdateFunc::Set(v) = &u.func else {
            panic!()
        };
        let x = v.as_f64().unwrap();
        assert!((0.0..=1.0).contains(&x), "candidate {x} out of range");
    }
}

#[test]
fn minimization_direction() {
    let (db, _, graph) = credit_db(N, 13);
    let q = howto("Use d HowToUpdate age, edu ToMinimize Avg(Post(income))");
    let engine = HyperEngine::new(&db, Some(&graph)).with_howto_options(HowToOptions {
        buckets: 3,
        max_attrs_updated: None,
    });
    let r = engine.howto(&q).unwrap();
    assert!(r.objective <= r.baseline + 1e-9);
    let brute = engine.howto_bruteforce(&q).unwrap();
    assert!((r.objective - brute.objective).abs() < 1e-6);
}

#[test]
fn lexicographic_two_objectives() {
    let (db, _, graph) = credit_db(N, 17);
    // First maximize income, then (subject to that) maximize status.
    let q1 = howto("Use d HowToUpdate age, edu ToMaximize Avg(Post(income))");
    let q2 = howto("Use d HowToUpdate age, edu ToMaximize Avg(Post(status))");
    let engine = HyperEngine::new(&db, Some(&graph)).with_howto_options(HowToOptions {
        buckets: 3,
        max_attrs_updated: None,
    });
    let lex = engine.howto_lexicographic(&[q1.clone(), q2]).unwrap();
    assert_eq!(lex.achieved.len(), 2);
    // The primary objective must match the single-objective optimum. The
    // lexicographic solver may pick a different tie-breaking update set, so
    // compare jointly-evaluated values with a small relative tolerance.
    let single = engine.howto(&q1).unwrap();
    let rel = (lex.achieved[0] - single.objective).abs() / single.objective.abs().max(1e-9);
    assert!(
        rel < 0.02,
        "lexicographic primary {} vs single {}",
        lex.achieved[0],
        single.objective
    );
}

#[test]
fn lexicographic_rejects_mismatched_scaffolding() {
    let (db, _, graph) = credit_db(1000, 19);
    let q1 = howto("Use d HowToUpdate age ToMaximize Avg(Post(income))");
    let q2 = howto("Use d HowToUpdate edu ToMaximize Avg(Post(status))");
    let engine = HyperEngine::new(&db, Some(&graph));
    assert!(engine.howto_lexicographic(&[q1, q2]).is_err());
}

#[test]
fn render_reports_no_change_attributes() {
    let (db, _, graph) = credit_db(N, 23);
    let q = howto("Use d HowToUpdate age, edu ToMaximize Avg(Post(income))");
    let engine = HyperEngine::new(&db, Some(&graph)).with_howto_options(HowToOptions {
        buckets: 2,
        max_attrs_updated: Some(1),
    });
    let r = engine.howto(&q).unwrap();
    let rendered = r.render(&["age".into(), "edu".into()]);
    assert!(rendered.contains("no change"), "{rendered}");
}

#[test]
fn objective_attr_must_not_be_updated() {
    let (db, _, graph) = credit_db(1000, 29);
    let q = howto("Use d HowToUpdate income ToMaximize Avg(Post(income))");
    assert!(HyperEngine::new(&db, Some(&graph)).howto(&q).is_err());
}

#[test]
fn indep_config_changes_howto_choice_or_value() {
    // Not a strict invariant, but the configs must at least run end-to-end
    // and produce a well-formed result.
    let (db, _, graph) = credit_db(N, 31);
    let q = howto("Use d HowToUpdate status ToMaximize Count(Post(credit) = 'Good')");
    let hyper = HyperEngine::new(&db, Some(&graph)).howto(&q).unwrap();
    let indep = HyperEngine::new(&db, None)
        .with_config(EngineConfig::indep())
        .howto(&q)
        .unwrap();
    assert!(hyper.objective >= hyper.baseline);
    assert!(indep.objective >= indep.baseline);
}
