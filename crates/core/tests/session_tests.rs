//! Session-layer integration tests: prepared queries must hit the view and
//! estimator caches on re-execution, batch execution must agree exactly
//! with sequential execution, caching must not change any result, and the
//! shared cache must be safe to hammer from many threads.

mod common;

use std::sync::Arc;

use common::{confounded_db, credit_db};
use hyper_core::{CacheBudget, EngineConfig, HowToOptions, HyperSession, Provenance, QueryOutcome};
use hyper_query::{Bindings, HExpr, WhatIf};

const WHATIF: &str = "Use d Update(b) = 1 Output Count(Post(y) = 1)";

#[test]
fn second_execution_of_a_prepared_whatif_is_all_cache_hits() {
    let (db, _, graph) = confounded_db(800, 7);
    let session = HyperSession::builder(db).graph(graph).build();

    let prepared = session.prepare(WHATIF).unwrap();
    let after_prepare = session.stats();
    assert_eq!(after_prepare.view_misses, 1, "prepare builds the view once");
    assert_eq!(after_prepare.estimator_misses, 0, "prepare does not train");
    assert_eq!(after_prepare.queries_prepared, 1);

    let first = prepared.execute_whatif().unwrap();
    let mid = session.stats();
    assert_eq!(mid.view_misses, 1, "execution reuses the prepared view");
    assert_eq!(mid.estimator_misses, 1, "first execution trains once");
    assert_eq!(mid.estimator_hits, 0);

    let second = prepared.execute_whatif().unwrap();
    let done = session.stats();
    assert_eq!(second.value, first.value, "cached estimator, same answer");
    assert_eq!(done.view_misses, 1, "second execution builds no view");
    assert_eq!(done.estimator_misses, 1, "second execution trains nothing");
    assert!(
        done.estimator_hits > 0,
        "second execution hits the estimator cache"
    );
    assert_eq!(done.views_cached, 1);
    assert_eq!(done.estimators_cached, 1);
    assert_eq!(done.queries_executed, 2);
}

#[test]
fn ad_hoc_text_shares_the_prepared_query_caches() {
    let (db, _, graph) = confounded_db(600, 11);
    let session = HyperSession::builder(db).graph(graph).build();

    let prepared = session.prepare(WHATIF).unwrap();
    let a = prepared.execute_whatif().unwrap();
    // The same query as ad-hoc text resolves to the same artifacts.
    let b = session.whatif_text(WHATIF).unwrap();
    assert_eq!(a.value, b.value);
    let stats = session.stats();
    assert_eq!(stats.view_misses, 1);
    assert_eq!(stats.estimator_misses, 1);
    assert!(stats.view_hits >= 1);
    assert!(stats.estimator_hits >= 1);
}

#[test]
fn caching_does_not_change_results() {
    let (db, _, graph) = confounded_db(700, 3);
    // Uncached path (single-shot free function via the deprecated shim).
    #[allow(deprecated)]
    let uncached = hyper_core::HyperEngine::new(&db, Some(&graph))
        .whatif_text(WHATIF)
        .unwrap();
    // Cached path, executed twice (second run exercises the hit path).
    let session = HyperSession::builder(db).graph(graph).build();
    let c1 = session.whatif_text(WHATIF).unwrap();
    let c2 = session.whatif_text(WHATIF).unwrap();
    assert_eq!(
        uncached.value, c1.value,
        "cache must be semantically invisible"
    );
    assert_eq!(c1.value, c2.value);
    assert_eq!(uncached.backdoor, c1.backdoor);
}

#[test]
fn execute_batch_matches_sequential_execution_exactly() {
    let (db, _, graph) = credit_db(900, 5);
    let queries: Vec<String> = vec![
        "Use d Update(status) = 1 Output Count(Post(credit) = 'Good')".into(),
        "Use d Update(income) = 1 Output Count(Post(credit) = 'Good')".into(),
        "Use d When edu = 0 Update(status) = 1 Output Count(Post(credit) = 'Good')".into(),
        "Use d Update(status) = 0 Output Count(Post(credit) = 'Bad')".into(),
        "Use d Update(income) = 0 Output Count(Post(credit) = 'Good') For Pre(age) = 1".into(),
        // Repeats: exercise cache hits inside the batch itself.
        "Use d Update(status) = 1 Output Count(Post(credit) = 'Good')".into(),
    ];

    // Isolated sessions: this test pins down *local* cache accounting
    // (cross-session sharing has its own suite in shared_runtime_tests).
    let sequential_session = HyperSession::builder(db.clone())
        .graph(graph.clone())
        .share_artifacts(false)
        .build();
    let sequential: Vec<f64> = queries
        .iter()
        .map(|q| match sequential_session.execute(q).unwrap() {
            QueryOutcome::WhatIf(r) => r.value,
            QueryOutcome::HowTo(_) => unreachable!(),
        })
        .collect();

    let batch_session = HyperSession::builder(db)
        .graph(graph)
        .share_artifacts(false)
        .build();
    let batch = batch_session.execute_batch(&queries);
    assert_eq!(batch.len(), queries.len());
    for (i, (seq, out)) in sequential.iter().zip(&batch).enumerate() {
        match out {
            Ok(QueryOutcome::WhatIf(r)) => {
                assert_eq!(
                    r.value, *seq,
                    "query {i} diverged between batch and sequential"
                )
            }
            other => panic!("query {i}: unexpected outcome {other:?}"),
        }
    }
    // All six queries share one relevant view.
    let stats = batch_session.stats();
    assert_eq!(stats.view_misses, 1);
    assert_eq!(stats.queries_executed, queries.len() as u64);
}

#[test]
fn batch_reports_per_query_errors_without_failing_the_rest() {
    let (db, _, graph) = confounded_db(300, 2);
    let session = HyperSession::builder(db).graph(graph).build();
    let out = session.execute_batch(&[
        WHATIF,
        "Use d utter nonsense",
        "Use ghost_table Update(b) = 1 Output Count(*)",
    ]);
    assert!(out[0].is_ok());
    assert!(out[1].is_err(), "parse error surfaces in its slot");
    assert!(out[2].is_err(), "unknown table surfaces in its slot");
}

#[test]
fn concurrent_prepared_executions_agree() {
    let (db, _, graph) = confounded_db(500, 13);
    let session = HyperSession::builder(db).graph(graph).build();
    let prepared = session.prepare(WHATIF).unwrap();
    let reference = prepared.execute_whatif().unwrap().value;

    let prepared = Arc::new(prepared);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let p = Arc::clone(&prepared);
            scope.spawn(move || {
                let r = p.execute_whatif().unwrap();
                assert_eq!(r.value, reference);
            });
        }
    });
    let stats = session.stats();
    assert_eq!(
        stats.estimator_misses, 1,
        "one training even under contention"
    );
    assert!(stats.estimator_hits >= 8);
}

#[test]
fn cold_concurrent_identical_queries_build_each_artifact_once() {
    // Eight copies of the same query hitting an empty cache from parallel
    // workers: the single-flight slots must hand seven of them the one
    // view/estimator the eighth builds.
    let (db, _, graph) = confounded_db(600, 17);
    let session = HyperSession::builder(db).graph(graph).build();
    let queries = vec![WHATIF; 8];
    let out = session.execute_batch(&queries);
    let mut values = Vec::new();
    for o in out {
        match o.unwrap() {
            QueryOutcome::WhatIf(r) => values.push(r.value),
            QueryOutcome::HowTo(_) => unreachable!(),
        }
    }
    assert!(
        values.windows(2).all(|w| w[0] == w[1]),
        "all equal: {values:?}"
    );
    let stats = session.stats();
    assert_eq!(
        stats.view_misses, 1,
        "view built exactly once under contention"
    );
    assert_eq!(stats.estimator_misses, 1, "estimator trained exactly once");
    assert_eq!(stats.estimator_hits, 7);
}

#[test]
fn howto_through_a_session_reuses_one_view_and_matches_the_shim() {
    let (db, _, graph) = credit_db(800, 9);
    let text = "Use d HowToUpdate status, income ToMaximize Count(Post(credit) = 'Good')";
    let opts = HowToOptions {
        buckets: 3,
        max_attrs_updated: Some(1),
    };

    #[allow(deprecated)]
    let uncached = hyper_core::HyperEngine::new(&db, Some(&graph))
        .with_howto_options(opts.clone())
        .howto_text(text)
        .unwrap();

    let session = HyperSession::builder(db)
        .graph(graph)
        .howto_options(opts)
        .build();
    let cached = session.howto_text(text).unwrap();
    assert_eq!(cached.objective, uncached.objective);
    assert_eq!(cached.baseline, uncached.baseline);
    assert_eq!(cached.chosen.len(), uncached.chosen.len());

    let stats = session.stats();
    assert_eq!(
        stats.view_misses, 1,
        "all candidate what-ifs share the session's relevant view"
    );
    assert!(stats.view_hits as usize >= cached.whatif_evals - 1);

    // Re-running the same how-to hits the per-candidate estimator cache.
    let before = session.stats().estimator_misses;
    let rerun = session.howto_text(text).unwrap();
    assert_eq!(rerun.objective, cached.objective);
    assert_eq!(
        session.stats().estimator_misses,
        before,
        "second how-to trains no new estimators"
    );
}

#[test]
fn block_decomposition_is_computed_once() {
    let (db, _, graph) = confounded_db(200, 1);
    let session = HyperSession::builder(db).graph(graph).build();
    let a = session.block_decomposition().unwrap();
    let b = session.block_decomposition().unwrap();
    assert!(Arc::ptr_eq(&a, &b), "same shared decomposition");
    let stats = session.stats();
    assert_eq!(stats.block_misses, 1);
    assert!(stats.block_hits >= 1);
}

#[test]
fn sessions_with_different_configs_do_not_share_estimators() {
    let (db, _, graph) = confounded_db(600, 21);
    let session = HyperSession::builder(db)
        .graph(graph)
        .config(EngineConfig::hyper())
        .build();
    let hyper = session.whatif_text(WHATIF).unwrap();
    // Reconfiguring returns a fresh session (and fresh cache) — the Indep
    // baseline must not see HypeR's cached estimator.
    let session = session.with_config(EngineConfig::indep());
    assert_eq!(session.stats().estimator_hits, 0);
    assert_eq!(session.stats().estimator_misses, 0);
    let indep = session.whatif_text(WHATIF).unwrap();
    assert!(indep.backdoor.is_empty());
    assert!(!hyper.backdoor.is_empty());
}

#[test]
fn string_literal_case_differences_do_not_share_cache_entries() {
    // Value comparison is case-sensitive, so `= 'Good'` and `= 'GOOD'`
    // are different queries: the cache must key them separately (while
    // identifier/keyword case still folds into one entry).
    let (db, _, graph) = credit_db(600, 8);
    let session = HyperSession::builder(db).graph(graph).build();
    let good = session
        .whatif_text("Use d Update(status) = 1 Output Count(Post(credit) = 'Good')")
        .unwrap();
    let shouty = session
        .whatif_text("Use d Update(status) = 1 Output Count(Post(credit) = 'GOOD')")
        .unwrap();
    assert!(good.value > 0.0);
    assert_eq!(shouty.value, 0.0, "no row has credit == 'GOOD'");
    assert_eq!(
        session.stats().estimator_misses,
        2,
        "literal-case variants train separate estimators"
    );

    // Attribute-name case variants agree in value (the engine resolves
    // attributes case-insensitively) but keys are exact text, so the
    // variant trains its own estimator over the same shared view.
    let upper = session
        .whatif_text("Use d Update(STATUS) = 1 Output Count(Post(credit) = 'Good')")
        .unwrap();
    assert_eq!(upper.value, good.value);
    assert_eq!(session.stats().estimator_misses, 3);
    assert_eq!(
        session.stats().views_cached,
        1,
        "same `Use d` clause, one view"
    );

    // Table lookup is case-sensitive, and the cache must not change that:
    // `Use D` fails identically on this warm session and on a cold one.
    let warm_err = session
        .whatif_text("Use D Update(status) = 1 Output Count(Post(credit) = 'Good')")
        .unwrap_err();
    let (db2, _, graph2) = credit_db(600, 8);
    let cold_err = HyperSession::builder(db2)
        .graph(graph2)
        .build()
        .whatif_text("Use D Update(status) = 1 Output Count(Post(credit) = 'Good')")
        .unwrap_err();
    assert_eq!(
        warm_err.to_string(),
        cold_err.to_string(),
        "cache warmth must not change query semantics"
    );
}

/// The acceptance scenario of the typed-builder redesign: one prepared
/// parameterized query swept over ≥ 20 bindings costs exactly one view
/// build and zero text parses; only the estimator re-keys per binding.
#[test]
fn parameterized_sweep_reuses_view_and_never_parses() {
    let (db, _, graph) = confounded_db(700, 7);
    let session = HyperSession::builder(db).graph(graph).build();

    let template = WhatIf::over("d")
        .scale_param("b", "mult")
        .output_count(HExpr::post("y").eq(1));
    let prepared = session.prepare(template).unwrap();
    assert_eq!(prepared.params(), &["mult".to_string()]);
    assert_eq!(session.stats().view_misses, 1, "prepare builds the view");

    // A template with unbound parameters refuses plain execution.
    assert!(prepared.execute().is_err());
    // …and unbinding errors name the missing parameter.
    let err = prepared.execute_with(&Bindings::new()).unwrap_err();
    assert!(err.to_string().contains("mult"), "{err}");

    let mut values = Vec::new();
    for i in 0..24 {
        let mult = 1.01 + 0.02 * i as f64;
        let r = prepared
            .execute_whatif_with(&Bindings::new().set("mult", mult))
            .unwrap();
        values.push(r.value);
    }
    let stats = session.stats();
    assert_eq!(stats.view_misses, 1, "whole sweep shares one view");
    assert_eq!(stats.texts_parsed, 0, "no text was ever parsed");
    assert_eq!(
        stats.estimator_misses, 24,
        "each distinct binding re-keys (and trains) its estimator"
    );
    assert_eq!(stats.queries_executed, 24);

    // Re-running a binding is a pure cache hit.
    let again = prepared
        .execute_whatif_with(&Bindings::new().set("mult", 1.01))
        .unwrap();
    assert_eq!(again.value, values[0]);
    let done = session.stats();
    assert_eq!(done.estimator_misses, 24, "no new training on a re-run");
    assert!(done.estimator_hits >= 1);
}

/// A builder-made query and its parsed rendering share cache entries:
/// preparing/executing both moves only hit counters after the first build.
#[test]
fn built_and_parsed_queries_share_cache_entries() {
    let (db, _, graph) = confounded_db(600, 5);
    let session = HyperSession::builder(db).graph(graph).build();

    let built = WhatIf::over("d")
        .set("b", 1)
        .output_count(HExpr::post("y").eq(1))
        .build()
        .unwrap();
    let text = hyper_query::HypotheticalQuery::WhatIf(built.clone()).to_string();

    let a = session.prepare(built).unwrap().execute_whatif().unwrap();
    let warm = session.stats();
    assert_eq!(warm.view_misses, 1);
    assert_eq!(warm.estimator_misses, 1);
    assert_eq!(warm.texts_parsed, 0, "builder input parses nothing");

    // The rendered text parses to the same IR → same QueryKey → pure hits.
    let b = session.whatif_text(&text).unwrap();
    assert_eq!(a.value, b.value);
    let done = session.stats();
    assert_eq!(done.view_misses, 1, "no extra view build for the text form");
    assert!(done.view_hits > warm.view_hits, "view_hits incremented");
    assert_eq!(done.estimator_misses, 1, "no retraining for the text form");
    assert!(done.estimator_hits >= 1);
    assert_eq!(done.texts_parsed, 1);
}

/// `explain()` is deterministic in everything but cache provenance: a
/// cold report and a warm report agree after normalization, and the
/// provenance markers move from miss/would-build to hit.
#[test]
fn explain_is_stable_across_cache_warmth_except_provenance() {
    let (db, _, graph) = confounded_db(500, 3);
    let session = HyperSession::builder(db).graph(graph).build();

    let cold = session.explain(WHATIF).unwrap();
    assert_eq!(cold.view.provenance, Provenance::Miss, "cold view is built");
    let est = cold.estimator.as_ref().expect("probabilistic what-if");
    assert_eq!(
        est.provenance,
        Provenance::WouldBuild,
        "explain never trains"
    );
    assert_eq!(
        session.stats().estimator_misses,
        0,
        "explain trained nothing"
    );
    let blocks = cold.blocks.as_ref().expect("graph + single table");
    assert!(blocks.count > 0);
    assert!(!cold.adjustment.is_empty(), "FromGraph chose an adjustment");
    assert_eq!(cold.view.source_tables, vec!["d".to_string()]);

    // Execute for real, then explain again on the warm cache.
    session.whatif_text(WHATIF).unwrap();
    let warm = session.explain(WHATIF).unwrap();
    assert_eq!(warm.view.provenance, Provenance::Hit);
    assert_eq!(warm.estimator.as_ref().unwrap().provenance, Provenance::Hit);
    assert_eq!(warm.blocks.as_ref().unwrap().provenance, Provenance::Hit);
    assert_eq!(
        cold.normalized(),
        warm.normalized(),
        "everything but provenance is identical"
    );
    assert_ne!(cold, warm, "provenance itself did change");

    // The rendered report mentions the provenance markers.
    let text = warm.to_string();
    assert!(text.contains("[hit]"), "{text}");
}

/// Deterministic what-ifs (every Post reference updated) explain without
/// an estimator section.
#[test]
fn explain_reports_deterministic_fast_path() {
    let (db, _, graph) = confounded_db(300, 2);
    let session = HyperSession::builder(db).graph(graph).build();
    let report = session
        .explain("Use d Update(b) = 1 Output Count(Post(b) = 1)")
        .unwrap();
    assert!(report.deterministic);
    assert!(report.estimator.is_none());
    assert!(report.adjustment.is_empty());
}

/// A how-to explain surfaces the optimizer plan without enumerating or
/// evaluating any candidate.
#[test]
fn explain_describes_howto_plans() {
    let (db, _, graph) = credit_db(400, 6);
    let session = HyperSession::builder(db).graph(graph).build();
    let report = session
        .explain("Use d HowToUpdate status, income ToMaximize Count(Post(credit) = 'Good')")
        .unwrap();
    let plan = report.howto.expect("how-to plan");
    assert_eq!(plan.update_attrs, vec!["status", "income"]);
    assert_eq!(session.stats().estimator_misses, 0, "nothing was evaluated");
}

/// A `CacheBudget` caps the estimator store with LRU eviction; evicted
/// estimators retrain on their next use.
#[test]
fn cache_budget_evicts_least_recently_used_estimators() {
    let (db, _, graph) = credit_db(500, 4);
    // Isolated: with the shared store attached, an evicted estimator is
    // re-served from the process-wide tier instead of retraining (covered
    // in shared_runtime_tests); this test pins down the local LRU.
    let session = HyperSession::builder(db)
        .graph(graph)
        .cache_budget(CacheBudget::estimators(2))
        .share_artifacts(false)
        .build();
    let q = |attr: &str, v: i64| {
        format!("Use d Update({attr}) = {v} Output Count(Post(credit) = 'Good')")
    };

    session.whatif_text(&q("status", 1)).unwrap();
    session.whatif_text(&q("income", 1)).unwrap();
    // Touch the first estimator so `income` becomes least-recent…
    session.whatif_text(&q("status", 1)).unwrap();
    // …then overflow the budget: `income` is evicted.
    session.whatif_text(&q("status", 0)).unwrap();

    let stats = session.stats();
    assert_eq!(stats.estimator_misses, 3);
    assert_eq!(stats.estimator_evictions, 1);
    assert_eq!(stats.estimators_cached, 2);

    // The survivor still hits; the evicted query retrains.
    session.whatif_text(&q("status", 1)).unwrap();
    assert_eq!(session.stats().estimator_misses, 3);
    session.whatif_text(&q("income", 1)).unwrap();
    let done = session.stats();
    assert_eq!(done.estimator_misses, 4, "evicted estimator retrained");
    assert_eq!(done.estimators_cached, 2);

    // Eviction must never change answers: a fresh unbounded session agrees.
    let (db2, _, graph2) = credit_db(500, 4);
    let unbounded = HyperSession::builder(db2).graph(graph2).build();
    assert_eq!(
        unbounded.whatif_text(&q("income", 1)).unwrap().value,
        session.whatif_text(&q("income", 1)).unwrap().value
    );
}

#[test]
fn prepare_rejects_invalid_queries_eagerly() {
    let (db, _, graph) = confounded_db(100, 4);
    let session = HyperSession::builder(db).graph(graph).build();
    assert!(
        session.prepare("Use d nonsense").is_err(),
        "parse error at prepare"
    );
    assert!(
        session
            .prepare("Use d Update(nope) = 1 Output Count(*)")
            .is_err(),
        "unknown update attribute caught at prepare, not execute"
    );
    assert!(
        session
            .prepare("Use ghost Update(b) = 1 Output Count(*)")
            .is_err(),
        "unknown table caught at prepare"
    );
}

/// A how-to template with `Param(…)` Limit bounds sweeps candidate grids
/// through `Bindings`: the relevant view is built once at prepare time and
/// shared by every bound combination — only the optimizer (candidate
/// enumeration + per-candidate estimators) re-runs per binding.
#[test]
fn howto_limit_bound_sweep_rebuilds_only_the_optimizer() {
    use hyper_query::{Bound, HowTo};
    use hyper_storage::AggFunc;

    let (db, _, graph) = credit_db(3_000, 11);
    let session = HyperSession::builder(db)
        .graph(graph)
        .howto_options(HowToOptions {
            buckets: 3,
            ..HowToOptions::default()
        })
        .build();

    let template = HowTo::maximize(AggFunc::Avg, "income")
        .over("d")
        .update("age")
        .limit_range_bounds("edu", Some(Bound::param("lo")), None)
        .build();
    // A parameterized limit over a non-updated attr still fails validation.
    assert!(template.is_err(), "limit on non-updated attribute rejected");

    let template = HowTo::maximize(AggFunc::Avg, "income")
        .over("d")
        .update("age")
        .limit_range_bounds("age", Some(Bound::param("lo")), Some(Bound::param("hi")));
    let prepared = session.prepare(template).unwrap();
    assert_eq!(
        prepared.params(),
        &["lo".to_string(), "hi".to_string()],
        "limit bounds surface as template parameters"
    );
    assert_eq!(session.stats().view_misses, 1, "prepare builds the view");

    // Unbound execution refuses and names the parameters.
    let err = prepared.execute().unwrap_err();
    assert!(err.to_string().contains("lo"), "{err}");

    // Two-bound sweep: each binding re-keys only the optimizer work.
    let tight = prepared
        .execute_with(&Bindings::new().set("lo", 0.0).set("hi", 0.4))
        .unwrap();
    let wide = prepared
        .execute_with(&Bindings::new().set("lo", 0.0).set("hi", 1.0))
        .unwrap();
    let (QueryOutcome::HowTo(tight), QueryOutcome::HowTo(wide)) = (tight, wide) else {
        panic!("expected how-to results");
    };
    let stats = session.stats();
    assert_eq!(stats.view_misses, 1, "whole sweep shares one view build");
    assert_eq!(stats.texts_parsed, 0, "no text round-trips");
    assert!(
        wide.candidates >= tight.candidates,
        "wider bounds admit at least as many candidates ({} vs {})",
        wide.candidates,
        tight.candidates
    );
    for u in tight.chosen.iter().chain(&wide.chosen) {
        let hyper_query::UpdateFunc::Set(v) = &u.func else {
            panic!("bucketized candidates are Set updates")
        };
        let x = v.as_f64().unwrap();
        assert!((0.0..=1.0).contains(&x), "chosen update within bounds: {x}");
    }

    // Re-running a binding hits the estimator cache (no new training).
    let before = session.stats().estimator_misses;
    prepared
        .execute_with(&Bindings::new().set("lo", 0.0).set("hi", 0.4))
        .unwrap();
    assert_eq!(
        session.stats().estimator_misses,
        before,
        "repeated bound binding retrains nothing"
    );
}

/// Objective constants accept `Param(…)` end-to-end: one prepared how-to
/// template sweeps objective targets with a single view build and zero
/// parses, and an unresolved objective parameter is rejected by name.
#[test]
fn parameterized_objective_constant_sweeps_targets() {
    use hyper_query::{HOp, HowTo};

    let (db, _, graph) = credit_db(1_200, 13);
    let session = HyperSession::builder(db)
        .graph(graph)
        .howto_options(HowToOptions {
            buckets: 2,
            ..HowToOptions::default()
        })
        .build();

    let template = HowTo::maximize_count_param("credit", HOp::Eq, "target")
        .over("d")
        .update("status");
    let prepared = session.prepare(template).unwrap();
    assert_eq!(
        prepared.params(),
        &["target".to_string()],
        "the objective constant surfaces as a template parameter"
    );
    assert_eq!(session.stats().view_misses, 1, "prepare builds the view");

    // Unbound execution refuses and names the parameter.
    let err = prepared.execute().unwrap_err();
    assert!(err.to_string().contains("target"), "{err}");

    let good = prepared
        .execute_with(&Bindings::new().set("target", "Good"))
        .unwrap();
    let bad = prepared
        .execute_with(&Bindings::new().set("target", "Bad"))
        .unwrap();
    let (QueryOutcome::HowTo(good), QueryOutcome::HowTo(bad)) = (good, bad) else {
        panic!("expected how-to results");
    };
    // Maximizing Good-credit count and maximizing Bad-credit count pull
    // the objective in opposite directions off the same baseline data.
    assert!(good.objective >= good.baseline);
    assert!(bad.objective >= bad.baseline);
    let stats = session.stats();
    assert_eq!(stats.view_misses, 1, "the sweep shares one view build");
    assert_eq!(stats.texts_parsed, 0, "no text round-trips");

    // The parsed form of the template produces the same prepared params.
    let parsed = session
        .prepare("Use d HowToUpdate status ToMaximize Count(Post(credit) = Param(target))")
        .unwrap();
    assert_eq!(parsed.params(), &["target".to_string()]);
}

/// Tracing attributes phase-level time without changing any result: a
/// traced session returns bit-identical answers and accumulates
/// exclusive-time totals that partition the attributed total.
#[test]
fn tracing_attributes_phases_and_preserves_results() {
    let (db, _, graph) = confounded_db(600, 5);
    let (db, graph) = (Arc::new(db), Arc::new(graph));
    let plain = HyperSession::builder(Arc::clone(&db))
        .graph(Arc::clone(&graph))
        .share_artifacts(false)
        .build();
    let traced = HyperSession::builder(db)
        .graph(graph)
        .share_artifacts(false)
        .tracing(true)
        .build();

    let a = plain.whatif_text(WHATIF).unwrap();
    let b = traced.whatif_text(WHATIF).unwrap();
    assert_eq!(
        a.value.to_bits(),
        b.value.to_bits(),
        "tracing must not perturb results"
    );

    let off = plain.stats();
    assert_eq!(off.traced_queries, 0);
    assert_eq!(off.trace_total_ns, 0);

    let on = traced.stats();
    assert_eq!(on.traced_queries, 1);
    assert!(on.trace_total_ns > 0);
    assert!(
        on.phase_ns(hyper_trace::Phase::ForestTrain) > 0,
        "training time attributed: {on:?}"
    );
    assert_eq!(on.phase_count(hyper_trace::Phase::Execute), 1);
    // Exclusive times partition each traced query's tree, so the phase
    // totals sum exactly to the attributed total.
    let sum: u64 = on.trace_phase_ns.iter().sum();
    assert_eq!(sum, on.trace_total_ns, "phases partition the total");
    // `set_tracing(false)` stops accumulation.
    traced.set_tracing(false);
    traced.whatif_text(WHATIF).unwrap();
    assert_eq!(traced.stats().traced_queries, 1);
}

/// `explain_analyze` executes under a dedicated trace and reports phase
/// durations that sum to the attributed total and (single-threaded)
/// track the measured wall time; `normalized()` clears the measurement.
#[test]
fn explain_analyze_reports_phase_timings() {
    use hyper_trace::Phase;
    let (db, _, graph) = confounded_db(500, 9);
    let session = HyperSession::builder(db)
        .graph(graph)
        .share_artifacts(false)
        .runtime(hyper_runtime::HyperRuntime::with_workers(0))
        .build();

    let cold = session.explain_analyze(WHATIF).unwrap();
    let t = cold.timings.as_ref().expect("analyze measures");
    assert!(t.total_ns() > 0);
    assert!(t.phase_ns(Phase::ForestTrain) > 0, "{t:?}");
    let sum: u64 = t.phases.iter().map(|p| p.self_ns).sum();
    assert_eq!(sum, t.total_ns(), "phases sum to the attributed total");
    // Single-threaded runtime: the attributed total is the traced wall
    // time minus only the instants outside the root span — within slop.
    assert!(t.total_ns() <= t.wall_ns, "{t:?}");
    let slop = (t.wall_ns / 5).max(5_000_000);
    assert!(
        t.wall_ns - t.total_ns() < slop,
        "attributed {} vs wall {}",
        t.total_ns(),
        t.wall_ns
    );
    // Post-execution provenance: the analyzed run trained the estimator.
    assert_eq!(cold.estimator.as_ref().unwrap().provenance, Provenance::Hit);
    // The measurement is not part of the plan.
    assert!(cold.normalized().timings.is_none());
    // A warm analyze attributes (almost) no training time.
    let warm = session.explain_analyze(WHATIF).unwrap();
    let wt = warm.timings.as_ref().unwrap();
    assert!(wt.phase_ns(Phase::ForestTrain) < t.phase_ns(Phase::ForestTrain));
    // The rendered report carries the timings section.
    let text = warm.to_string();
    assert!(text.contains("timings:"), "{text}");
    assert!(text.contains("cache_lookup"), "{text}");
}
