//! Integration tests for the disk-backed artifact tier and the
//! byte-budgeted shared-store eviction policy.
//!
//! Every test uses a dataset `(n, seed)` pair unique within the whole
//! test suite (the shared store is keyed by content fingerprints) and
//! its own persist directory under the system temp dir.

mod common;

use std::path::PathBuf;
use std::sync::Arc;

use common::confounded_db;
use hyper_core::{HyperSession, SharedArtifactStore};

const WHATIF: &str = "Use d Update(b) = 1 Output Count(Post(y) = 1)";

/// These tests clear and cap the process-global [`SharedArtifactStore`];
/// serialize them so the harness's parallel threads cannot interleave
/// those global effects.
static GLOBAL_STORE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn store_lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STORE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh, empty persist directory that cleans itself up.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("hyper_persist_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The headline: a "restarted process" (shared store cleared, fresh
/// session over a fresh but content-equal database) answers from disk —
/// zero estimator trainings, identical value.
#[test]
fn warm_start_after_simulated_restart() {
    let _guard = store_lock();
    let dir = TempDir::new("warm_start");
    let (db1, _, graph1) = confounded_db(1601, 41);

    // First life of the process: build + spill.
    let cold = HyperSession::builder(db1)
        .graph(graph1)
        .persist_dir(dir.path())
        .build();
    let before = cold.whatif_text(WHATIF).unwrap();
    let cs = cold.stats();
    assert_eq!(cs.estimator_misses, 1, "cold run trains");
    assert_eq!(cs.estimator_disk_hits, 0);

    // Simulated restart: all in-memory state gone, data re-loaded
    // independently (equal content ⇒ equal fingerprints ⇒ same disk
    // shard).
    SharedArtifactStore::global().clear();
    let (db2, _, graph2) = confounded_db(1601, 41);
    let warm = HyperSession::builder(db2)
        .graph(graph2)
        .persist_dir(dir.path())
        .build();
    let after = warm.whatif_text(WHATIF).unwrap();
    let ws = warm.stats();
    assert_eq!(ws.estimator_misses, 0, "warm start must not retrain");
    assert_eq!(ws.view_misses, 0, "…or rebuild the view");
    assert_eq!(ws.estimator_disk_hits, 1, "the estimator came from disk");
    assert_eq!(ws.view_disk_hits, 1, "the view came from disk");
    assert_eq!(
        before.value, after.value,
        "a deserialized estimator answers bit-identically"
    );
}

/// Isolated sessions (share_artifacts(false)) still get the disk tier.
#[test]
fn disk_tier_works_without_the_shared_store() {
    let _guard = store_lock();
    let dir = TempDir::new("isolated");
    let (db, _, graph) = confounded_db(1602, 42);
    let db = Arc::new(db);
    let graph = Arc::new(graph);

    let first = HyperSession::builder(Arc::clone(&db))
        .graph(Arc::clone(&graph))
        .share_artifacts(false)
        .persist_dir(dir.path())
        .build();
    let a = first.whatif_text(WHATIF).unwrap();
    assert_eq!(first.stats().estimator_misses, 1);

    let second = HyperSession::builder(db)
        .graph(graph)
        .share_artifacts(false)
        .persist_dir(dir.path())
        .build();
    let b = second.whatif_text(WHATIF).unwrap();
    let st = second.stats();
    assert_eq!(st.estimator_misses, 0);
    assert_eq!(st.estimator_disk_hits, 1);
    assert_eq!(a.value, b.value);
}

/// A persist dir written by *different* data is never trusted: the shard
/// directory is fingerprint-addressed, so the session simply rebuilds.
#[test]
fn stale_persist_dir_is_ignored() {
    let _guard = store_lock();
    let dir = TempDir::new("stale");
    let (db_a, _, graph_a) = confounded_db(1603, 43);
    let warmup = HyperSession::builder(db_a)
        .graph(graph_a)
        .persist_dir(dir.path())
        .build();
    warmup.whatif_text(WHATIF).unwrap();

    // Different data (another seed) against the same directory.
    let (db_b, _, graph_b) = confounded_db(1604, 44);
    let other = HyperSession::builder(db_b)
        .graph(graph_b)
        .persist_dir(dir.path())
        .build();
    other.whatif_text(WHATIF).unwrap();
    let st = other.stats();
    assert_eq!(st.estimator_disk_hits, 0, "foreign artifacts never load");
    assert_eq!(st.estimator_misses, 1, "…so the session retrains");
}

/// Corrupt artifact files (truncated or bit-flipped) are typed-error
/// misses: the query still answers correctly and the bad file is
/// overwritten by the rebuilt artifact.
#[test]
fn corrupt_artifact_files_fall_back_to_rebuild() {
    let _guard = store_lock();
    let dir = TempDir::new("corrupt");
    let (db, _, graph) = confounded_db(1605, 45);
    let db = Arc::new(db);
    let graph = Arc::new(graph);

    let cold = HyperSession::builder(Arc::clone(&db))
        .graph(Arc::clone(&graph))
        .persist_dir(dir.path())
        .build();
    let expected = cold.whatif_text(WHATIF).unwrap();

    // Damage every artifact file: truncate estimators, flip a byte in
    // the rest.
    let mut damaged = 0;
    for entry in walk(dir.path()) {
        let bytes = std::fs::read(&entry).unwrap();
        if entry.to_string_lossy().contains("estimators") {
            std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
        } else {
            let mut bytes = bytes;
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x20;
            std::fs::write(&entry, bytes).unwrap();
        }
        damaged += 1;
    }
    assert!(damaged >= 2, "expected spilled view + estimator files");

    SharedArtifactStore::global().clear();
    let warm = HyperSession::builder(db)
        .graph(graph)
        .persist_dir(dir.path())
        .build();
    let got = warm.whatif_text(WHATIF).unwrap();
    let st = warm.stats();
    assert_eq!(st.estimator_disk_hits, 0, "corrupt files never load");
    assert_eq!(st.estimator_misses, 1, "…the estimator is retrained");
    assert_eq!(got.value, expected.value);

    // The rebuild overwrote the damaged files: a third restart warm-starts.
    SharedArtifactStore::global().clear();
    let (db3, _, graph3) = confounded_db(1605, 45);
    let third = HyperSession::builder(db3)
        .graph(graph3)
        .persist_dir(dir.path())
        .build();
    third.whatif_text(WHATIF).unwrap();
    assert_eq!(third.stats().estimator_disk_hits, 1);
}

/// The byte budget evicts LRU shared-store entries, and — with
/// persistence on — evicted artifacts re-serve from disk instead of
/// retraining.
#[test]
fn byte_budget_evicts_to_disk() {
    let _guard = store_lock();
    let dir = TempDir::new("budget");
    let (db, _, graph) = confounded_db(1606, 46);
    let session = HyperSession::builder(db)
        .graph(graph)
        .persist_dir(dir.path())
        .build();
    // Distinct update constants → distinct estimator cache entries (the
    // update set is part of the key).
    let query = |c: i64| format!("Use d Update(b) = {c} Output Count(Post(y) = 1)");

    let store = SharedArtifactStore::global();
    session.whatif_text(&query(0)).unwrap();
    // Cap the store just above its current footprint: every further
    // estimator insert must now force LRU evictions.
    let evictions_before = store.stats().evictions;
    store.set_budget_bytes(store.stats().approx_bytes + 128);

    for c in 1..6 {
        session.whatif_text(&query(c)).unwrap();
    }
    let stats = store.stats();
    assert!(
        stats.evictions > evictions_before,
        "budget must force evictions (held {} bytes, budget {})",
        stats.approx_bytes,
        stats.budget_bytes
    );
    assert!(
        stats.approx_bytes <= stats.budget_bytes
            || stats.views + stats.estimators + stats.blocks <= 1,
        "store stays at its watermark"
    );

    // Restore the unbounded default for the rest of the suite.
    store.set_budget_bytes(0);

    // Evicted artifacts re-serve from disk: a fresh session (empty local
    // tier) replays the sweep with zero retraining.
    let (db2, _, graph2) = confounded_db(1606, 46);
    let replay = HyperSession::builder(db2)
        .graph(graph2)
        .persist_dir(dir.path())
        .build();
    for c in 0..6 {
        replay.whatif_text(&query(c)).unwrap();
    }
    let st = replay.stats();
    assert_eq!(st.estimator_misses, 0, "nothing retrains after eviction");
    assert!(
        st.estimator_disk_hits + st.estimator_shared_hits >= 6,
        "evicted estimators re-serve from disk (or survived in the store)"
    );
}

fn walk(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            out.extend(walk(&p));
        } else {
            out.push(p);
        }
    }
    out
}
