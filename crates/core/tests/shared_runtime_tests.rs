//! Integration tests for the shared execution runtime: the process-wide
//! artifact store (cross-session sharing, single-flight under
//! contention, the two-level cache's accounting) and the persistent
//! worker pool (nested fan-out, worker-count-independent results).
//!
//! Every test uses a dataset `(n, seed)` pair unique within this binary:
//! the shared store is keyed by *content* fingerprints, so tests over
//! equal data would otherwise observe each other's artifacts.

mod common;

use common::{confounded_db, credit_db};
use hyper_core::{CacheBudget, HyperSession, QueryOutcome};
use hyper_runtime::HyperRuntime;

const WHATIF: &str = "Use d Update(b) = 1 Output Count(Post(y) = 1)";

/// Two sessions over the same `(db, graph)` — here not even sharing
/// `Arc`s: the second session's database is generated independently with
/// equal content — share one view build and one estimator training.
#[test]
fn two_sessions_share_one_view_build() {
    let (db1, _, graph1) = confounded_db(1501, 31);
    let (db2, _, graph2) = confounded_db(1501, 31);

    let s1 = HyperSession::builder(db1).graph(graph1).build();
    let r1 = s1.whatif_text(WHATIF).unwrap();
    let a = s1.stats();
    assert_eq!(a.view_misses, 1, "first session builds the view");
    assert_eq!(a.estimator_misses, 1, "first session trains");
    assert_eq!(a.view_shared_hits, 0);

    let s2 = HyperSession::builder(db2).graph(graph2).build();
    let r2 = s2.whatif_text(WHATIF).unwrap();
    let b = s2.stats();
    assert_eq!(b.view_misses, 0, "second session builds nothing");
    assert_eq!(b.view_shared_hits, 1, "…the view came from the store");
    assert_eq!(b.estimator_misses, 0, "second session trains nothing");
    assert_eq!(b.estimator_shared_hits, 1);
    assert_eq!(r1.value, r2.value, "shared artifacts, identical answers");

    // Total builds across both sessions: exactly one per artifact.
    assert_eq!(a.view_misses + b.view_misses, 1);
    assert_eq!(a.estimator_misses + b.estimator_misses, 1);
}

/// Hammer one key from two sessions × two threads each: the shared
/// store's single-flight admits exactly one build process-wide; everyone
/// else records a shared hit (or a local hit on their second access).
#[test]
fn single_flight_across_sessions_under_contention() {
    let (db, _, graph) = confounded_db(1502, 32);
    let sessions: Vec<HyperSession> = (0..2)
        .map(|_| {
            HyperSession::builder(db.clone())
                .graph(graph.clone())
                .build()
        })
        .collect();

    let mut values = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in &sessions {
            for _ in 0..2 {
                handles.push(scope.spawn(move || s.whatif_text(WHATIF).unwrap().value));
            }
        }
        for h in handles {
            values.push(h.join().unwrap());
        }
    });
    assert!(values.windows(2).all(|w| w[0] == w[1]));

    let (mut views_built, mut estimators_trained, mut shared_hits) = (0, 0, 0);
    for s in &sessions {
        let st = s.stats();
        views_built += st.view_misses;
        estimators_trained += st.estimator_misses;
        shared_hits += st.view_shared_hits + st.estimator_shared_hits;
    }
    assert_eq!(views_built, 1, "one view build process-wide");
    assert_eq!(estimators_trained, 1, "one training process-wide");
    assert!(shared_hits >= 1, "the non-builders hit the shared store");
}

/// An artifact evicted from the session's LRU tier is re-served by the
/// shared store — eviction bounds session memory without forcing
/// retraining, and the accounting keeps the two tiers distinguishable.
#[test]
fn local_eviction_falls_back_to_shared_store() {
    let (db, _, graph) = credit_db(1503, 33);
    let session = HyperSession::builder(db)
        .graph(graph)
        .cache_budget(CacheBudget::estimators(1))
        .build();
    let q = |attr: &str| format!("Use d Update({attr}) = 1 Output Count(Post(credit) = 'Good')");

    session.whatif_text(&q("status")).unwrap();
    session.whatif_text(&q("income")).unwrap(); // evicts `status` locally
    let mid = session.stats();
    assert_eq!(mid.estimator_misses, 2);
    assert_eq!(mid.estimator_evictions, 1);
    assert_eq!(mid.estimators_cached, 1, "local tier respects its budget");

    session.whatif_text(&q("status")).unwrap();
    let done = session.stats();
    assert_eq!(done.estimator_misses, 2, "no retraining after eviction");
    assert_eq!(
        done.estimator_shared_hits, 1,
        "the evicted estimator came back from the shared tier"
    );
}

/// Block decompositions are shared per `(db, graph)` too.
#[test]
fn block_decomposition_is_shared_across_sessions() {
    let (db, _, graph) = confounded_db(1504, 34);
    let s1 = HyperSession::builder(db.clone())
        .graph(graph.clone())
        .build();
    let s2 = HyperSession::builder(db).graph(graph).build();
    s1.block_decomposition().unwrap();
    s2.block_decomposition().unwrap();
    assert_eq!(s1.stats().block_misses, 1);
    assert_eq!(s2.stats().block_misses, 0);
    assert_eq!(s2.stats().block_shared_hits, 1);
}

/// Isolated sessions never touch the process-wide store.
#[test]
fn isolated_sessions_do_not_share() {
    let (db, _, graph) = confounded_db(1505, 35);
    let s1 = HyperSession::builder(db.clone())
        .graph(graph.clone())
        .share_artifacts(false)
        .build();
    s1.whatif_text(WHATIF).unwrap();
    let s2 = HyperSession::builder(db)
        .graph(graph)
        .share_artifacts(false)
        .build();
    s2.whatif_text(WHATIF).unwrap();
    let (a, b) = (s1.stats(), s2.stats());
    assert_eq!(a.view_misses + b.view_misses, 2, "each built its own view");
    assert_eq!(a.view_shared_hits + b.view_shared_hits, 0);
    assert_eq!(a.estimator_shared_hits + b.estimator_shared_hits, 0);
}

/// The full nested-fan-out stack — `execute_batch` → how-to candidate
/// evaluation → forest training — drains one fixed worker pool without
/// deadlocking, and matches the sequential answers.
#[test]
fn nested_batch_howto_training_does_not_deadlock() {
    let (db, _, graph) = credit_db(1506, 36);
    let howtos = [
        "Use d HowToUpdate status ToMaximize Count(Post(credit) = 'Good')",
        "Use d HowToUpdate income ToMaximize Count(Post(credit) = 'Good')",
    ];

    let pooled = HyperSession::builder(db.clone())
        .graph(graph.clone())
        .runtime(HyperRuntime::with_workers(2))
        .share_artifacts(false)
        .build();
    let batch = pooled.execute_batch(&howtos);

    let sequential = HyperSession::builder(db)
        .graph(graph)
        .runtime(HyperRuntime::with_workers(0))
        .share_artifacts(false)
        .build();
    for (text, out) in howtos.iter().zip(batch) {
        let (QueryOutcome::HowTo(got), QueryOutcome::HowTo(want)) =
            (out.unwrap(), sequential.execute(*text).unwrap())
        else {
            panic!("expected how-to outcomes");
        };
        assert_eq!(got.objective, want.objective, "query `{text}` diverged");
        assert_eq!(got.chosen, want.chosen);
    }
}

/// What-if values are bit-identical whatever the session's worker count:
/// training derives every tree's randomness from `(seed, tree index)`,
/// and candidate fan-out only reorders independent work.
#[test]
fn results_are_worker_count_independent() {
    let (db, _, graph) = credit_db(1507, 37);
    let q = "Use d Update(status) = 1 Output Count(Post(credit) = 'Good')";
    let mut values = Vec::new();
    for workers in [0usize, 1, 3] {
        let s = HyperSession::builder(db.clone())
            .graph(graph.clone())
            .runtime(HyperRuntime::with_workers(workers))
            .share_artifacts(false)
            .build();
        values.push(s.whatif_text(q).unwrap().value);
    }
    assert_eq!(values[0].to_bits(), values[1].to_bits());
    assert_eq!(values[0].to_bits(), values[2].to_bits());
}
