//! Error type for the HypeR engine.

use std::fmt;

/// Errors raised while planning or evaluating hypothetical queries.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Query-language error (parse/validation).
    Query(String),
    /// Storage-layer error.
    Storage(String),
    /// Causal-model error.
    Causal(String),
    /// ML-layer error.
    Ml(String),
    /// Optimization-layer error.
    Ip(String),
    /// The query is valid but unsupported by this engine configuration.
    Unsupported(String),
    /// Planning error (ambiguous attribute, missing key, …).
    Plan(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Query(m) => write!(f, "query error: {m}"),
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
            EngineError::Causal(m) => write!(f, "causal error: {m}"),
            EngineError::Ml(m) => write!(f, "ml error: {m}"),
            EngineError::Ip(m) => write!(f, "ip error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Plan(m) => write!(f, "planning error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<hyper_storage::StorageError> for EngineError {
    fn from(e: hyper_storage::StorageError) -> Self {
        EngineError::Storage(e.to_string())
    }
}
impl From<hyper_query::QueryError> for EngineError {
    fn from(e: hyper_query::QueryError) -> Self {
        EngineError::Query(e.to_string())
    }
}
impl From<hyper_causal::CausalError> for EngineError {
    fn from(e: hyper_causal::CausalError) -> Self {
        EngineError::Causal(e.to_string())
    }
}
impl From<hyper_ml::MlError> for EngineError {
    fn from(e: hyper_ml::MlError) -> Self {
        EngineError::Ml(e.to_string())
    }
}
impl From<hyper_ip::IpError> for EngineError {
    fn from(e: hyper_ip::IpError) -> Self {
        EngineError::Ip(e.to_string())
    }
}
impl From<hyper_ingest::IngestError> for EngineError {
    fn from(e: hyper_ingest::IngestError) -> Self {
        EngineError::Storage(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, EngineError>;
