//! Engine configuration: the HypeR variants of the paper's evaluation
//! (§5.1 "Variations" and "Baselines").

/// How the backdoor adjustment set is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackdoorMode {
    /// Minimal valid set from the causal graph (plain **HypeR**).
    FromGraph,
    /// No graph available: condition on *all* other attributes
    /// (**HypeR-NB**, §2.2 "Background knowledge on causal DAG").
    Canonical,
    /// No adjustment at all: the purely correlational **Indep** baseline
    /// ("ignores the causal graph and assumes that there is no dependency
    /// between different attributes and tuples").
    None,
}

/// Which regression family estimates the conditional probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Bagged CART forest (the paper's choice; handles non-linearities).
    Forest,
    /// Ridge-regularized linear model — much faster, exact when the
    /// structural equations are linear. Used for ablations.
    Linear,
    /// Empirical cell means over supported `(B, C)` value combinations —
    /// the literal computation of §3.3/Eqs. 35–40 for discrete data
    /// (`Pr_D(ψ | B = f(b), C = c)` as a conditional frequency, iterating
    /// only over combinations with non-zero support). Exact in the large-n
    /// limit on discrete domains; falls back to coarser conditioning when a
    /// post-update combination was never observed.
    Cells,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Adjustment-set policy.
    pub backdoor: BackdoorMode,
    /// Conditional-probability estimator family.
    pub estimator: EstimatorKind,
    /// Train estimators on at most this many rows (**HypeR-sampled**;
    /// the paper settles on 100k — §5.2).
    pub sample_cap: Option<usize>,
    /// Trees in the random forest (paper uses sklearn defaults; we default
    /// lower for interactive latency).
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Evaluate per independent block and recombine (Prop. 1) instead of in
    /// one pass. Results are identical; the flag exists to measure the
    /// decomposition and to exercise the code path.
    pub use_blocks: bool,
    /// Include cross-tuple summary features (the ψ functions of §2.2) when
    /// the causal graph has same-value edges from an updated attribute.
    pub peer_summaries: bool,
    /// RNG seed for estimator training and sampling.
    pub seed: u64,
    /// Resident-byte budget for estimator training. When the dense
    /// encoded feature matrix would exceed this many bytes, forest
    /// training streams the view through the two-pass binned layout
    /// ([`hyper_ml::StreamedLayout`]) instead of materializing the
    /// matrix — bit-identical results, O(bins + cells) peak memory.
    /// `None` (the default) always materializes. Only the forest
    /// estimator without peer summaries or row sampling can stream;
    /// other shapes ignore the budget.
    pub train_budget_bytes: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            backdoor: BackdoorMode::FromGraph,
            estimator: EstimatorKind::Forest,
            sample_cap: None,
            n_trees: 16,
            max_depth: 10,
            use_blocks: false,
            peer_summaries: true,
            seed: 0,
            train_budget_bytes: None,
        }
    }
}

impl EngineConfig {
    /// Plain HypeR with a known causal graph.
    pub fn hyper() -> Self {
        EngineConfig::default()
    }

    /// HypeR-NB: no background knowledge; canonical (all-attribute)
    /// adjustment set.
    pub fn hyper_nb() -> Self {
        EngineConfig {
            backdoor: BackdoorMode::Canonical,
            ..EngineConfig::default()
        }
    }

    /// HypeR-sampled with the given training-row cap (paper uses 100k).
    pub fn hyper_sampled(cap: usize) -> Self {
        EngineConfig {
            sample_cap: Some(cap),
            ..EngineConfig::default()
        }
    }

    /// The Indep baseline.
    pub fn indep() -> Self {
        EngineConfig {
            backdoor: BackdoorMode::None,
            peer_summaries: false,
            ..EngineConfig::default()
        }
    }
}

/// Options controlling how-to optimization (§4.3).
#[derive(Debug, Clone)]
pub struct HowToOptions {
    /// Number of equi-width buckets for continuous attributes (Fig. 9
    /// sweeps this).
    pub buckets: usize,
    /// Maximum number of attributes that may be updated simultaneously
    /// (`None` = unlimited; the Student-Syn experiment uses 1).
    pub max_attrs_updated: Option<usize>,
}

impl Default for HowToOptions {
    fn default() -> Self {
        HowToOptions {
            buckets: 8,
            max_attrs_updated: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_variants() {
        assert_eq!(EngineConfig::hyper().backdoor, BackdoorMode::FromGraph);
        assert_eq!(EngineConfig::hyper_nb().backdoor, BackdoorMode::Canonical);
        assert_eq!(EngineConfig::indep().backdoor, BackdoorMode::None);
        assert_eq!(
            EngineConfig::hyper_sampled(100_000).sample_cap,
            Some(100_000)
        );
        assert!(EngineConfig::hyper().sample_cap.is_none());
    }
}
