//! Probabilistic what-if query evaluation (paper §3).
//!
//! The semantics (Definition 5) is an expectation over possible worlds
//! weighted by the post-update distribution. The evaluator here follows the
//! paper's computation strategy (§3.3):
//!
//! 1. build the relevant view (`Use`),
//! 2. select the update set `S` (`When`) on pre-update values,
//! 3. split `For` into pre and post conjuncts (§A.2.1),
//! 4. reduce post-update probabilities to pre-update conditionals through
//!    the backdoor criterion (Eq. 1, Eqs. 35–40) and estimate them with a
//!    regression model trained on `D`,
//! 5. sum per-tuple contributions — iterating only over value combinations
//!    with support (§3.3's index optimization), decomposing by blocks when
//!    requested (Prop. 1).

pub mod estimator;
pub mod exact;

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hyper_causal::CausalGraph;
use hyper_query::{validate_whatif, HExpr, OutputArg, Temporal, UpdateFunc, WhatIfQuery};
use hyper_runtime::HyperRuntime;
use hyper_storage::{AggFunc, Database, Value};

use crate::config::{BackdoorMode, EngineConfig};
use crate::error::{EngineError, Result};
use crate::hexpr::{bind_hexpr, conjoin, resolve_column, split_pre_post, BoundHExpr};
use crate::session::cache::ArtifactCache;
use crate::view::{build_relevant_view, RelevantView};

use estimator::{CausalEstimator, EstimatorSpec, PeerSummary};

/// Result of a what-if query.
#[derive(Debug, Clone)]
pub struct WhatIfResult {
    /// The expected value of the output aggregate (Definition 5).
    pub value: f64,
    /// Rows in the relevant view.
    pub n_view_rows: usize,
    /// Rows satisfying the pre-update `For` conditions.
    pub n_scope_rows: usize,
    /// Rows in the update set `S` (satisfying `When`).
    pub n_updated_rows: usize,
    /// View columns used as the backdoor adjustment set.
    pub backdoor: Vec<String>,
    /// Rows the estimator was trained on (≤ view rows under sampling).
    pub trained_rows: usize,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
}

/// Apply an update function to a pre-update value.
pub fn apply_update(func: &UpdateFunc, pre: &Value) -> Result<Value> {
    match func {
        UpdateFunc::Set(v) => Ok(v.clone()),
        UpdateFunc::Scale(c) => {
            let x = pre.as_f64().ok_or_else(|| {
                EngineError::Plan(format!("cannot scale non-numeric value {pre}"))
            })?;
            Ok(Value::Float(x * c))
        }
        UpdateFunc::Shift(c) => {
            let x = pre.as_f64().ok_or_else(|| {
                EngineError::Plan(format!("cannot shift non-numeric value {pre}"))
            })?;
            Ok(Value::Float(x + c))
        }
        UpdateFunc::Param { name, .. } => Err(EngineError::Query(format!(
            "unresolved parameter `Param({name})` in Update; bind it before evaluation"
        ))),
    }
}

/// Error out early (with the offending name) when a query still carries
/// unresolved `Param(…)` placeholders.
fn reject_unresolved_params(q: &WhatIfQuery) -> Result<()> {
    let names = q.param_names();
    if names.is_empty() {
        Ok(())
    } else {
        Err(EngineError::Query(format!(
            "query has {} unresolved parameter(s) [{}]; supply Bindings \
             (e.g. PreparedQuery::execute_with) before evaluation",
            names.len(),
            names.join(", ")
        )))
    }
}

/// Decompose the `Output` operator into ψ (the post-world predicate) and Y
/// (the post-world value expression) per §3.3/§A.2.1, folding the post
/// conjuncts of the `For` clause into ψ. Shared by evaluation, by
/// [`plan_whatif`] (which backs `HyperSession::explain`), and by the
/// how-to optimizer's identity-objective baseline.
pub(crate) fn output_decomposition(
    output: &hyper_query::OutputSpec,
    post_conj: &[HExpr],
) -> Result<(Option<HExpr>, Option<HExpr>)> {
    match (&output.agg, &output.arg) {
        (AggFunc::Count, OutputArg::Star) => Ok((conjoin(post_conj), None)),
        (AggFunc::Count, OutputArg::Expr(e)) => {
            let mut parts = post_conj.to_vec();
            parts.insert(0, e.clone());
            Ok((conjoin(&parts), None))
        }
        (AggFunc::Sum | AggFunc::Avg, OutputArg::Expr(e)) => {
            Ok((conjoin(post_conj), Some(e.clone())))
        }
        (agg, OutputArg::Star) => Err(EngineError::Unsupported(format!(
            "{agg}(*) is not a valid Output"
        ))),
        (agg, _) => Err(EngineError::Unsupported(format!(
            "aggregate {agg} is not supported in Output (Count/Sum/Avg only)"
        ))),
    }
}

/// The static plan of a what-if query over an already-resolved view:
/// everything `HyperSession::explain` reports without executing — update
/// columns, whether the deterministic fast path applies, the chosen
/// adjustment set, and the estimator cache key. Mirrors the decisions
/// [`evaluate_whatif_on_view`] makes (through the same helpers).
#[derive(Debug, Clone)]
pub(crate) struct WhatIfQueryPlan {
    /// False when every post reference is an updated attribute (the
    /// deterministic fast path: no estimator is trained).
    pub needs_estimation: bool,
    /// Chosen backdoor adjustment columns (names, view schema order).
    pub backdoor: Vec<String>,
    /// The estimator cache key, when estimation is needed.
    pub estimator_key: Option<String>,
}

/// Compute the static plan of `q` over `view` (no masks, no training).
pub(crate) fn plan_whatif(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    q: &WhatIfQuery,
    view: &RelevantView,
    view_key: &str,
) -> Result<WhatIfQueryPlan> {
    let _span = hyper_trace::span(hyper_trace::Phase::Plan);
    reject_unresolved_params(q)?;
    let cols = view.column_names();
    validate_whatif(q, Some(&cols))?;
    let schema = view.table.schema().clone();

    let mut update_cols: Vec<(usize, UpdateFunc)> = Vec::with_capacity(q.updates.len());
    for u in &q.updates {
        update_cols.push((resolve_column(&schema, &u.attr)?, u.func.clone()));
    }
    check_multi_update_validity(view, graph, &update_cols)?;

    let (pre_conj, post_conj) = match &q.for_clause {
        Some(fc) => split_pre_post(fc, Temporal::Pre),
        None => (Vec::new(), Vec::new()),
    };
    let pre_bound = conjoin(&pre_conj)
        .map(|e| bind_hexpr(&e, &schema, Temporal::Pre))
        .transpose()?;
    let (psi_expr, y_expr) = output_decomposition(&q.output, &post_conj)?;
    let psi = psi_expr
        .as_ref()
        .map(|e| bind_hexpr(e, &schema, Temporal::Post))
        .transpose()?;
    let y = y_expr
        .as_ref()
        .map(|e| bind_hexpr(e, &schema, Temporal::Post))
        .transpose()?;

    let post_cols: HashSet<usize> = psi
        .iter()
        .flat_map(|e| e.post_columns())
        .chain(y.iter().flat_map(|e| e.post_columns()))
        .collect();
    let update_col_set: HashSet<usize> = update_cols.iter().map(|(c, _)| *c).collect();
    let needs_estimation = post_cols.iter().any(|c| !update_col_set.contains(c));
    if !needs_estimation {
        return Ok(WhatIfQueryPlan {
            needs_estimation: false,
            backdoor: Vec::new(),
            estimator_key: None,
        });
    }

    let for_pre_cols: HashSet<usize> = pre_bound.iter().flat_map(|e| e.pre_columns()).collect();
    let backdoor_cols = select_backdoor_columns(
        db,
        view,
        graph,
        config,
        &update_cols,
        &post_cols,
        &for_pre_cols,
    )?;
    let estimator_key = ArtifactCache::estimator_key(view_key, q, &backdoor_cols, config);
    Ok(WhatIfQueryPlan {
        needs_estimation: true,
        backdoor: backdoor_cols
            .iter()
            .map(|&c| schema.field(c).name.clone())
            .collect(),
        estimator_key: Some(estimator_key),
    })
}

/// Evaluate a what-if query against `db` under `config`, optionally with a
/// causal `graph` (required for [`BackdoorMode::FromGraph`]).
///
/// This is the uncached single-shot path: the relevant view is built and
/// the estimator trained from scratch. Sessions
/// ([`crate::HyperSession::whatif`]) go through
/// [`evaluate_whatif_cached`] instead and reuse both artifacts.
pub fn evaluate_whatif(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    q: &WhatIfQuery,
) -> Result<WhatIfResult> {
    let view = Arc::new(build_relevant_view(db, &q.use_clause)?);
    evaluate_whatif_on_view(
        db,
        graph,
        config,
        q,
        &view,
        "",
        None,
        HyperRuntime::global(),
    )
}

/// Evaluate a what-if query, resolving the relevant view and the fitted
/// estimator through a session's artifact cache.
pub(crate) fn evaluate_whatif_cached(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    q: &WhatIfQuery,
    cache: &ArtifactCache,
    runtime: &HyperRuntime,
) -> Result<WhatIfResult> {
    let (view, view_key) = cache.view(db, &q.use_clause)?;
    evaluate_whatif_on_view(
        db,
        graph,
        config,
        q,
        &view,
        view_key.as_str(),
        Some(cache),
        runtime,
    )
}

/// Dispatch helper for call sites (the how-to optimizers) that may or may
/// not run inside a session.
pub(crate) fn evaluate_whatif_maybe_cached(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    q: &WhatIfQuery,
    cache: Option<&ArtifactCache>,
    runtime: &HyperRuntime,
) -> Result<WhatIfResult> {
    match cache {
        Some(c) => evaluate_whatif_cached(db, graph, config, q, c, runtime),
        None => {
            let view = Arc::new(build_relevant_view(db, &q.use_clause)?);
            evaluate_whatif_on_view(db, graph, config, q, &view, "", None, runtime)
        }
    }
}

/// Core what-if evaluation over an already-resolved relevant view
/// (§3.3 steps 2–5). `view_key` is the cache key of `view` (empty outside
/// a session); when `cache` is present the fitted estimator is fetched
/// from / inserted into it under a fingerprint derived from `view_key`.
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
pub(crate) fn evaluate_whatif_on_view(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    q: &WhatIfQuery,
    view: &Arc<RelevantView>,
    view_key: &str,
    cache: Option<&ArtifactCache>,
    runtime: &HyperRuntime,
) -> Result<WhatIfResult> {
    let started = Instant::now();
    // Planning: validation, expression binding, mask evaluation, and
    // adjustment-set selection (dropped before estimator training).
    let plan_span = hyper_trace::span(hyper_trace::Phase::Plan);
    reject_unresolved_params(q)?;
    let cols = view.column_names();
    validate_whatif(q, Some(&cols))?;
    let schema = view.table.schema().clone();
    let n = view.table.num_rows();

    // Update columns and their post values.
    let mut update_cols: Vec<(usize, UpdateFunc)> = Vec::with_capacity(q.updates.len());
    for u in &q.updates {
        update_cols.push((resolve_column(&schema, &u.attr)?, u.func.clone()));
    }
    check_multi_update_validity(view, graph, &update_cols)?;

    // Masks.
    let when_bound = q
        .when
        .as_ref()
        .map(|w| bind_hexpr(w, &schema, Temporal::Pre))
        .transpose()?;
    let when_mask = match &when_bound {
        Some(w) => w.eval_mask(&view.table)?,
        None => vec![true; n],
    };

    let (pre_conj, post_conj) = match &q.for_clause {
        Some(fc) => split_pre_post(fc, Temporal::Pre),
        None => (Vec::new(), Vec::new()),
    };
    let pre_bound = conjoin(&pre_conj)
        .map(|e| bind_hexpr(&e, &schema, Temporal::Pre))
        .transpose()?;
    let scope_mask = match &pre_bound {
        Some(p) => p.eval_mask(&view.table)?,
        None => vec![true; n],
    };

    // Output decomposition: ψ (post-world predicate) and Y (post value).
    let (psi_expr, y_expr) = output_decomposition(&q.output, &post_conj)?;
    // ψ and Y are shared (not deep-cloned) by every estimator fitted from
    // this query — one how-to run fits hundreds of candidate estimators.
    let psi: Option<Arc<BoundHExpr>> = psi_expr
        .as_ref()
        .map(|e| bind_hexpr(e, &schema, Temporal::Post).map(Arc::new))
        .transpose()?;
    let y: Option<Arc<BoundHExpr>> = y_expr
        .as_ref()
        .map(|e| bind_hexpr(e, &schema, Temporal::Post).map(Arc::new))
        .transpose()?;

    let n_scope = scope_mask.iter().filter(|&&b| b).count();
    let n_updated = when_mask.iter().filter(|&&b| b).count();

    // Fast path: nothing probabilistic to estimate.
    let post_cols: HashSet<usize> = psi
        .iter()
        .flat_map(|e| e.post_columns())
        .chain(y.iter().flat_map(|e| e.post_columns()))
        .collect();
    let update_col_set: HashSet<usize> = update_cols.iter().map(|(c, _)| *c).collect();
    let needs_estimation = post_cols.iter().any(|c| !update_col_set.contains(c));

    if !needs_estimation {
        // Post values are fully determined by the update functions.
        let value = deterministic_eval(
            view,
            &update_cols,
            &when_mask,
            &scope_mask,
            &psi,
            &y,
            q.output.agg,
        )?;
        return Ok(WhatIfResult {
            value,
            n_view_rows: n,
            n_scope_rows: n_scope,
            n_updated_rows: n_updated,
            backdoor: Vec::new(),
            trained_rows: 0,
            elapsed: started.elapsed(),
        });
    }

    // `For` pre-conditions add conditioning features (§5.5: "adding
    // conditions involving Pre values … increases the number of attributes
    // used to train the regressor"); attributes already in the backdoor set
    // are deduplicated, which is why the paper observes *faster* evaluation
    // when the added attribute was in the backdoor set.
    let for_pre_cols: HashSet<usize> = pre_bound.iter().flat_map(|e| e.pre_columns()).collect();

    // Backdoor adjustment set over view columns.
    let backdoor_cols = select_backdoor_columns(
        db,
        view,
        graph,
        config,
        &update_cols,
        &post_cols,
        &for_pre_cols,
    )?;
    drop(plan_span);

    // Optional cross-tuple peer summary (ψ of §2.2).
    let peer = if config.peer_summaries {
        PeerSummary::detect(view, graph, &update_cols)?
    } else {
        None
    };

    let spec = EstimatorSpec {
        update_cols: &update_cols,
        backdoor_cols: &backdoor_cols,
        peer,
        sample_cap: config.sample_cap,
        n_trees: config.n_trees,
        max_depth: config.max_depth,
        seed: config.seed,
        kind: config.estimator,
        train_budget_bytes: config.train_budget_bytes,
        runtime,
    };
    // When a fresh fit took the streaming route, fold its counters into
    // the session stats (inside the miss closure: cache hits must not
    // re-count a training that never ran).
    let record_stream = |est: &CausalEstimator| {
        if let (Some(c), Some(s)) = (cache, est.stream_stats) {
            use std::sync::atomic::Ordering;
            let k = &c.counters;
            k.trainings_streamed.fetch_add(1, Ordering::Relaxed);
            k.train_chunks_streamed
                .fetch_add(s.chunks_streamed, Ordering::Relaxed);
            k.train_peak_resident_bytes
                .fetch_max(s.peak_resident_bytes, Ordering::Relaxed);
        }
    };
    // Inside a session, fitted estimators are cached under a fingerprint of
    // (view, update set, output, adjustment set, estimator config): a
    // repeated prepared query skips training entirely.
    let est: Arc<CausalEstimator> = match cache {
        Some(c) => {
            let key = ArtifactCache::estimator_key(view_key, q, &backdoor_cols, config);
            // The `fits_view` vet applies to disk-recovered estimators
            // (untrusted bytes whose indices the context-free decoder
            // cannot range-check); a failing artifact is a plain miss
            // and this closure refits.
            c.estimator(
                &key,
                |e| e.fits_view(view),
                || {
                    let est = CausalEstimator::fit(view, &spec, &psi, &y, q.output.agg)?;
                    record_stream(&est);
                    Ok(est)
                },
            )?
        }
        None => {
            let est = CausalEstimator::fit(view, &spec, &psi, &y, q.output.agg)?;
            record_stream(&est);
            Arc::new(est)
        }
    };
    let value = if config.use_blocks {
        evaluate_by_blocks(db, graph, q, view, &est, &when_mask, &scope_mask, cache)?
    } else {
        est.evaluate(view, &when_mask, &scope_mask)?
    };

    Ok(WhatIfResult {
        value,
        n_view_rows: n,
        n_scope_rows: n_scope,
        n_updated_rows: n_updated,
        backdoor: backdoor_cols
            .iter()
            .map(|&c| schema.field(c).name.clone())
            .collect(),
        trained_rows: est.trained_rows(),
        elapsed: started.elapsed(),
    })
}

/// Decomposed computation (Proposition 1): partition scoped tuples into
/// independent blocks, evaluate the decomposed parts per block, and
/// recombine with `g = Sum`. Yields the same value as the monolithic pass
/// (the estimator's per-tuple contributions don't cross blocks) — this path
/// exists to exercise and measure the paper's optimization.
///
/// Only available for single-table `Use` clauses (view rows correspond 1:1
/// to base-table rows in order); other shapes fall back to one block.
#[allow(clippy::too_many_arguments)]
fn evaluate_by_blocks(
    db: &Database,
    graph: Option<&CausalGraph>,
    q: &WhatIfQuery,
    view: &RelevantView,
    est: &CausalEstimator,
    when_mask: &[bool],
    scope_mask: &[bool],
    cache: Option<&ArtifactCache>,
) -> Result<f64> {
    use hyper_causal::BlockDecomposition;

    let single_table = matches!(&q.use_clause, hyper_query::UseClause::Table(_));
    let blocks = match (graph, single_table) {
        // The decomposition depends only on (database, graph), both fixed
        // for a session's lifetime: compute it once and cache it.
        (Some(g), true) => Some(match cache {
            Some(c) => c.blocks(db, g)?,
            None => {
                let _span = hyper_trace::span(hyper_trace::Phase::BlockDecomp);
                Arc::new(BlockDecomposition::compute(db, g).map_err(EngineError::from)?)
            }
        }),
        _ => None,
    };
    let n = view.table.num_rows();
    let (num, den) = match blocks {
        None => est.evaluate_parts(view, when_mask, scope_mask)?,
        Some(blocks) => {
            let table_idx = match &q.use_clause {
                hyper_query::UseClause::Table(name) => db
                    .tables()
                    .iter()
                    .position(|t| t.name() == name.as_str())
                    .ok_or_else(|| EngineError::Plan(format!("unknown table `{name}`")))?,
                _ => unreachable!("single_table checked above"),
            };
            let mut num = 0.0;
            let mut den = 0.0;
            let mut block_scope = vec![false; n];
            for bi in 0..blocks.num_blocks() {
                // Restrict the scope mask to this block's rows.
                block_scope.iter_mut().for_each(|b| *b = false);
                let mut any = false;
                for t in blocks.block(bi) {
                    if t.table == table_idx && scope_mask[t.row] {
                        block_scope[t.row] = true;
                        any = true;
                    }
                }
                if !any {
                    continue;
                }
                let (bn, bd) = est.evaluate_parts(view, when_mask, &block_scope)?;
                num += bn;
                den += bd;
            }
            (num, den)
        }
    };
    Ok(match q.output.agg {
        hyper_storage::AggFunc::Avg => {
            if den == 0.0 {
                0.0
            } else {
                num / den
            }
        }
        _ => num,
    })
}

/// Evaluate when every post reference is an updated attribute: post values
/// are deterministic functions of pre values. Post values for the updated
/// columns are materialized once per column (scoped `When` rows only);
/// everything else reads the typed view columns in place — no per-row
/// `Row` clones.
fn deterministic_eval(
    view: &RelevantView,
    update_cols: &[(usize, UpdateFunc)],
    when_mask: &[bool],
    scope_mask: &[bool],
    psi: &Option<Arc<BoundHExpr>>,
    y: &Option<Arc<BoundHExpr>>,
    agg: AggFunc,
) -> Result<f64> {
    let table = &view.table;
    let n = table.num_rows();
    // Post values of each updated column; `None` where post = pre.
    let mut post_vals: Vec<(usize, Vec<Option<Value>>)> = Vec::with_capacity(update_cols.len());
    for (c, f) in update_cols {
        let src = table.column(*c);
        let mut vals: Vec<Option<Value>> = vec![None; n];
        for (i, slot) in vals.iter_mut().enumerate() {
            if scope_mask[i] && when_mask[i] {
                *slot = Some(apply_update(f, &src.value(i))?);
            }
        }
        post_vals.push((*c, vals));
    }
    let post_at = |i: usize, c: usize| -> Value {
        for (uc, vals) in &post_vals {
            if *uc == c {
                if let Some(v) = &vals[i] {
                    return v.clone();
                }
            }
        }
        table.column(c).value(i)
    };

    let mut total = 0.0;
    let mut denom = 0.0;
    for (i, &scoped) in scope_mask.iter().enumerate() {
        if !scoped {
            continue;
        }
        let mut get = |t: Temporal, c: usize| match t {
            Temporal::Pre => table.column(c).value(i),
            Temporal::Post => post_at(i, c),
        };
        let sat = match psi {
            Some(p) => match p.eval_with(&mut get)? {
                Value::Bool(b) => b,
                Value::Null => false,
                v => {
                    return Err(EngineError::Plan(format!(
                        "predicate evaluated to non-boolean {v}"
                    )))
                }
            },
            None => true,
        };
        if !sat {
            continue;
        }
        denom += 1.0;
        match (agg, y) {
            (AggFunc::Count, _) => total += 1.0,
            (_, Some(yv)) => {
                total += yv
                    .eval_with(&mut get)?
                    .as_f64()
                    .ok_or_else(|| EngineError::Plan("Output expression is not numeric".into()))?;
            }
            _ => unreachable!("validated in caller"),
        }
    }
    Ok(match agg {
        AggFunc::Avg => {
            if denom == 0.0 {
                0.0
            } else {
                total / denom
            }
        }
        _ => total,
    })
}

/// Reject multi-updates whose attributes are causally connected (§3.1:
/// "provided there are no paths from any Bi[t] to any Bj[t']").
fn check_multi_update_validity(
    view: &RelevantView,
    graph: Option<&CausalGraph>,
    update_cols: &[(usize, UpdateFunc)],
) -> Result<()> {
    if update_cols.len() < 2 {
        return Ok(());
    }
    let Some(g) = graph else { return Ok(()) };
    let nodes: Vec<Option<usize>> = update_cols
        .iter()
        .map(|(c, _)| {
            let o = &view.origins[*c];
            g.node_id(&o.relation, &o.attribute).ok()
        })
        .collect();
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            if let (Some(a), Some(b)) = (nodes[i], nodes[j]) {
                if g.has_path(a, b) || g.has_path(b, a) {
                    return Err(EngineError::Unsupported(format!(
                        "updated attributes `{}` and `{}` are causally connected; \
                         multi-attribute updates require independent attributes",
                        g.node_info(a),
                        g.node_info(b)
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Choose the adjustment columns per the configured [`BackdoorMode`],
/// augmented with `For` pre-condition attributes (except under `Indep`,
/// which the paper describes as not using additional attributes).
#[allow(clippy::too_many_arguments)]
fn select_backdoor_columns(
    db: &Database,
    view: &RelevantView,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    update_cols: &[(usize, UpdateFunc)],
    post_cols: &HashSet<usize>,
    for_pre_cols: &HashSet<usize>,
) -> Result<Vec<usize>> {
    let schema = view.table.schema();
    let update_set: HashSet<usize> = update_cols.iter().map(|(c, _)| *c).collect();

    // Columns that are primary keys of their source relation are never
    // conditioning features.
    let is_key = |c: usize| -> bool {
        let o = &view.origins[c];
        if o.aggregated.is_some() {
            return false;
        }
        db.table(&o.relation).ok().is_some_and(|t| {
            t.primary_key()
                .iter()
                .any(|&k| t.schema().field(k).name == o.attribute)
        })
    };

    // Descendants of updated attributes must never be conditioned on (they
    // would block the effect being measured); computable only with a graph.
    let descendant_cols: HashSet<usize> = match graph {
        Some(g) => {
            let mut out = HashSet::new();
            for &(bc, _) in update_cols {
                let bo = &view.origins[bc];
                if let Ok(b_node) = g.node_id(&bo.relation, &bo.attribute) {
                    for d in g.descendants(b_node) {
                        let info = g.node_info(d);
                        for (c, o) in view.origins.iter().enumerate() {
                            if o.relation == info.relation && o.attribute == info.attribute {
                                out.insert(c);
                            }
                        }
                    }
                }
            }
            out
        }
        None => HashSet::new(),
    };
    let extra_for: Vec<usize> = for_pre_cols
        .iter()
        .copied()
        .filter(|c| {
            !update_set.contains(c)
                && !post_cols.contains(c)
                && !descendant_cols.contains(c)
                && !is_key(*c)
        })
        .collect();

    match config.backdoor {
        BackdoorMode::None => Ok(Vec::new()),
        BackdoorMode::Canonical => {
            let mut out: Vec<usize> = (0..schema.len())
                .filter(|c| !update_set.contains(c) && !post_cols.contains(c) && !is_key(*c))
                .collect();
            for c in extra_for {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
            out.sort_unstable();
            Ok(out)
        }
        BackdoorMode::FromGraph => {
            let g = graph.ok_or_else(|| {
                EngineError::Causal(
                    "BackdoorMode::FromGraph requires a causal graph; use \
                     EngineConfig::hyper_nb() when none is available"
                        .into(),
                )
            })?;
            let mut chosen: HashSet<usize> = HashSet::new();
            for &(bc, _) in update_cols {
                let bo = &view.origins[bc];
                let b_node = g.node_id(&bo.relation, &bo.attribute)?;
                for &yc in post_cols {
                    if update_set.contains(&yc) {
                        continue;
                    }
                    let yo = &view.origins[yc];
                    let Ok(y_node) = g.node_id(&yo.relation, &yo.attribute) else {
                        continue; // post attr outside the model: no adjustment
                    };
                    let set =
                        hyper_causal::minimal_backdoor_set(g, b_node, y_node).ok_or_else(|| {
                            EngineError::Causal(format!(
                                "no valid backdoor set for {} → {}",
                                g.node_info(b_node),
                                g.node_info(y_node)
                            ))
                        })?;
                    for node in set {
                        let info = g.node_info(node);
                        // Map the graph node back to a view column.
                        for (c, o) in view.origins.iter().enumerate() {
                            if o.relation == info.relation
                                && o.attribute == info.attribute
                                && !update_set.contains(&c)
                                && !post_cols.contains(&c)
                                && !is_key(c)
                            {
                                chosen.insert(c);
                            }
                        }
                    }
                }
            }
            for c in extra_for {
                chosen.insert(c);
            }
            let mut out: Vec<usize> = chosen.into_iter().collect();
            out.sort_unstable();
            Ok(out)
        }
    }
}
