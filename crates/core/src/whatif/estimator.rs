//! The regression-based causal estimator behind what-if queries.
//!
//! Implements the computation of Propositions 2/4/5 with the reductions of
//! Eqs. (35)–(40): post-update conditionals `Pr_{D,U}(ψ | B = b, C = c)`
//! equal pre-update conditionals `Pr_D(ψ | B = f(b), C = c)` under the
//! backdoor criterion, and those are estimated from `D` with a single
//! regression model (§A.4's homogeneity assumption) — a random forest, as
//! in the paper's implementation.
//!
//! The §3.3 support-index optimization appears here as prediction
//! memoization: rows sharing the same (post-update) feature combination are
//! predicted once.

use std::collections::HashMap;
use std::sync::Arc;

use hyper_causal::{CausalGraph, EdgeKind};
use hyper_ml::{
    EncodedTableSource, ForestParams, LinearModel, Matrix, RandomForest, StreamedLayout,
    TableEncoder, TrainStreamStats, TreeParams, MAX_BINS,
};
use hyper_query::UpdateFunc;
use hyper_storage::{AggFunc, Column, Value, DEFAULT_MORSEL_ROWS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::{EngineError, Result};
use crate::hexpr::BoundHExpr;
use crate::view::RelevantView;
use crate::whatif::apply_update;

/// Cross-tuple summary feature (the distribution-preserving ψ of §2.2):
/// the mean of an updated attribute over *peer* rows sharing a grouping
/// value (e.g. mean competitor price within the product's category).
#[derive(Debug, Clone)]
pub struct PeerSummary {
    /// The updated column being summarized.
    pub update_col: usize,
    /// The view column defining peer groups.
    pub group_col: usize,
}

impl PeerSummary {
    /// Detect whether the causal graph declares a same-value edge from an
    /// updated attribute, and whether its grouping attribute is a view
    /// column; returns the summary spec if so.
    pub fn detect(
        view: &RelevantView,
        graph: Option<&CausalGraph>,
        update_cols: &[(usize, UpdateFunc)],
    ) -> Result<Option<PeerSummary>> {
        let Some(g) = graph else { return Ok(None) };
        for &(uc, _) in update_cols {
            let o = &view.origins[uc];
            let Ok(node) = g.node_id(&o.relation, &o.attribute) else {
                continue;
            };
            for e in g.out_edges(node) {
                if let EdgeKind::SameValue { group_by } = &e.kind {
                    // Find the grouping attribute among view columns.
                    for (c, co) in view.origins.iter().enumerate() {
                        if co.relation == o.relation
                            && co.attribute.eq_ignore_ascii_case(group_by)
                            && co.aggregated.is_none()
                        {
                            return Ok(Some(PeerSummary {
                                update_col: uc,
                                group_col: c,
                            }));
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// Per-row peer means of `values` (leave-one-out within each group).
    /// Groups are keyed by the typed column's `(tag, bits)` key parts — no
    /// `Value` materialization or hashing.
    fn peer_means(&self, groups: &Column, values: &[f64]) -> Vec<f64> {
        let mut buf: Vec<u64> = Vec::with_capacity(2);
        let keys: Vec<[u64; 2]> = (0..groups.len())
            .map(|i| {
                buf.clear();
                groups.write_key_part(i, &mut buf);
                [buf[0], buf[1]]
            })
            .collect();
        let mut sum: HashMap<[u64; 2], (f64, usize)> = HashMap::new();
        for (k, v) in keys.iter().zip(values) {
            let e = sum.entry(*k).or_insert((0.0, 0));
            e.0 += *v;
            e.1 += 1;
        }
        keys.iter()
            .zip(values)
            .map(|(k, v)| {
                let (s, c) = sum[k];
                if c <= 1 {
                    *v // singleton group: fall back to own value
                } else {
                    (s - v) / (c - 1) as f64
                }
            })
            .collect()
    }
}

/// Everything needed to fit the estimator.
pub struct EstimatorSpec<'a> {
    /// Updated columns with their functions.
    pub update_cols: &'a [(usize, UpdateFunc)],
    /// Backdoor adjustment columns.
    pub backdoor_cols: &'a [usize],
    /// Optional cross-tuple summary feature.
    pub peer: Option<PeerSummary>,
    /// Training-row cap (HypeR-sampled).
    pub sample_cap: Option<usize>,
    /// Forest size.
    pub n_trees: usize,
    /// Tree depth.
    pub max_depth: usize,
    /// Seed.
    pub seed: u64,
    /// Regression family.
    pub kind: crate::config::EstimatorKind,
    /// Resident-byte budget for training
    /// ([`crate::EngineConfig::train_budget_bytes`]): when the dense
    /// encoded matrix would exceed it, forest training streams through
    /// [`StreamedLayout`] instead of materializing the matrix.
    pub train_budget_bytes: Option<usize>,
    /// Worker pool forest training fans out over (results are
    /// worker-count-independent, so sharing fitted estimators across
    /// sessions with different runtimes is safe).
    pub runtime: &'a hyper_runtime::HyperRuntime,
}

/// Empirical cell-mean table over encoded feature combinations: the
/// §3.3 support-index computation executed literally. `skip` is the number
/// of leading encoded dimensions occupied by the update attributes; the
/// marginal table conditions only on the remaining (backdoor) dimensions
/// and is the fallback for post-update combinations with zero support.
pub(crate) struct CellTable {
    pub(crate) cells: HashMap<Vec<u64>, (f64, u32)>,
    pub(crate) marginal: HashMap<Vec<u64>, (f64, u32)>,
    pub(crate) global: f64,
    pub(crate) skip: usize,
}

impl CellTable {
    fn fit(x: &hyper_ml::Matrix, y: &[f64], skip: usize) -> CellTable {
        let mut cells: HashMap<Vec<u64>, (f64, u32)> = HashMap::new();
        let mut marginal: HashMap<Vec<u64>, (f64, u32)> = HashMap::new();
        let mut total = 0.0;
        for (i, &yi) in y.iter().enumerate().take(x.rows()) {
            let row = x.row(i);
            let key: Vec<u64> = row.iter().map(|f| f.to_bits()).collect();
            let mkey: Vec<u64> = row[skip.min(row.len())..]
                .iter()
                .map(|f| f.to_bits())
                .collect();
            let e = cells.entry(key).or_insert((0.0, 0));
            e.0 += yi;
            e.1 += 1;
            let m = marginal.entry(mkey).or_insert((0.0, 0));
            m.0 += yi;
            m.1 += 1;
            total += yi;
        }
        CellTable {
            cells,
            marginal,
            global: if x.rows() > 0 {
                total / x.rows() as f64
            } else {
                0.0
            },
            skip,
        }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let key: Vec<u64> = row.iter().map(|f| f.to_bits()).collect();
        if let Some((s, c)) = self.cells.get(&key) {
            return s / *c as f64;
        }
        let mkey: Vec<u64> = row[self.skip.min(row.len())..]
            .iter()
            .map(|f| f.to_bits())
            .collect();
        if let Some((s, c)) = self.marginal.get(&mkey) {
            return s / *c as f64;
        }
        self.global
    }
}

/// Either regression family, behind one prediction interface.
pub(crate) enum FittedModel {
    Forest(RandomForest),
    Linear(LinearModel),
    Cells(CellTable),
}

impl FittedModel {
    /// Batch prediction over a feature matrix (the forest walks every tree
    /// per row without re-dispatching through the enum per cell).
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        match self {
            FittedModel::Forest(m) => m.predict(x),
            FittedModel::Linear(m) => m.predict(x),
            FittedModel::Cells(m) => (0..x.rows()).map(|i| m.predict_row(x.row(i))).collect(),
        }
    }
}

/// A fitted causal estimator for one what-if query. Fields are
/// crate-visible so `crate::persist` can serialize a fitted estimator for
/// the disk cache tier.
pub struct CausalEstimator {
    pub(crate) agg: AggFunc,
    pub(crate) feature_cols: Vec<usize>,
    pub(crate) update_cols: Vec<(usize, UpdateFunc)>,
    pub(crate) encoder: TableEncoder,
    /// Main model: E[target | features] where target is `1{ψ}` (Count),
    /// `Y·1{ψ}` (Sum/Avg numerator).
    pub(crate) model: FittedModel,
    /// Denominator model for Avg when ψ exists: E[1{ψ} | features].
    pub(crate) denom_model: Option<FittedModel>,
    /// ψ and Y bound expressions for unaffected-row evaluation — shared
    /// with the caller via `Arc` (one estimator per candidate update would
    /// otherwise deep-clone both trees per fit).
    pub(crate) psi: Option<Arc<BoundHExpr>>,
    pub(crate) y: Option<Arc<BoundHExpr>>,
    /// Peer summary state: pre-update peer means per row + post-update peer
    /// means per row (computed at fit time over the whole view).
    pub(crate) peer: Option<(PeerSummary, Vec<f64>, Vec<f64>)>,
    pub(crate) trained_rows: usize,
    /// Streaming counters when this estimator trained through the
    /// budgeted [`StreamedLayout`] route; `None` for resident training
    /// and for estimators recovered from the disk tier (the counters
    /// describe a training run, not the model, so they are never
    /// serialized).
    pub(crate) stream_stats: Option<TrainStreamStats>,
}

impl CausalEstimator {
    /// Fit the estimator on the relevant view. Training targets are
    /// evaluated per row straight off the typed columns, and the feature
    /// matrix is filled column-wise ([`TableEncoder::encode_table`]).
    pub fn fit(
        view: &RelevantView,
        spec: &EstimatorSpec<'_>,
        psi: &Option<Arc<BoundHExpr>>,
        y: &Option<Arc<BoundHExpr>>,
        agg: AggFunc,
    ) -> Result<CausalEstimator> {
        // Covers the whole fit (target evaluation, sampling, encoding);
        // the nested `EncoderFit`/`ForestTrain` spans from `hyper-ml`
        // subtract their own time, leaving the glue here.
        let _span = hyper_trace::span(hyper_trace::Phase::ForestTrain);
        let table = &view.table;
        let n = table.num_rows();
        if n == 0 {
            return Err(EngineError::Plan("relevant view is empty".into()));
        }

        // Feature columns: updates first, then backdoor set.
        let mut feature_cols: Vec<usize> = spec.update_cols.iter().map(|(c, _)| *c).collect();
        feature_cols.extend_from_slice(spec.backdoor_cols);
        let names: Vec<String> = feature_cols
            .iter()
            .map(|&c| table.schema().field(c).name.clone())
            .collect();
        let encoder = TableEncoder::fit(table, &names)?;

        // Peer summary features (pre and post variants).
        let peer = match &spec.peer {
            Some(p) => {
                let update_col = table.column(p.update_col);
                let pre_vals: Vec<f64> = (0..n)
                    .map(|i| update_col.f64_at(i).unwrap_or(0.0))
                    .collect();
                let pre_means = p.peer_means(table.column(p.group_col), &pre_vals);
                // Post values of the updated column (the update applies to
                // every row for summary purposes only when it actually
                // applies — the caller recomputes exact post means below in
                // evaluate(); here we seed with pre means).
                Some((p.clone(), pre_means.clone(), pre_means))
            }
            None => None,
        };

        // Targets on observed rows: ψ and Y evaluated with post = pre,
        // reading cells off the typed columns (no row clones).
        let mut target = Vec::with_capacity(n);
        let mut denom_target = Vec::with_capacity(n);
        for i in 0..n {
            let sat = match psi {
                Some(p) => p.eval_bool_at(table, table, i)?,
                None => true,
            };
            let base = match (agg, y) {
                (AggFunc::Count, _) => {
                    if sat {
                        1.0
                    } else {
                        0.0
                    }
                }
                (_, Some(yv)) => {
                    let val = yv.eval_at(table, table, i)?.as_f64().ok_or_else(|| {
                        EngineError::Plan("Output expression is not numeric".into())
                    })?;
                    if sat {
                        val
                    } else {
                        0.0
                    }
                }
                _ => {
                    return Err(EngineError::Plan(
                        "Sum/Avg output requires a value expression".into(),
                    ))
                }
            };
            target.push(base);
            denom_target.push(if sat { 1.0 } else { 0.0 });
        }

        // Streaming route: when a training budget is set and the dense
        // encoded matrix would blow past it, stream the view through the
        // two-pass binned layout instead of materializing the matrix.
        // Only the forest family without peer features or row sampling
        // can take it (peer columns are appended post-encode; sampling
        // permutes rows) — and the layout itself declines data that is
        // not cell-trainable (`build` returns `None`), in which case the
        // resident path below handles it exactly as without a budget.
        // Either way the fitted forest is bit-identical to resident
        // training, so the cache key need not mention the budget.
        let stream_eligible = spec.kind == crate::config::EstimatorKind::Forest
            && peer.is_none()
            && spec.sample_cap.is_none_or(|cap| cap >= n);
        if let Some(budget) = spec.train_budget_bytes {
            let matrix_bytes = n.saturating_mul(encoder.width()).saturating_mul(8);
            if stream_eligible && matrix_bytes > budget {
                let mut src = EncodedTableSource::new(&encoder, table, DEFAULT_MORSEL_ROWS);
                if let Some(layout) = StreamedLayout::build(&mut src, MAX_BINS, (n / 4).max(64))
                    .map_err(EngineError::from)?
                {
                    let params = ForestParams {
                        n_trees: spec.n_trees,
                        tree: TreeParams {
                            max_depth: spec.max_depth,
                            ..TreeParams::default()
                        },
                        bootstrap: true,
                        seed: spec.seed,
                    };
                    let model = FittedModel::Forest(
                        layout
                            .fit_forest(spec.runtime, &target, &params)
                            .map_err(EngineError::from)?,
                    );
                    let denom_model = if agg == AggFunc::Avg && psi.is_some() {
                        Some(FittedModel::Forest(
                            layout
                                .fit_forest(spec.runtime, &denom_target, &params)
                                .map_err(EngineError::from)?,
                        ))
                    } else {
                        None
                    };
                    return Ok(CausalEstimator {
                        agg,
                        feature_cols,
                        update_cols: spec.update_cols.to_vec(),
                        encoder,
                        model,
                        denom_model,
                        psi: psi.clone(),
                        y: y.clone(),
                        peer: None,
                        trained_rows: n,
                        stream_stats: Some(layout.stats()),
                    });
                }
            }
        }

        // Feature matrix (with optional peer column appended).
        let mut x = encoder.encode_table(table)?;
        if let Some((_, pre_means, _)) = &peer {
            x = x
                .with_appended_column(pre_means)
                .map_err(EngineError::from)?;
        }

        // Sampling (HypeR-sampled): train on a random subset.
        let train_idx: Vec<u32> = match spec.sample_cap {
            Some(cap) if cap < n => {
                let mut rng = StdRng::seed_from_u64(spec.seed);
                let mut idx: Vec<u32> = (0..n as u32).collect();
                idx.shuffle(&mut rng);
                idx.truncate(cap);
                idx
            }
            _ => (0..n as u32).collect(),
        };
        let trained_rows = train_idx.len();
        let (xt, yt, dt) = subset(&x, &target, &denom_target, &train_idx)?;

        // Leading encoded dimensions occupied by the update attributes (for
        // the cell estimator's marginal fallback).
        let update_dims: usize = encoder
            .column_widths()
            .iter()
            .take(spec.update_cols.len())
            .sum();
        let fit_model = |targets: &[f64]| -> Result<FittedModel> {
            Ok(match spec.kind {
                crate::config::EstimatorKind::Forest => {
                    let params = ForestParams {
                        n_trees: spec.n_trees,
                        tree: TreeParams {
                            max_depth: spec.max_depth,
                            ..TreeParams::default()
                        },
                        bootstrap: true,
                        seed: spec.seed,
                    };
                    FittedModel::Forest(
                        RandomForest::fit_on(spec.runtime, &xt, targets, &params)
                            .map_err(EngineError::from)?,
                    )
                }
                crate::config::EstimatorKind::Linear => FittedModel::Linear(
                    LinearModel::fit(&xt, targets, 1e-6).map_err(EngineError::from)?,
                ),
                crate::config::EstimatorKind::Cells => {
                    FittedModel::Cells(CellTable::fit(&xt, targets, update_dims))
                }
            })
        };
        let model = fit_model(&yt)?;
        let denom_model = if agg == AggFunc::Avg && psi.is_some() {
            Some(fit_model(&dt)?)
        } else {
            None
        };

        Ok(CausalEstimator {
            agg,
            feature_cols,
            update_cols: spec.update_cols.to_vec(),
            encoder,
            model,
            denom_model,
            psi: psi.clone(),
            y: y.clone(),
            peer,
            trained_rows,
            stream_stats: None,
        })
    }

    /// Rows used for training.
    pub fn trained_rows(&self) -> usize {
        self.trained_rows
    }

    /// Do this estimator's column references and peer-state dimensions
    /// fit `view`? Estimators fitted in-process fit by construction;
    /// this guards estimators deserialized from a persist directory,
    /// whose indices are untrusted bytes — a mismatch must surface as a
    /// typed error at the fetch site, never an out-of-bounds panic at
    /// evaluation time.
    pub(crate) fn fits_view(&self, view: &RelevantView) -> bool {
        let ncols = view.table.num_columns();
        let nrows = view.table.num_rows();
        let cols_ok = self.feature_cols.iter().all(|&c| c < ncols)
            && self.update_cols.iter().all(|&(c, _)| c < ncols);
        let exprs_ok = [&self.psi, &self.y].into_iter().all(|e| {
            e.as_ref().is_none_or(|b| {
                b.pre_columns()
                    .into_iter()
                    .chain(b.post_columns())
                    .all(|c| c < ncols)
            })
        });
        let peer_ok = self.peer.as_ref().is_none_or(|(p, pre, post)| {
            p.update_col < ncols && p.group_col < ncols && pre.len() == nrows && post.len() == nrows
        });
        cols_ok && exprs_ok && peer_ok
    }

    /// Evaluate the query value over the view given the update (`when`) and
    /// scope (`for`-pre) masks.
    pub fn evaluate(
        &self,
        view: &RelevantView,
        when_mask: &[bool],
        scope_mask: &[bool],
    ) -> Result<f64> {
        let (numerator, denominator) = self.evaluate_parts(view, when_mask, scope_mask)?;
        Ok(match self.agg {
            AggFunc::Avg => {
                if denominator == 0.0 {
                    0.0
                } else {
                    numerator / denominator
                }
            }
            _ => numerator,
        })
    }

    /// Decomposable parts of the query value: `(numerator, denominator)`.
    ///
    /// For `Count`/`Sum` the numerator *is* the result; for `Avg` the result
    /// is their ratio. Both parts are sums over scoped tuples, so they can
    /// be accumulated per independent block and recombined (Definition 6's
    /// `g = Sum`, Proposition 1).
    ///
    /// Vectorized evaluation: unaffected rows contribute deterministically
    /// via typed-column reads; affected rows are gathered, their
    /// post-update feature columns assembled as typed buffers, encoded
    /// column-wise, deduplicated per feature combination (the §3.3 support
    /// index), and predicted in **one batch** per model.
    pub fn evaluate_parts(
        &self,
        view: &RelevantView,
        when_mask: &[bool],
        scope_mask: &[bool],
    ) -> Result<(f64, f64)> {
        let table = &view.table;
        let n = table.num_rows();

        // Post-update peer means (summary features see the updated world).
        let peer_post: Option<Vec<f64>> = match &self.peer {
            Some((p, _, _)) => {
                let update_col = table.column(p.update_col);
                let func = &self
                    .update_cols
                    .iter()
                    .find(|(c, _)| *c == p.update_col)
                    .expect("peer summary over an updated column")
                    .1;
                let mut post_vals = Vec::with_capacity(n);
                for (i, &updated) in when_mask.iter().enumerate() {
                    let v = if updated {
                        apply_update(func, &update_col.value(i))?
                    } else {
                        update_col.value(i)
                    };
                    post_vals.push(v.as_f64().unwrap_or(0.0));
                }
                Some(p.peer_means(table.column(p.group_col), &post_vals))
            }
            None => None,
        };

        // Partition scoped rows: deterministic (unaffected) vs predicted
        // (affected directly by the update or indirectly through a changed
        // peer mean).
        let mut numerator = 0.0;
        let mut denominator = 0.0;
        let mut affected: Vec<usize> = Vec::new();
        for i in 0..n {
            if !scope_mask[i] {
                continue;
            }
            let peer_changed = match (&self.peer, &peer_post) {
                (Some((_, pre_means, _)), Some(post_means)) => {
                    (pre_means[i] - post_means[i]).abs() > 1e-12
                }
                _ => false,
            };
            if !when_mask[i] && !peer_changed {
                // Unaffected: deterministic contribution (post = pre).
                let sat = match &self.psi {
                    Some(p) => p.eval_bool_at(table, table, i)?,
                    None => true,
                };
                if sat {
                    match (self.agg, &self.y) {
                        (AggFunc::Count, _) => {
                            numerator += 1.0;
                            denominator += 1.0;
                        }
                        (_, Some(yv)) => {
                            numerator +=
                                yv.eval_at(table, table, i)?.as_f64().ok_or_else(|| {
                                    EngineError::Plan("Output expression is not numeric".into())
                                })?;
                            denominator += 1.0;
                        }
                        _ => unreachable!(),
                    }
                }
            } else {
                affected.push(i);
            }
        }
        if affected.is_empty() {
            return Ok((numerator, denominator));
        }

        // Assemble post-update feature columns for the affected rows:
        // non-updated features are a typed gather; updated features are
        // rebuilt with the update applied where `When` holds (re-typed, as
        // e.g. scaling an integer column produces floats). When a `Set`
        // update mixes value types within one column (e.g. a string
        // literal over a numeric column, or peer-affected rows keeping
        // their pre values), no single column type fits — fall back to
        // per-row encoding, which handles heterogeneous values exactly
        // like the row-oriented evaluator did.
        let mut feat_cols: Vec<Column> = Vec::with_capacity(self.feature_cols.len());
        let mut post_value_cols: Vec<Option<Vec<Value>>> = vec![None; self.feature_cols.len()];
        let mut typed_ok = true;
        for (k, &c) in self.feature_cols.iter().enumerate() {
            let src = table.column(c);
            match self.update_cols.iter().find(|(uc, _)| *uc == c) {
                None => feat_cols.push(src.gather(&affected)),
                Some((_, func)) => {
                    // Typed kernel first: the common numeric / in-dictionary
                    // updates build the post column straight off the typed
                    // buffers. Falls back to per-row `Value`s when the
                    // update mixes types or touches NULLs.
                    if let Some(col) = post_update_column(src, func, &affected, when_mask) {
                        feat_cols.push(col);
                        continue;
                    }
                    let mut post_vals = Vec::with_capacity(affected.len());
                    for &i in &affected {
                        let v = src.value(i);
                        post_vals.push(if when_mask[i] {
                            apply_update(func, &v)?
                        } else {
                            v
                        });
                    }
                    match Column::from_values_inferred(&post_vals) {
                        Ok(col) => feat_cols.push(col),
                        Err(_) => {
                            typed_ok = false;
                            feat_cols.push(src.gather(&affected)); // placeholder
                        }
                    }
                    post_value_cols[k] = Some(post_vals);
                }
            }
        }
        let mut x = if typed_ok {
            let col_refs: Vec<&Column> = feat_cols.iter().collect();
            self.encoder.encode_columns(&col_refs)?
        } else {
            let mut m = Matrix::zeros(0, 0);
            let mut buf: Vec<Value> = Vec::with_capacity(self.feature_cols.len());
            for (row, &i) in affected.iter().enumerate() {
                buf.clear();
                for (k, &c) in self.feature_cols.iter().enumerate() {
                    buf.push(match &post_value_cols[k] {
                        Some(vals) => vals[row].clone(),
                        // Update columns the typed kernel handled have no
                        // materialized values; recompute the post value.
                        None => match self.update_cols.iter().find(|(uc, _)| *uc == c) {
                            Some((_, func)) if when_mask[i] => {
                                apply_update(func, &table.column(c).value(i))?
                            }
                            _ => table.column(c).value(i),
                        },
                    });
                }
                m.push_row(&self.encoder.encode_values(&buf)?)
                    .map_err(EngineError::from)?;
            }
            m
        };
        if let Some(post_means) = &peer_post {
            let peer_vals: Vec<f64> = affected.iter().map(|&i| post_means[i]).collect();
            x = x
                .with_appended_column(&peer_vals)
                .map_err(EngineError::from)?;
        }

        // §3.3 support index: deduplicate feature combinations, then
        // batch-predict the unique rows once per model. Keys are borrowed
        // slices into one flat bit-pattern buffer (filled before the map
        // exists, so the borrows are stable) — no per-row allocation, one
        // hash per row via the entry API.
        let width = x.cols();
        let mut flat: Vec<u64> = Vec::with_capacity(x.rows() * width);
        for k in 0..x.rows() {
            flat.extend(x.row(k).iter().map(|f| f.to_bits()));
        }
        let mut unique: HashMap<&[u64], usize> = HashMap::new();
        let mut row_slot: Vec<usize> = Vec::with_capacity(affected.len());
        let mut unique_x = Matrix::zeros(0, 0);
        for k in 0..x.rows() {
            let next = unique_x.rows();
            let slot = match unique.entry(&flat[k * width..(k + 1) * width]) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(next);
                    unique_x.push_row(x.row(k)).map_err(EngineError::from)?;
                    next
                }
            };
            row_slot.push(slot);
        }
        let mut nums = self.model.predict(&unique_x);
        if self.agg == AggFunc::Count {
            for v in &mut nums {
                *v = v.clamp(0.0, 1.0);
            }
        }
        let dens: Option<Vec<f64>> = self.denom_model.as_ref().map(|m| {
            let mut d = m.predict(&unique_x);
            for v in &mut d {
                *v = v.clamp(0.0, 1.0);
            }
            d
        });
        for &slot in &row_slot {
            numerator += nums[slot];
            denominator += dens.as_ref().map_or(1.0, |d| d[slot]);
        }

        Ok((numerator, denominator))
    }
}

/// Typed fast path for assembling a post-update feature column over the
/// `affected` rows: numeric scale/shift/set and in-dictionary string
/// sets map the typed buffers directly — no per-row [`Value`]
/// materialization. Returns `None` (caller falls back to the exact
/// per-row path) when the source has NULLs, the update would change the
/// column's type in a way the typed path can't express, or the set
/// string is not already interned. Where it applies, it produces a
/// column the feature encoder reads identically to the fallback's
/// (numeric encodings compare by `f64`, one-hot strings by content).
fn post_update_column(
    src: &Column,
    func: &UpdateFunc,
    affected: &[usize],
    when_mask: &[bool],
) -> Option<Column> {
    use hyper_storage::NullBitmap;
    if src.nulls().any_null() {
        return None;
    }
    let all_valid = NullBitmap::all_valid(affected.len());
    let numeric_map = |f: &dyn Fn(f64) -> f64| -> Option<Column> {
        matches!(
            src,
            Column::Int { .. } | Column::Float { .. } | Column::Bool { .. }
        )
        .then(|| Column::Float {
            values: affected
                .iter()
                .map(|&i| {
                    let x = src.f64_at(i).expect("no NULLs checked above");
                    if when_mask[i] {
                        f(x)
                    } else {
                        x
                    }
                })
                .collect(),
            nulls: all_valid.clone(),
        })
    };
    match (func, src) {
        (UpdateFunc::Scale(c), _) => numeric_map(&|x| x * c),
        (UpdateFunc::Shift(c), _) => numeric_map(&|x| x + c),
        (UpdateFunc::Set(Value::Int(v)), Column::Int { values, .. }) => Some(Column::Int {
            values: affected
                .iter()
                .map(|&i| if when_mask[i] { *v } else { values[i] })
                .collect(),
            nulls: all_valid,
        }),
        (UpdateFunc::Set(val), _) if val.as_f64().is_some() => {
            let v = val.as_f64().expect("checked");
            numeric_map(&|_| v)
        }
        (UpdateFunc::Set(Value::Str(s)), Column::Str { codes, dict, .. }) => {
            let code = dict.code_of(s)?;
            Some(Column::Str {
                codes: affected
                    .iter()
                    .map(|&i| if when_mask[i] { code } else { codes[i] })
                    .collect(),
                dict: Arc::clone(dict),
                nulls: all_valid,
            })
        }
        _ => None,
    }
}

fn subset(
    x: &hyper_ml::Matrix,
    y: &[f64],
    d: &[f64],
    idx: &[u32],
) -> Result<(hyper_ml::Matrix, Vec<f64>, Vec<f64>)> {
    let mut xs = hyper_ml::Matrix::zeros(0, 0);
    let mut ys = Vec::with_capacity(idx.len());
    let mut ds = Vec::with_capacity(idx.len());
    for &i in idx {
        xs.push_row(x.row(i as usize)).map_err(EngineError::from)?;
        ys.push(y[i as usize]);
        ds.push(d[i as usize]);
    }
    Ok((xs, ys, ds))
}
