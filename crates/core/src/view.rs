//! Relevant-view construction: lowering the `Use` operator to a storage
//! plan and materializing it (paper §3.1 step 1).
//!
//! The view always has one row per tuple of the relation `R` that holds the
//! update attribute (the `Use` select groups by `R`'s key), with attributes
//! from other relations aggregated to `R`'s grain.

use std::collections::HashMap;

use hyper_query::{QualifiedName, SelectItem, SelectStmt, UseClause, UseCondition};
use hyper_storage::{col, AggExpr, AggFunc, BinOp, Database, Expr, LogicalPlan, Table};

use crate::error::{EngineError, Result};

/// Where a view column came from.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnOrigin {
    /// Source relation.
    pub relation: String,
    /// Source attribute.
    pub attribute: String,
    /// Aggregation applied, if the column was rolled up from another
    /// relation.
    pub aggregated: Option<AggFunc>,
}

/// How the view rows relate to base-relation rows — drives block-scoped
/// invalidation on ingest (which deltas can leave the view bit-identical).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewProvenance {
    /// `Use T`: the view is a verbatim copy of one relation. Any delta
    /// to that relation changes the view.
    AllRows {
        /// The copied relation.
        relation: String,
    },
    /// A single-table select with only constant filters (no joins, no
    /// aggregates, no grouping): a delta row affects the view iff it
    /// passes the filters. Ingest re-runs the `Use` over just the delta
    /// rows to decide survival.
    Filtered {
        /// The single source relation.
        relation: String,
    },
    /// Joins, aggregates, or grouping: any delta to any source relation
    /// may ripple through, so the view is invalidated conservatively.
    Opaque {
        /// All source relations.
        relations: Vec<String>,
    },
}

impl ViewProvenance {
    /// Source relations in declaration order.
    pub fn relations(&self) -> Vec<&str> {
        match self {
            ViewProvenance::AllRows { relation } | ViewProvenance::Filtered { relation } => {
                vec![relation.as_str()]
            }
            ViewProvenance::Opaque { relations } => relations.iter().map(String::as_str).collect(),
        }
    }
}

/// The materialized relevant view plus provenance of its columns.
#[derive(Debug, Clone)]
pub struct RelevantView {
    /// The view data (one row per base-relation tuple).
    pub table: Table,
    /// Per-column origins, parallel to the view schema.
    pub origins: Vec<ColumnOrigin>,
    /// The `Use` clause this view materializes (replayed over delta rows
    /// during ingest to decide whether the view survives).
    pub use_clause: UseClause,
    /// Row-level provenance class, for block-scoped invalidation.
    pub provenance: ViewProvenance,
}

impl RelevantView {
    /// Origin of the named view column.
    pub fn origin_of(&self, column: &str) -> Result<&ColumnOrigin> {
        let idx = crate::hexpr::resolve_column(self.table.schema(), column)?;
        Ok(&self.origins[idx])
    }

    /// View column names.
    pub fn column_names(&self) -> Vec<String> {
        self.table
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect()
    }
}

/// Build the relevant view for a `Use` clause.
pub fn build_relevant_view(db: &Database, use_clause: &UseClause) -> Result<RelevantView> {
    let _span = hyper_trace::span(hyper_trace::Phase::ViewBuild);
    match use_clause {
        UseClause::Table(name) => {
            let table = db.table(name)?.clone();
            let origins = table
                .schema()
                .fields()
                .iter()
                .map(|f| ColumnOrigin {
                    relation: name.clone(),
                    attribute: f.name.clone(),
                    aggregated: None,
                })
                .collect();
            Ok(RelevantView {
                table,
                origins,
                use_clause: use_clause.clone(),
                provenance: ViewProvenance::AllRows {
                    relation: name.clone(),
                },
            })
        }
        UseClause::Select(stmt) => lower_select(db, stmt),
    }
}

struct AliasInfo {
    alias: String,
    table: String,
}

fn lower_select(db: &Database, stmt: &SelectStmt) -> Result<RelevantView> {
    if stmt.from.is_empty() {
        return Err(EngineError::Plan("Use select has no From tables".into()));
    }
    // Resolve aliases.
    let mut aliases: Vec<AliasInfo> = Vec::with_capacity(stmt.from.len());
    for tref in &stmt.from {
        db.table(&tref.table)?; // existence check
        aliases.push(AliasInfo {
            alias: tref.alias.clone().unwrap_or_else(|| tref.table.clone()),
            table: tref.table.clone(),
        });
    }
    {
        let mut seen = HashMap::new();
        for a in &aliases {
            if seen.insert(a.alias.to_ascii_lowercase(), ()).is_some() {
                return Err(EngineError::Plan(format!(
                    "duplicate table alias `{}`",
                    a.alias
                )));
            }
        }
    }

    // Resolver: QualifiedName → fully-qualified "alias.column" string.
    let resolve = |q: &QualifiedName| -> Result<String> {
        match &q.qualifier {
            Some(qual) => {
                let info = aliases
                    .iter()
                    .find(|a| a.alias.eq_ignore_ascii_case(qual))
                    .ok_or_else(|| EngineError::Plan(format!("unknown table alias `{qual}`")))?;
                let table = db.table(&info.table)?;
                let idx = resolve_in_table(table, &q.name)?;
                Ok(format!("{}.{}", info.alias, table.schema().field(idx).name))
            }
            None => {
                let mut found: Option<String> = None;
                for info in &aliases {
                    let table = db.table(&info.table)?;
                    if let Ok(idx) = resolve_in_table(table, &q.name) {
                        if found.is_some() {
                            return Err(EngineError::Plan(format!(
                                "attribute `{}` is ambiguous; qualify it",
                                q.name
                            )));
                        }
                        found = Some(format!("{}.{}", info.alias, table.schema().field(idx).name));
                    }
                }
                found.ok_or_else(|| EngineError::Plan(format!("unknown attribute `{}`", q.name)))
            }
        }
    };

    // Per-alias scan with qualified column names.
    let plan_for = |info: &AliasInfo| -> Result<LogicalPlan> {
        let table = db.table(&info.table)?;
        let names: Vec<String> = table
            .schema()
            .fields()
            .iter()
            .map(|f| format!("{}.{}", info.alias, f.name))
            .collect();
        Ok(LogicalPlan::Rename {
            input: Box::new(LogicalPlan::scan(&info.table)),
            new_names: names,
        })
    };

    // Classify conditions.
    let mut joins: Vec<(String, String)> = Vec::new();
    let mut filters: Vec<Expr> = Vec::new();
    for cond in &stmt.conditions {
        match cond {
            UseCondition::Join(l, r) => joins.push((resolve(l)?, resolve(r)?)),
            UseCondition::Filter { column, op, value } => {
                let c = col(resolve(column)?);
                let lit = Expr::Lit(value.clone());
                let e = match op {
                    hyper_query::HOp::Eq => c.eq(lit),
                    hyper_query::HOp::Ne => c.ne(lit),
                    hyper_query::HOp::Lt => c.lt(lit),
                    hyper_query::HOp::Le => c.le(lit),
                    hyper_query::HOp::Gt => c.gt(lit),
                    hyper_query::HOp::Ge => c.ge(lit),
                    other => {
                        return Err(EngineError::Plan(format!(
                            "unsupported Where operator {other}"
                        )))
                    }
                };
                filters.push(e);
            }
        }
    }

    // Join order: start from the first table, greedily attach tables
    // connected by a join condition.
    let alias_of =
        |qualified: &str| -> String { qualified.split('.').next().unwrap_or("").to_string() };
    let mut joined: Vec<String> = vec![aliases[0].alias.clone()];
    let mut plan = plan_for(&aliases[0])?;
    let mut remaining: Vec<&AliasInfo> = aliases.iter().skip(1).collect();
    let mut used_joins = vec![false; joins.len()];
    while !remaining.is_empty() {
        let mut attached = None;
        'outer: for (ri, info) in remaining.iter().enumerate() {
            for (ji, (l, r)) in joins.iter().enumerate() {
                if used_joins[ji] {
                    continue;
                }
                let (la, ra) = (alias_of(l), alias_of(r));
                let connects = (joined.contains(&la) && ra == info.alias)
                    || (joined.contains(&ra) && la == info.alias);
                if connects {
                    let (left_key, right_key) = if joined.contains(&la) {
                        (l.clone(), r.clone())
                    } else {
                        (r.clone(), l.clone())
                    };
                    used_joins[ji] = true;
                    attached = Some((ri, left_key, right_key));
                    break 'outer;
                }
            }
        }
        let Some((ri, left_key, right_key)) = attached else {
            return Err(EngineError::Plan(
                "Use select tables are not connected by join conditions \
                 (cross products are not supported)"
                    .into(),
            ));
        };
        let info = remaining.remove(ri);
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(plan_for(info)?),
            left_on: vec![left_key],
            right_on: vec![right_key],
        };
        joined.push(info.alias.clone());
    }
    // Any unused join conditions become equality filters (e.g. a redundant
    // second condition between already-joined tables).
    for (ji, (l, r)) in joins.iter().enumerate() {
        if !used_joins[ji] {
            filters.push(Expr::Binary(
                BinOp::Eq,
                Box::new(col(l.clone())),
                Box::new(col(r.clone())),
            ));
        }
    }
    for f in filters {
        plan = plan.filter(f);
    }

    // Aggregation + projection.
    let has_aggregates = stmt
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }));
    let group_cols: Vec<String> = stmt.group_by.iter().map(&resolve).collect::<Result<_>>()?;

    let mut origins: Vec<ColumnOrigin> = Vec::with_capacity(stmt.items.len());
    let mut out_names: Vec<String> = Vec::with_capacity(stmt.items.len());

    let origin_of_qualified = |qualified: &str| -> ColumnOrigin {
        let mut parts = qualified.splitn(2, '.');
        let alias = parts.next().unwrap_or("");
        let attr = parts.next().unwrap_or("").to_string();
        let relation = aliases
            .iter()
            .find(|a| a.alias == alias)
            .map(|a| a.table.clone())
            .unwrap_or_default();
        ColumnOrigin {
            relation,
            attribute: attr,
            aggregated: None,
        }
    };

    if has_aggregates || !group_cols.is_empty() {
        let mut aggs: Vec<AggExpr> = Vec::new();
        // The Aggregate operator outputs group columns first, then agg
        // aliases; project afterwards to the select-item order and names.
        for item in &stmt.items {
            match item {
                SelectItem::Column { name, alias } => {
                    let q = resolve(name)?;
                    if !group_cols.contains(&q) {
                        return Err(EngineError::Plan(format!(
                            "column `{name}` must appear in Group By"
                        )));
                    }
                    out_names.push(alias.clone().unwrap_or_else(|| name.name.clone()));
                    origins.push(origin_of_qualified(&q));
                }
                SelectItem::Aggregate { func, arg, alias } => {
                    let q = resolve(arg)?;
                    aggs.push(AggExpr::new(*func, Some(col(q.clone())), alias.clone()));
                    out_names.push(alias.clone());
                    let mut o = origin_of_qualified(&q);
                    o.aggregated = Some(*func);
                    origins.push(o);
                }
            }
        }
        let group_refs: Vec<&str> = group_cols.iter().map(String::as_str).collect();
        plan = plan.aggregate(&group_refs, aggs);
        // Project to select-item order/names.
        let mut exprs: Vec<(Expr, String)> = Vec::with_capacity(stmt.items.len());
        for (item, out) in stmt.items.iter().zip(&out_names) {
            let source = match item {
                SelectItem::Column { name, .. } => resolve(name)?,
                SelectItem::Aggregate { alias, .. } => alias.clone(),
            };
            exprs.push((col(source), out.clone()));
        }
        plan = plan.project(exprs);
    } else {
        let mut exprs: Vec<(Expr, String)> = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            let SelectItem::Column { name, alias } = item else {
                unreachable!("no aggregates in this branch")
            };
            let q = resolve(name)?;
            let out = alias.clone().unwrap_or_else(|| name.name.clone());
            out_names.push(out.clone());
            origins.push(origin_of_qualified(&q));
            exprs.push((col(q), out));
        }
        plan = plan.project(exprs);
    }

    // Output name uniqueness.
    {
        let mut seen = HashMap::new();
        for n in &out_names {
            if seen.insert(n.to_ascii_lowercase(), ()).is_some() {
                return Err(EngineError::Plan(format!(
                    "duplicate output column `{n}` in Use select"
                )));
            }
        }
    }

    let mut table = plan.execute(db)?;
    table.set_name("relevant_view");
    let has_joins = stmt
        .conditions
        .iter()
        .any(|c| matches!(c, UseCondition::Join(..)));
    let provenance =
        if stmt.from.len() == 1 && !has_joins && !has_aggregates && stmt.group_by.is_empty() {
            ViewProvenance::Filtered {
                relation: stmt.from[0].table.clone(),
            }
        } else {
            ViewProvenance::Opaque {
                relations: stmt.from.iter().map(|t| t.table.clone()).collect(),
            }
        };
    Ok(RelevantView {
        table,
        origins,
        use_clause: UseClause::Select(stmt.clone()),
        provenance,
    })
}

fn resolve_in_table(table: &Table, name: &str) -> Result<usize> {
    crate::hexpr::resolve_column(table.schema(), name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_query::parse_query;
    use hyper_storage::{DataType, Field, ForeignKey, Schema, TableBuilder, Value};

    fn amazon_db() -> Database {
        let mut db = Database::new();
        let mut prod = TableBuilder::with_key(
            "product",
            Schema::new(vec![
                Field::new("pid", DataType::Int),
                Field::new("category", DataType::Str),
                Field::new("price", DataType::Float),
                Field::new("brand", DataType::Str),
            ])
            .unwrap(),
            &["pid"],
        )
        .unwrap();
        for (pid, cat, price, brand) in [
            (1, "Laptop", 999.0, "Vaio"),
            (2, "Laptop", 529.0, "Asus"),
            (3, "Laptop", 599.0, "HP"),
        ] {
            prod.push(vec![pid.into(), cat.into(), price.into(), brand.into()])
                .unwrap();
        }
        let mut rev = TableBuilder::with_key(
            "review",
            Schema::new(vec![
                Field::new("pid", DataType::Int),
                Field::new("rid", DataType::Int),
                Field::new("sentiment", DataType::Float),
                Field::new("rating", DataType::Int),
            ])
            .unwrap(),
            &["pid", "rid"],
        )
        .unwrap();
        for (pid, rid, s, r) in [
            (1, 1, -0.95, 2),
            (2, 2, 0.7, 4),
            (2, 3, -0.2, 1),
            (3, 4, 0.23, 3),
            (3, 5, 0.95, 5),
        ] {
            rev.push(vec![pid.into(), rid.into(), s.into(), r.into()])
                .unwrap();
        }
        db.add_table(prod.build()).unwrap();
        db.add_table(rev.build()).unwrap();
        db.add_foreign_key(ForeignKey {
            child_table: "review".into(),
            child_columns: vec!["pid".into()],
            parent_table: "product".into(),
            parent_columns: vec!["pid".into()],
        })
        .unwrap();
        db
    }

    fn figure4_use() -> UseClause {
        let text = "
            Use (Select T1.PID, T1.Category, T1.Price, T1.Brand,
                        Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng
                 From product As T1, review As T2
                 Where T1.PID = T2.PID
                 Group By T1.PID, T1.Category, T1.Price, T1.Brand)
            Update(Price) = 1.1 * Pre(Price)
            Output Avg(Post(Rtng))";
        match parse_query(text).unwrap() {
            hyper_query::HypotheticalQuery::WhatIf(q) => q.use_clause,
            _ => panic!(),
        }
    }

    #[test]
    fn figure4_view_shape_and_values() {
        let db = amazon_db();
        let v = build_relevant_view(&db, &figure4_use()).unwrap();
        assert_eq!(v.table.num_rows(), 3, "one row per product");
        assert_eq!(
            v.column_names(),
            vec!["PID", "Category", "Price", "Brand", "Senti", "Rtng"]
        );
        // Asus (pid 2): avg rating (4+1)/2 = 2.5, avg sentiment 0.25.
        let pid = v.table.column_by_name("PID").unwrap();
        let rtng = v.table.column_by_name("Rtng").unwrap();
        let senti = v.table.column_by_name("Senti").unwrap();
        let asus = pid.iter().position(|p| p == Value::Int(2)).unwrap();
        assert_eq!(rtng.value(asus), Value::Float(2.5));
        assert!((senti.value(asus).as_f64().unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn origins_track_aggregation() {
        let db = amazon_db();
        let v = build_relevant_view(&db, &figure4_use()).unwrap();
        let o = v.origin_of("Rtng").unwrap();
        assert_eq!(o.relation, "review");
        assert_eq!(o.attribute, "rating");
        assert_eq!(o.aggregated, Some(AggFunc::Avg));
        let o = v.origin_of("Price").unwrap();
        assert_eq!(o.relation, "product");
        assert_eq!(o.aggregated, None);
    }

    #[test]
    fn bare_table_use() {
        let db = amazon_db();
        let v = build_relevant_view(&db, &UseClause::Table("product".into())).unwrap();
        assert_eq!(v.table.num_rows(), 3);
        assert_eq!(v.origins[2].attribute, "price");
    }

    #[test]
    fn provenance_classification() {
        let db = amazon_db();
        let v = build_relevant_view(&db, &UseClause::Table("product".into())).unwrap();
        assert_eq!(
            v.provenance,
            ViewProvenance::AllRows {
                relation: "product".into()
            }
        );
        assert_eq!(v.use_clause, UseClause::Table("product".into()));

        // Single table + constant filter, no joins/aggregates → Filtered.
        let text = "Use (Select T1.PID, T1.Price From product As T1 Where T1.Price < 700)
                    Update(Price) = 1 Output Count(*)";
        let q = match parse_query(text).unwrap() {
            hyper_query::HypotheticalQuery::WhatIf(q) => q.use_clause,
            _ => panic!(),
        };
        let v = build_relevant_view(&db, &q).unwrap();
        assert_eq!(
            v.provenance,
            ViewProvenance::Filtered {
                relation: "product".into()
            }
        );
        assert_eq!(v.use_clause, q, "the lowered clause is kept verbatim");

        // Joins + aggregates → Opaque over all source relations.
        let v = build_relevant_view(&db, &figure4_use()).unwrap();
        assert_eq!(
            v.provenance,
            ViewProvenance::Opaque {
                relations: vec!["product".into(), "review".into()]
            }
        );
    }

    #[test]
    fn unknown_table_and_alias_rejected() {
        let db = amazon_db();
        assert!(build_relevant_view(&db, &UseClause::Table("ghost".into())).is_err());
        let text = "Use (Select T9.PID From product As T1)
                    Update(X) = 1 Output Count(*)";
        let q = match parse_query(text).unwrap() {
            hyper_query::HypotheticalQuery::WhatIf(q) => q.use_clause,
            _ => panic!(),
        };
        assert!(build_relevant_view(&db, &q).is_err());
    }

    #[test]
    fn disconnected_tables_rejected() {
        let db = amazon_db();
        let text = "Use (Select T1.PID From product As T1, review As T2)
                    Update(X) = 1 Output Count(*)";
        let q = match parse_query(text).unwrap() {
            hyper_query::HypotheticalQuery::WhatIf(q) => q.use_clause,
            _ => panic!(),
        };
        let err = build_relevant_view(&db, &q).unwrap_err();
        assert!(matches!(err, EngineError::Plan(_)));
    }

    #[test]
    fn non_grouped_column_rejected() {
        let db = amazon_db();
        let text = "Use (Select T1.Brand, Avg(T2.Rating) As R
                         From product As T1, review As T2
                         Where T1.PID = T2.PID
                         Group By T1.PID)
                    Update(X) = 1 Output Count(*)";
        let q = match parse_query(text).unwrap() {
            hyper_query::HypotheticalQuery::WhatIf(q) => q.use_clause,
            _ => panic!(),
        };
        assert!(build_relevant_view(&db, &q).is_err());
    }

    #[test]
    fn filter_conditions_in_where() {
        let db = amazon_db();
        let text = "Use (Select T1.PID, T1.Price, Avg(T2.Rating) As R
                         From product As T1, review As T2
                         Where T1.PID = T2.PID And T1.Category = 'Laptop' And T1.Price < 700
                         Group By T1.PID, T1.Price)
                    Update(Price) = 1 Output Count(*)";
        let q = match parse_query(text).unwrap() {
            hyper_query::HypotheticalQuery::WhatIf(q) => q.use_clause,
            _ => panic!(),
        };
        let v = build_relevant_view(&db, &q).unwrap();
        assert_eq!(v.table.num_rows(), 2, "asus + hp under 700");
    }
}
