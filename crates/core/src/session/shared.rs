//! The process-wide shared artifact store.
//!
//! Relevant views and Prop.-1 block decompositions depend only on the
//! `(database, causal graph)` pair, and fitted estimators key every other
//! input (query parts, adjustment set, estimator configuration) into
//! their cache string — so none of them is inherently *session* state.
//! This module hoists them to process scope: a [`SharedArtifactStore`]
//! holds one [`SharedShard`] per `(database fingerprint, graph
//! fingerprint)` pair, and every [`super::ArtifactCache`] whose session
//! opted in (the default) resolves misses through its shard.
//!
//! That is the multi-tenant shape what-if serving needs: N concurrent
//! sessions over one dataset — per-tenant configs, bounded per-session
//! LRU budgets, independent [`super::SessionStats`] — paying for **one**
//! view build and **one** estimator training per distinct artifact,
//! process-wide. Keys are *content* fingerprints
//! ([`hyper_storage::Database::fingerprint`] /
//! [`hyper_causal::CausalGraph::fingerprint`]), so sessions share whether
//! they clone one `Arc<Database>` or loaded equal data independently.
//!
//! Concurrency is single-flight per key, across sessions: when many
//! sessions (or many threads of one session) miss the same key at once,
//! exactly one builds while the rest wait and record a *shared hit*
//! ([`super::SessionStats::view_shared_hits`] and friends). A failed or
//! panicking build caches nothing; the next requester retries.
//!
//! ## The byte budget
//!
//! By default the shared tier is unbounded — one entry per *distinct*
//! artifact, with per-session `CacheBudget`s bounding the local tiers.
//! Processes cycling through many datasets can instead set a global
//! byte budget ([`SharedArtifactStore::set_budget_bytes`], or
//! [`super::SessionBuilder::shared_budget_bytes`]): every entry carries
//! an approximate byte size recorded when it is built, and exceeding the
//! budget evicts globally least-recently-used entries **across all
//! shards** until the store fits again. Eviction only drops the store's
//! `Arc` — sessions already holding an artifact keep it — and when the
//! building session had persistence enabled the artifact was already
//! spilled to its disk tier at build time, so an evicted entry re-serves
//! from disk instead of retraining. [`SharedArtifactStore::clear`]
//! reclaims everything wholesale.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};

use hyper_causal::BlockDecomposition;

use crate::error::Result;
use crate::view::RelevantView;
use crate::whatif::estimator::CausalEstimator;

/// How a shared-store fetch was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FetchOutcome {
    /// This caller ran the builder (counts as a miss for its session —
    /// or a disk hit, when the builder recovered the artifact from the
    /// persist directory instead of building it).
    Built,
    /// The artifact already existed — or another session/thread was
    /// building it and this caller waited (a shared hit either way).
    Shared,
}

/// One single-flight slot: a write-once cell plus the per-key init lock
/// that serializes builders without blocking other keys, stamped for LRU
/// eviction under a byte budget.
struct SharedSlot<T> {
    cell: OnceLock<Arc<T>>,
    init: Mutex<()>,
    /// Approximate artifact footprint, recorded at build.
    bytes: AtomicUsize,
    /// Logical timestamp of the last hit or build (store-wide clock).
    last_used: AtomicU64,
}

impl<T> Default for SharedSlot<T> {
    fn default() -> SharedSlot<T> {
        SharedSlot {
            cell: OnceLock::new(),
            init: Mutex::new(()),
            bytes: AtomicUsize::new(0),
            last_used: AtomicU64::new(0),
        }
    }
}

/// A keyed, single-flight cache shared across sessions.
pub(crate) struct SharedCache<T> {
    map: RwLock<HashMap<String, Arc<SharedSlot<T>>>>,
}

impl<T> Default for SharedCache<T> {
    fn default() -> SharedCache<T> {
        SharedCache {
            map: RwLock::new(HashMap::new()),
        }
    }
}

impl<T> SharedCache<T> {
    /// Fetch `key`, building via `build` if absent; reports whether this
    /// caller performed the build and how many bytes the build added
    /// (`size_of` prices a freshly built artifact). `clock` stamps LRU
    /// recency when the store enforces a byte budget.
    pub(crate) fn get_or_build(
        &self,
        key: &str,
        clock: Option<&AtomicU64>,
        size_of: impl FnOnce(&T) -> usize,
        build: impl FnOnce() -> Result<T>,
    ) -> Result<(Arc<T>, FetchOutcome, usize)> {
        let touch = |slot: &SharedSlot<T>| {
            if let Some(clock) = clock {
                let now = clock.fetch_add(1, Ordering::Relaxed);
                slot.last_used.store(now, Ordering::Relaxed);
            }
        };
        if let Some(slot) = self.map.read().unwrap_or_else(|e| e.into_inner()).get(key) {
            if let Some(v) = slot.cell.get() {
                touch(slot);
                return Ok((Arc::clone(v), FetchOutcome::Shared, 0));
            }
        }
        let slot = {
            let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        // Serialize builders per key; a panicked builder poisons only
        // this lock and leaves the cell empty — recover and retry.
        let _guard = slot.init.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = slot.cell.get() {
            touch(&slot);
            return Ok((Arc::clone(v), FetchOutcome::Shared, 0));
        }
        let built = Arc::new(build()?);
        let bytes = size_of(&built);
        slot.bytes.store(bytes, Ordering::Relaxed);
        slot.cell
            .set(Arc::clone(&built))
            .unwrap_or_else(|_| unreachable!("init lock held"));
        touch(&slot);
        Ok((built, FetchOutcome::Built, bytes))
    }

    /// Install an already-built artifact (survivor migration after a
    /// delta refresh). Returns the bytes newly charged; a concurrently
    /// built entry wins and the insert is then a free no-op.
    pub(crate) fn insert_prebuilt(
        &self,
        key: &str,
        value: Arc<T>,
        bytes: usize,
        clock: Option<&AtomicU64>,
    ) -> usize {
        let slot = {
            let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        let _guard = slot.init.lock().unwrap_or_else(|e| e.into_inner());
        if slot.cell.get().is_some() {
            return 0;
        }
        slot.bytes.store(bytes, Ordering::Relaxed);
        slot.cell
            .set(value)
            .unwrap_or_else(|_| unreachable!("init lock held"));
        if let Some(clock) = clock {
            let now = clock.fetch_add(1, Ordering::Relaxed);
            slot.last_used.store(now, Ordering::Relaxed);
        }
        bytes
    }

    /// True when `key` is present and built (no side effects).
    pub(crate) fn peek(&self, key: &str) -> bool {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .is_some_and(|slot| slot.cell.get().is_some())
    }

    /// Number of built entries.
    fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|slot| slot.cell.get().is_some())
            .count()
    }

    /// Recorded bytes across built entries.
    fn bytes(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|slot| slot.cell.get().is_some())
            .map(|slot| slot.bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Every built entry as an eviction candidate: `(last_used, key,
    /// bytes)`.
    fn candidates(&self) -> Vec<(u64, String, usize)> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|(_, slot)| slot.cell.get().is_some())
            .map(|(k, slot)| {
                (
                    slot.last_used.load(Ordering::Relaxed),
                    k.clone(),
                    slot.bytes.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Drop a built entry, returning the bytes it accounted for (0 when
    /// absent or lost to a race).
    fn remove(&self, key: &str) -> usize {
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        match map.get(key) {
            Some(slot) if slot.cell.get().is_some() => {
                let bytes = slot.bytes.load(Ordering::Relaxed);
                map.remove(key);
                bytes
            }
            _ => 0,
        }
    }
}

/// The shared artifacts of one `(database, graph)` pair, plus a handle
/// back to the store for budget accounting.
pub(crate) struct SharedShard {
    pub(crate) views: SharedCache<RelevantView>,
    pub(crate) estimators: SharedCache<CausalEstimator>,
    pub(crate) blocks: SharedCache<BlockDecomposition>,
    store: Weak<StoreInner>,
    /// This shard's `(db_fp, graph_fp)` key — used to detect whether the
    /// shard is still attached to the store (a `clear()` detaches it).
    key: (u64, u64),
}

/// Which of a shard's caches an eviction victim lives in.
#[derive(Clone, Copy)]
enum CacheKind {
    View,
    Estimator,
    Blocks,
}

impl SharedShard {
    /// Fetch through one of this shard's caches, stamping recency and
    /// charging freshly built bytes against the store's budget.
    pub(crate) fn fetch<T>(
        &self,
        cache: impl FnOnce(&SharedShard) -> &SharedCache<T>,
        key: &str,
        size_of: impl FnOnce(&T) -> usize,
        build: impl FnOnce() -> Result<T>,
    ) -> Result<(Arc<T>, FetchOutcome)> {
        let store = self.store.upgrade();
        let clock = store.as_deref().map(|s| &s.clock);
        let (v, outcome, bytes) = cache(self).get_or_build(key, clock, size_of, build)?;
        self.charge(store.as_ref(), bytes);
        Ok((v, outcome))
    }

    /// Install an already-built artifact into one of this shard's caches
    /// (survivor migration after a delta refresh), charging any newly
    /// stored bytes against the store's budget exactly like a build.
    pub(crate) fn insert_prebuilt<T>(
        &self,
        cache: impl FnOnce(&SharedShard) -> &SharedCache<T>,
        key: &str,
        value: Arc<T>,
        bytes: usize,
    ) {
        let store = self.store.upgrade();
        let clock = store.as_deref().map(|s| &s.clock);
        let charged = cache(self).insert_prebuilt(key, value, bytes, clock);
        self.charge(store.as_ref(), charged);
    }

    /// Charge freshly stored bytes against the store's budget — but only
    /// while this shard is still attached: after a `clear()`, surviving
    /// sessions keep building into their detached shard, but those
    /// entries are invisible to the eviction scan — charging for them
    /// would permanently overcommit the budget and thrash the attached
    /// shards' entries.
    fn charge(&self, store: Option<&Arc<StoreInner>>, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let Some(s) = store else { return };
        let attached = {
            let shards = s.shards.lock().unwrap_or_else(|e| e.into_inner());
            shards
                .get(&self.key)
                .is_some_and(|cur| std::ptr::eq(Arc::as_ptr(cur), self))
        };
        if attached {
            s.total_bytes.fetch_add(bytes, Ordering::Relaxed);
            s.enforce_budget();
        }
    }
}

/// Counts of distinct artifacts held by the process-wide store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedStoreStats {
    /// Distinct `(database, graph)` shards.
    pub shards: usize,
    /// Relevant views held, across shards.
    pub views: usize,
    /// Fitted estimators held, across shards.
    pub estimators: usize,
    /// Block decompositions held, across shards.
    pub blocks: usize,
    /// Approximate bytes held, across shards (recorded at build time).
    pub approx_bytes: usize,
    /// Configured byte budget (0 = unbounded).
    pub budget_bytes: usize,
    /// Entries evicted to honor the byte budget, over the store's
    /// lifetime.
    pub evictions: u64,
}

struct StoreInner {
    shards: Mutex<HashMap<(u64, u64), Arc<SharedShard>>>,
    /// Store-wide LRU clock (ticks on every shared fetch).
    clock: AtomicU64,
    /// Approximate bytes across all attached shards.
    total_bytes: AtomicUsize,
    /// Byte budget; 0 means unbounded.
    budget_bytes: AtomicUsize,
    /// Budget evictions performed.
    evictions: AtomicU64,
}

impl StoreInner {
    /// Subtract freed bytes without ever underflowing: `clear()` may
    /// have reset the counter to zero while an evictor still held a
    /// stale `freed` amount, and a wrapped counter would read as
    /// permanently over budget.
    fn release_bytes(&self, freed: usize) {
        let _ = self
            .total_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some(t.saturating_sub(freed))
            });
    }

    /// Evict globally least-recently-used entries until the recorded
    /// total fits the budget again. One scan per enforcement pass
    /// collects every candidate (stamp, bytes) sorted oldest-first, then
    /// evicts down the list — evicting K entries costs one store walk,
    /// not K. The newest entry always survives (evicting the artifact
    /// that triggered enforcement would thrash): with one candidate
    /// left, enforcement stops even over budget.
    fn enforce_budget(self: &Arc<StoreInner>) {
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        // Bounded passes: racing inserts re-trigger their own
        // enforcement, so there is no need to chase them here.
        for _ in 0..4 {
            if self.total_bytes.load(Ordering::Relaxed) <= budget {
                return;
            }
            let mut victims: Vec<(u64, Arc<SharedShard>, CacheKind, String, usize)> = {
                let shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
                shards
                    .values()
                    .flat_map(|shard| {
                        [
                            (CacheKind::View, shard.views.candidates()),
                            (CacheKind::Estimator, shard.estimators.candidates()),
                            (CacheKind::Blocks, shard.blocks.candidates()),
                        ]
                        .into_iter()
                        .flat_map(|(kind, cands)| {
                            let shard = Arc::clone(shard);
                            cands.into_iter().map(move |(stamp, key, bytes)| {
                                (stamp, Arc::clone(&shard), kind, key, bytes)
                            })
                        })
                        .collect::<Vec<_>>()
                    })
                    .collect()
            };
            if victims.len() <= 1 {
                return;
            }
            victims.sort_by_key(|(stamp, ..)| *stamp);
            victims.pop(); // the newest entry always survives
            let mut evicted_any = false;
            for (_, shard, kind, key, _) in victims {
                if self.total_bytes.load(Ordering::Relaxed) <= budget {
                    return;
                }
                let freed = match kind {
                    CacheKind::View => shard.views.remove(&key),
                    CacheKind::Estimator => shard.estimators.remove(&key),
                    CacheKind::Blocks => shard.blocks.remove(&key),
                };
                if freed > 0 {
                    self.release_bytes(freed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    evicted_any = true;
                }
            }
            if !evicted_any {
                // Every remove lost a race; nothing more to do here.
                return;
            }
        }
    }
}

/// Process-wide store of session-independent artifacts, sharded by
/// `(database fingerprint, graph fingerprint)`. See the module docs.
pub struct SharedArtifactStore {
    inner: Arc<StoreInner>,
}

impl Default for SharedArtifactStore {
    fn default() -> SharedArtifactStore {
        SharedArtifactStore {
            inner: Arc::new(StoreInner {
                shards: Mutex::new(HashMap::new()),
                clock: AtomicU64::new(1),
                total_bytes: AtomicUsize::new(0),
                budget_bytes: AtomicUsize::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }
}

static GLOBAL: OnceLock<SharedArtifactStore> = OnceLock::new();

impl SharedArtifactStore {
    /// The process-wide store (created on first use).
    pub fn global() -> &'static SharedArtifactStore {
        GLOBAL.get_or_init(SharedArtifactStore::default)
    }

    /// The shard for a `(database, graph)` fingerprint pair, created
    /// empty on first request.
    pub(crate) fn shard(&self, db_fp: u64, graph_fp: u64) -> Arc<SharedShard> {
        let mut shards = self.inner.shards.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(shards.entry((db_fp, graph_fp)).or_insert_with(|| {
            Arc::new(SharedShard {
                views: SharedCache::default(),
                estimators: SharedCache::default(),
                blocks: SharedCache::default(),
                store: Arc::downgrade(&self.inner),
                key: (db_fp, graph_fp),
            })
        }))
    }

    /// Cap the store's approximate footprint. When an insert pushes the
    /// recorded total past the budget, globally least-recently-used
    /// entries (across every shard and artifact kind) are dropped until
    /// it fits; `0` restores the unbounded default. Sizes are
    /// approximate — typed buffer lengths, not allocator truth — so
    /// treat the budget as a watermark, not a hard ceiling.
    pub fn set_budget_bytes(&self, bytes: usize) {
        self.inner.budget_bytes.store(bytes, Ordering::Relaxed);
        self.inner.enforce_budget();
    }

    /// Snapshot of the store's size.
    pub fn stats(&self) -> SharedStoreStats {
        let shards = self.inner.shards.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = SharedStoreStats {
            shards: shards.len(),
            budget_bytes: self.inner.budget_bytes.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            ..SharedStoreStats::default()
        };
        for shard in shards.values() {
            s.views += shard.views.len();
            s.estimators += shard.estimators.len();
            s.blocks += shard.blocks.len();
            s.approx_bytes += shard.views.bytes() + shard.estimators.bytes() + shard.blocks.bytes();
        }
        s
    }

    /// Drop every shard. Existing sessions hold their shard by `Arc` and
    /// keep their artifacts; *new* sessions start against empty shards.
    /// Use this to reclaim memory after retiring a dataset (byte
    /// accounting resets with the shards).
    pub fn clear(&self) {
        self.inner
            .shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.inner.total_bytes.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SharedArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SharedArtifactStore")
            .field("shards", &s.shards)
            .field("views", &s.views)
            .field("estimators", &s.estimators)
            .field("blocks", &s.blocks)
            .field("approx_bytes", &s.approx_bytes)
            .field("budget_bytes", &s.budget_bytes)
            .field("evictions", &s.evictions)
            .finish()
    }
}
