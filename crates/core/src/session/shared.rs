//! The process-wide shared artifact store.
//!
//! Relevant views and Prop.-1 block decompositions depend only on the
//! `(database, causal graph)` pair, and fitted estimators key every other
//! input (query parts, adjustment set, estimator configuration) into
//! their cache string — so none of them is inherently *session* state.
//! This module hoists them to process scope: a [`SharedArtifactStore`]
//! holds one [`SharedShard`] per `(database fingerprint, graph
//! fingerprint)` pair, and every [`super::ArtifactCache`] whose session
//! opted in (the default) resolves misses through its shard.
//!
//! That is the multi-tenant shape what-if serving needs: N concurrent
//! sessions over one dataset — per-tenant configs, bounded per-session
//! LRU budgets, independent [`super::SessionStats`] — paying for **one**
//! view build and **one** estimator training per distinct artifact,
//! process-wide. Keys are *content* fingerprints
//! ([`hyper_storage::Database::fingerprint`] /
//! [`hyper_causal::CausalGraph::fingerprint`]), so sessions share whether
//! they clone one `Arc<Database>` or loaded equal data independently.
//!
//! Concurrency is single-flight per key, across sessions: when many
//! sessions (or many threads of one session) miss the same key at once,
//! exactly one builds while the rest wait and record a *shared hit*
//! ([`super::SessionStats::view_shared_hits`] and friends). A failed or
//! panicking build caches nothing; the next requester retries.
//!
//! The shared tier is deliberately unbounded — it holds one entry per
//! *distinct* artifact, and per-session `CacheBudget`s bound the local
//! tiers — but long-running processes cycling through many datasets can
//! reclaim it wholesale with [`SharedArtifactStore::clear`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use hyper_causal::BlockDecomposition;

use crate::error::Result;
use crate::view::RelevantView;
use crate::whatif::estimator::CausalEstimator;

/// How a shared-store fetch was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FetchOutcome {
    /// This caller ran the builder (counts as a miss for its session).
    Built,
    /// The artifact already existed — or another session/thread was
    /// building it and this caller waited (a shared hit either way).
    Shared,
}

/// One single-flight slot: a write-once cell plus the per-key init lock
/// that serializes builders without blocking other keys.
struct SharedSlot<T> {
    cell: OnceLock<Arc<T>>,
    init: Mutex<()>,
}

impl<T> Default for SharedSlot<T> {
    fn default() -> SharedSlot<T> {
        SharedSlot {
            cell: OnceLock::new(),
            init: Mutex::new(()),
        }
    }
}

/// A keyed, unbounded, single-flight cache shared across sessions.
pub(crate) struct SharedCache<T> {
    map: RwLock<HashMap<String, Arc<SharedSlot<T>>>>,
}

impl<T> Default for SharedCache<T> {
    fn default() -> SharedCache<T> {
        SharedCache {
            map: RwLock::new(HashMap::new()),
        }
    }
}

impl<T> SharedCache<T> {
    /// Fetch `key`, building via `build` if absent; reports whether this
    /// caller performed the build.
    pub(crate) fn get_or_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<T>,
    ) -> Result<(Arc<T>, FetchOutcome)> {
        if let Some(slot) = self.map.read().unwrap_or_else(|e| e.into_inner()).get(key) {
            if let Some(v) = slot.cell.get() {
                return Ok((Arc::clone(v), FetchOutcome::Shared));
            }
        }
        let slot = {
            let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        // Serialize builders per key; a panicked builder poisons only
        // this lock and leaves the cell empty — recover and retry.
        let _guard = slot.init.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = slot.cell.get() {
            return Ok((Arc::clone(v), FetchOutcome::Shared));
        }
        let built = Arc::new(build()?);
        slot.cell
            .set(Arc::clone(&built))
            .unwrap_or_else(|_| unreachable!("init lock held"));
        Ok((built, FetchOutcome::Built))
    }

    /// True when `key` is present and built (no side effects).
    pub(crate) fn peek(&self, key: &str) -> bool {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .is_some_and(|slot| slot.cell.get().is_some())
    }

    /// Number of built entries.
    fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|slot| slot.cell.get().is_some())
            .count()
    }
}

/// The shared artifacts of one `(database, graph)` pair.
#[derive(Default)]
pub(crate) struct SharedShard {
    pub(crate) views: SharedCache<RelevantView>,
    pub(crate) estimators: SharedCache<CausalEstimator>,
    pub(crate) blocks: SharedCache<BlockDecomposition>,
}

/// Counts of distinct artifacts held by the process-wide store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedStoreStats {
    /// Distinct `(database, graph)` shards.
    pub shards: usize,
    /// Relevant views held, across shards.
    pub views: usize,
    /// Fitted estimators held, across shards.
    pub estimators: usize,
    /// Block decompositions held, across shards.
    pub blocks: usize,
}

/// Process-wide store of session-independent artifacts, sharded by
/// `(database fingerprint, graph fingerprint)`. See the module docs.
#[derive(Default)]
pub struct SharedArtifactStore {
    shards: Mutex<HashMap<(u64, u64), Arc<SharedShard>>>,
}

static GLOBAL: OnceLock<SharedArtifactStore> = OnceLock::new();

impl SharedArtifactStore {
    /// The process-wide store (created on first use).
    pub fn global() -> &'static SharedArtifactStore {
        GLOBAL.get_or_init(SharedArtifactStore::default)
    }

    /// The shard for a `(database, graph)` fingerprint pair, created
    /// empty on first request.
    pub(crate) fn shard(&self, db_fp: u64, graph_fp: u64) -> Arc<SharedShard> {
        let mut shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(shards.entry((db_fp, graph_fp)).or_default())
    }

    /// Snapshot of the store's size.
    pub fn stats(&self) -> SharedStoreStats {
        let shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = SharedStoreStats {
            shards: shards.len(),
            ..SharedStoreStats::default()
        };
        for shard in shards.values() {
            s.views += shard.views.len();
            s.estimators += shard.estimators.len();
            s.blocks += shard.blocks.len();
        }
        s
    }

    /// Drop every shard. Existing sessions hold their shard by `Arc` and
    /// keep their artifacts; *new* sessions start against empty shards.
    /// Use this to reclaim memory after retiring a dataset.
    pub fn clear(&self) {
        self.shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

impl std::fmt::Debug for SharedArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SharedArtifactStore")
            .field("shards", &s.shards)
            .field("views", &s.views)
            .field("estimators", &s.estimators)
            .field("blocks", &s.blocks)
            .finish()
    }
}
