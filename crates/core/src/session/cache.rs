//! The session artifact cache.
//!
//! HypeR's §3.3/§5 computation strategy produces three expensive,
//! *query-independent or query-family-independent* artifacts:
//!
//! 1. **relevant views** — one per distinct `Use` clause; building one may
//!    join and aggregate the whole database,
//! 2. **block decompositions** (Prop. 1) — one per (database, graph) pair,
//!    i.e. exactly one per session,
//! 3. **fitted causal estimators** — one per (view, update set, output,
//!    adjustment set, estimator configuration); training the random forest
//!    dominates what-if latency.
//!
//! The cache keys each artifact by a canonical [`QueryKey`] fingerprint
//! derived *structurally from the IR* (not from rendered text), so a query
//! assembled with the typed builders and the same query parsed from text
//! resolve to the same entries. Each artifact is wrapped in an [`Arc`] so
//! concurrent executions share it without copying, and hits/misses are
//! counted for [`super::SessionStats`]. All entries are `Send + Sync`,
//! which is what lets [`super::HyperSession::execute_batch`] fan work
//! across threads over one shared cache.
//!
//! Concurrency: each key has a *single-flight* slot — when several threads
//! miss the same key at once, exactly one builds the artifact (holding only
//! that key's init lock, never the whole map) and the rest wait for it, so
//! an expensive estimator is never trained twice and every miss counter
//! increment corresponds to one real build. A failed build caches nothing;
//! the next requester retries. That holds for panics too: the locks only
//! guard a write-once [`OnceLock`] whose state stays consistent across an
//! unwinding builder, so lock poisoning is deliberately recovered from
//! rather than propagated.
//!
//! Eviction: by default the cache grows without bound; a [`CacheBudget`]
//! (see [`super::SessionBuilder::cache_budget`]) caps the number of views
//! and/or estimators, evicting the least-recently-used filled entry when a
//! build pushes a store over its cap. Eviction only drops the cache's own
//! `Arc` — executions already holding the artifact keep it alive — and a
//! later request for an evicted key simply rebuilds (one more miss).
//!
//! Three-tier layout:
//!
//! ```text
//! local LRU tier   (per session, CacheBudget-bounded, plain hits)
//!       ↓ miss
//! shared in-memory tier   (process-wide SharedArtifactStore shard,
//!       ↓ miss             single-flight across sessions, shared hits)
//! disk tier   (SessionBuilder::persist_dir artifact files,
//!       ↓ miss             single-flight reads, disk hits)
//! build / train
//! ```
//!
//! A local hit never leaves the session; a local miss consults the
//! session's shared shard (single-flight across *sessions*), and a shared
//! miss — with persistence enabled — tries the disk tier before building.
//! The resolution is recorded as a real build
//! ([`super::SessionStats::view_misses`]), a shared hit
//! ([`super::SessionStats::view_shared_hits`]), or a disk hit
//! ([`super::SessionStats::view_disk_hits`]) before installing the `Arc`
//! in the local tier, where the LRU budget applies as before. Freshly
//! built artifacts are spilled to the disk tier at build time, so a
//! restarted process (or an artifact evicted from the shared tier under
//! its byte budget) recovers them by deserialization instead of
//! rebuilding. A corrupt, truncated, or stale artifact file reads as a
//! typed error and is treated as a miss — never a panic, never a wrong
//! artifact (files carry the full key and shard fingerprints, verified on
//! load). Sessions built with
//! [`super::SessionBuilder::share_artifacts`]`(false)` skip the shared
//! tier, and sessions without a persist directory skip the disk tier;
//! with neither, the cache behaves exactly like the original
//! single-level design.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use hyper_causal::{BlockDecomposition, CausalGraph};
use hyper_query::{key as qkey, QueryKey, UseClause, WhatIfQuery};
use hyper_storage::Database;

use crate::config::EngineConfig;
use crate::error::Result;
use crate::persist::{DiskArtifact, DiskTier};
use crate::session::shared::{FetchOutcome, SharedCache, SharedShard};
use crate::view::{build_relevant_view, RelevantView};
use crate::whatif::estimator::CausalEstimator;

/// A size budget for the artifact cache: the maximum number of entries kept
/// per artifact kind (`None` = unbounded). Exceeding a cap evicts the
/// least-recently-used entry.
///
/// Estimators are the store that actually grows in practice — how-to
/// optimization trains one per distinct candidate update — so
/// [`CacheBudget::estimators`] is the common configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum relevant views kept (`None` = unbounded).
    pub max_views: Option<usize>,
    /// Maximum fitted estimators kept (`None` = unbounded).
    pub max_estimators: Option<usize>,
}

impl CacheBudget {
    /// No limits (the default).
    pub fn unbounded() -> CacheBudget {
        CacheBudget::default()
    }

    /// Cap only the estimator store.
    pub fn estimators(max: usize) -> CacheBudget {
        CacheBudget {
            max_views: None,
            max_estimators: Some(max),
        }
    }

    /// Cap both stores.
    pub fn new(max_views: usize, max_estimators: usize) -> CacheBudget {
        CacheBudget {
            max_views: Some(max_views),
            max_estimators: Some(max_estimators),
        }
    }
}

/// Cache hit/miss/eviction counters, exposed through
/// [`super::SessionStats`].
#[derive(Debug, Default)]
pub(crate) struct CacheCounters {
    pub view_hits: AtomicU64,
    pub view_misses: AtomicU64,
    pub view_shared_hits: AtomicU64,
    pub view_disk_hits: AtomicU64,
    pub view_evictions: AtomicU64,
    pub estimator_hits: AtomicU64,
    pub estimator_misses: AtomicU64,
    pub estimator_shared_hits: AtomicU64,
    pub estimator_disk_hits: AtomicU64,
    pub estimator_evictions: AtomicU64,
    pub block_hits: AtomicU64,
    pub block_misses: AtomicU64,
    pub block_shared_hits: AtomicU64,
    pub block_disk_hits: AtomicU64,
    /// Estimator trainings that ran through the streaming two-pass
    /// layout instead of materializing the dense encoded matrix.
    pub trainings_streamed: AtomicU64,
    /// Chunks streamed across all streaming trainings (both binner
    /// passes count).
    pub train_chunks_streamed: AtomicU64,
    /// High-water mark of any single streaming training's peak resident
    /// bytes (`fetch_max`, not a sum).
    pub train_peak_resident_bytes: AtomicU64,
}

/// The counter set of one artifact kind, bundled so the tiered fetch
/// paths stay readable.
struct TierCounters<'a> {
    hits: &'a AtomicU64,
    misses: &'a AtomicU64,
    shared_hits: &'a AtomicU64,
    disk_hits: &'a AtomicU64,
    evictions: &'a AtomicU64,
}

/// One cache entry: a write-once cell plus the per-key init lock that
/// serializes builders without blocking other keys, and an LRU stamp.
struct Slot<T> {
    cell: OnceLock<Arc<T>>,
    init: Mutex<()>,
    /// Logical timestamp of the last hit or build (for LRU eviction).
    last_used: AtomicU64,
}

impl<T> Default for Slot<T> {
    fn default() -> Slot<T> {
        Slot {
            cell: OnceLock::new(),
            init: Mutex::new(()),
            last_used: AtomicU64::new(0),
        }
    }
}

/// A keyed single-flight cache of immutable artifacts with an optional
/// LRU entry cap.
struct KeyedCache<T> {
    map: RwLock<HashMap<String, Arc<Slot<T>>>>,
    cap: Option<usize>,
    clock: AtomicU64,
}

impl<T> KeyedCache<T> {
    fn new(cap: Option<usize>) -> KeyedCache<T> {
        KeyedCache {
            map: RwLock::new(HashMap::new()),
            // A cap of 0 would evict the entry just built before anyone
            // else could share it; clamp to ≥ 1.
            cap: cap.map(|c| c.max(1)),
            clock: AtomicU64::new(1),
        }
    }

    fn touch(&self, slot: &Slot<T>) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        slot.last_used.store(now, Ordering::Relaxed);
    }

    /// True when `key` is present and built (no side effects, no counter
    /// movement).
    fn peek(&self, key: &str) -> bool {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .is_some_and(|slot| slot.cell.get().is_some())
    }

    /// Fetch `key`, building via `build` on first use. `hits`/`misses` are
    /// bumped so that exactly one miss is recorded per successful build;
    /// `evictions` counts LRU entries dropped to honor the cap.
    fn get_or_build(
        &self,
        key: &str,
        hits: &AtomicU64,
        misses: &AtomicU64,
        evictions: &AtomicU64,
        build: impl FnOnce() -> Result<T>,
    ) -> Result<Arc<T>> {
        // Fast path: filled slot under the read lock.
        if let Some(slot) = self.map.read().unwrap_or_else(|e| e.into_inner()).get(key) {
            if let Some(v) = slot.cell.get() {
                self.touch(slot);
                hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(v));
            }
        }
        // Get-or-create this key's slot (brief write lock; no building).
        let slot = {
            let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        // Serialize builders per key; re-check after acquiring. A builder
        // that panicked poisons this mutex but leaves the OnceLock empty
        // and consistent — recover and retry rather than propagate.
        let _guard = slot.init.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = slot.cell.get() {
            self.touch(&slot);
            hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(v));
        }
        let built = Arc::new(build()?);
        slot.cell
            .set(Arc::clone(&built))
            .unwrap_or_else(|_| unreachable!("init lock held"));
        self.touch(&slot);
        misses.fetch_add(1, Ordering::Relaxed);
        if self.cap.is_some() {
            self.evict_over_cap(key, evictions);
        }
        Ok(built)
    }

    /// Drop least-recently-used *filled* entries until the store is within
    /// its cap again, never evicting `just_built` (it is the newest entry;
    /// guarding by key keeps the build that triggered eviction shareable).
    fn evict_over_cap(&self, just_built: &str, evictions: &AtomicU64) {
        let Some(cap) = self.cap else { return };
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        loop {
            let filled = map.values().filter(|s| s.cell.get().is_some()).count();
            if filled <= cap {
                return;
            }
            let victim: Option<String> = map
                .iter()
                .filter(|(k, s)| s.cell.get().is_some() && k.as_str() != just_built)
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.remove(&k);
                    evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }

    /// Fetch `key` if locally present (LRU touch, no counter movement —
    /// the caller decides what a hit means).
    fn get_if_present(&self, key: &str) -> Option<Arc<T>> {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        let slot = map.get(key)?;
        let v = slot.cell.get()?;
        self.touch(slot);
        Some(Arc::clone(v))
    }

    /// Install an already-built artifact (fetched from the shared tier)
    /// under `key`, honoring the LRU cap. Racing installs of the same key
    /// keep the first value; both point at the same shared artifact
    /// anyway.
    fn insert(&self, key: &str, value: Arc<T>, evictions: &AtomicU64) {
        let slot = {
            let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        let _ = slot.cell.set(value);
        self.touch(&slot);
        if self.cap.is_some() {
            self.evict_over_cap(key, evictions);
        }
    }

    /// Number of *built* entries (unfilled race slots don't count).
    fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|slot| slot.cell.get().is_some())
            .count()
    }

    /// Every built entry as `(key, value)` — the survivor scan a delta
    /// refresh runs over the local tier. No LRU touch: enumerating the
    /// cache must not reorder eviction recency.
    fn entries(&self) -> Vec<(String, Arc<T>)> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter_map(|(k, slot)| slot.cell.get().map(|v| (k.clone(), Arc::clone(v))))
            .collect()
    }
}

/// Per-session store of session artifacts — relevant views, the block
/// decomposition, and fitted estimators — optionally layered over a
/// shard of the process-wide [`super::SharedArtifactStore`].
pub struct ArtifactCache {
    views: KeyedCache<RelevantView>,
    estimators: KeyedCache<CausalEstimator>,
    blocks: KeyedCache<BlockDecomposition>,
    /// The session's `(db, graph)` shard of the shared store; `None` for
    /// isolated sessions.
    shared: Option<Arc<SharedShard>>,
    /// The session's disk tier; `None` without a persist directory.
    disk: Option<Arc<DiskTier>>,
    /// Behind an `Arc` so a delta-refreshed session continues its
    /// predecessor's cumulative [`super::SessionStats`] rather than
    /// resetting them.
    pub(crate) counters: Arc<CacheCounters>,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("views", &self.views.len())
            .field("estimators", &self.estimators.len())
            .field("shared", &self.shared.is_some())
            .field("disk", &self.disk)
            .field("counters", &self.counters)
            .finish()
    }
}

impl ArtifactCache {
    /// An empty cache honoring `budget`, layered over `shared` when the
    /// session participates in cross-session sharing and over `disk`
    /// when it persists artifacts.
    pub(crate) fn new(
        budget: CacheBudget,
        shared: Option<Arc<SharedShard>>,
        disk: Option<Arc<DiskTier>>,
    ) -> ArtifactCache {
        Self::with_counters(budget, shared, disk, Arc::new(CacheCounters::default()))
    }

    /// An empty cache that keeps counting into an existing counter set —
    /// how [`super::HyperSession::refresh`] hands the post-delta session
    /// its predecessor's cumulative statistics.
    pub(crate) fn with_counters(
        budget: CacheBudget,
        shared: Option<Arc<SharedShard>>,
        disk: Option<Arc<DiskTier>>,
        counters: Arc<CacheCounters>,
    ) -> ArtifactCache {
        ArtifactCache {
            views: KeyedCache::new(budget.max_views),
            estimators: KeyedCache::new(budget.max_estimators),
            blocks: KeyedCache::new(None),
            shared,
            disk,
            counters,
        }
    }

    /// Tiered fetch shared by all three artifact kinds: local tier first
    /// (a plain hit), then the shared shard (single-flight across
    /// sessions), then — inside the single-flight builder — the disk
    /// tier, then the real build (spilled to disk on success). Exactly
    /// one of `misses`/`shared_hits`/`disk_hits` moves per call that
    /// leaves the local tier, and the fetched `Arc` is installed locally
    /// so the LRU budget and later local hits behave exactly as without
    /// the extra tiers.
    ///
    /// `valid` re-checks a *disk-recovered* artifact against live
    /// context (view/database dimensions) the context-free decoder
    /// cannot know; a failing artifact is a plain miss — it never enters
    /// the memory tiers, and the rebuild overwrites its file.
    #[allow(clippy::too_many_arguments)]
    fn fetch_tiered<T: DiskArtifact>(
        local: &KeyedCache<T>,
        shared: Option<&SharedShard>,
        select: fn(&SharedShard) -> &SharedCache<T>,
        disk: Option<&DiskTier>,
        key: &str,
        c: &TierCounters<'_>,
        valid: impl Fn(&T) -> bool,
        build: impl FnOnce() -> Result<T>,
    ) -> Result<Arc<T>> {
        if let Some(v) = local.get_if_present(key) {
            c.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        // The builder the memory tiers run on a miss: recover from disk
        // when possible (any invalid file is a miss), otherwise build and
        // spill. `from_disk` reports which happened — the distinction
        // only affects counters, never the value.
        let from_disk = Cell::new(false);
        let wrapped = || {
            if let Some(d) = disk {
                if let Some(v) = d.load::<T>(key) {
                    if valid(&v) {
                        from_disk.set(true);
                        return Ok(v);
                    }
                }
            }
            let v = build()?;
            if let Some(d) = disk {
                d.store(key, &v);
            }
            Ok(v)
        };
        let v = match shared {
            Some(shard) => {
                let (v, outcome) = shard.fetch(select, key, T::approx_bytes, wrapped)?;
                match outcome {
                    FetchOutcome::Built if from_disk.get() => {
                        c.disk_hits.fetch_add(1, Ordering::Relaxed)
                    }
                    FetchOutcome::Built => c.misses.fetch_add(1, Ordering::Relaxed),
                    FetchOutcome::Shared => c.shared_hits.fetch_add(1, Ordering::Relaxed),
                };
                v
            }
            None => {
                // Isolated session: the local tier itself is the
                // single-flight point. Count the build outcome ourselves
                // so a disk recovery is a disk hit, not a miss.
                let built = AtomicU64::new(0);
                let v = local.get_or_build(key, c.hits, &built, c.evictions, wrapped)?;
                if built.load(Ordering::Relaxed) > 0 {
                    if from_disk.get() {
                        c.disk_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        c.misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return Ok(v);
            }
        };
        local.insert(key, Arc::clone(&v), c.evictions);
        Ok(v)
    }

    /// Canonical key of a `Use` clause: a structural fingerprint of the
    /// AST ([`QueryKey::of_use`]), identical whether the clause was parsed
    /// from text or assembled with the typed builders.
    ///
    /// Deliberately **no case folding**: string-literal comparison is
    /// case-sensitive (`'Asus'` ≠ `'ASUS'`), and so is table lookup
    /// (`Use D` must fail identically on a cold and a warm cache when the
    /// table is named `d`). Spelling an identifier differently therefore
    /// costs at most a duplicate cache entry — never a wrong answer.
    pub fn view_key(use_clause: &UseClause) -> QueryKey {
        QueryKey::of_use(use_clause)
    }

    /// Fingerprint of everything a fitted estimator depends on: the view it
    /// was trained over, the update set, the output (ψ and Y), the `For`
    /// clause (whose pre-conjuncts feed the adjustment set), the resolved
    /// adjustment columns, and the estimator-relevant configuration. The
    /// `When` clause is deliberately absent — it only masks rows at
    /// evaluation time and does not influence training (§3.3). Like
    /// [`ArtifactCache::view_key`], the query parts are encoded
    /// structurally from the IR, so parameterized queries re-key per
    /// binding exactly when the resolved literals differ.
    pub(crate) fn estimator_key(
        view_key: &str,
        q: &WhatIfQuery,
        backdoor_cols: &[usize],
        config: &EngineConfig,
    ) -> String {
        use std::fmt::Write as _;
        let mut key = String::with_capacity(view_key.len() + 128);
        key.push_str(view_key);
        key.push('\u{1f}');
        for u in &q.updates {
            qkey::write_update_spec(&mut key, u);
        }
        key.push('\u{1f}');
        qkey::write_output(&mut key, &q.output);
        key.push('\u{1f}');
        if let Some(fc) = &q.for_clause {
            qkey::write_expr(&mut key, fc);
        }
        key.push('\u{1f}');
        let _ = write!(key, "{backdoor_cols:?}");
        key.push('\u{1f}');
        let _ = write!(
            key,
            "{:?}|{:?}|{:?}|{}|{}|{}|{}",
            config.backdoor,
            config.estimator,
            config.sample_cap,
            config.n_trees,
            config.max_depth,
            config.seed,
            config.peer_summaries,
        );
        // Same case discipline as `view_key`: exact text, no folding
        // (`Update(color) = 'Red'` ≠ `= 'red'`).
        key
    }

    /// The relevant view for `use_clause`, building and caching it on first
    /// use. Returns the shared view and its canonical key.
    pub(crate) fn view(
        &self,
        db: &Database,
        use_clause: &UseClause,
    ) -> Result<(Arc<RelevantView>, QueryKey)> {
        // Exclusive-time accounting: a miss's build opens its own
        // `ViewBuild` span, so this span's self time is lookup overhead.
        let _span = hyper_trace::span(hyper_trace::Phase::CacheLookup);
        let key = Self::view_key(use_clause);
        let c = &self.counters;
        fn shard_views(s: &SharedShard) -> &SharedCache<RelevantView> {
            &s.views
        }
        let view = Self::fetch_tiered(
            &self.views,
            self.shared.as_deref(),
            shard_views,
            self.disk.as_deref(),
            key.as_str(),
            &TierCounters {
                hits: &c.view_hits,
                misses: &c.view_misses,
                shared_hits: &c.view_shared_hits,
                disk_hits: &c.view_disk_hits,
                evictions: &c.view_evictions,
            },
            // Views carry no raw indices into external state: origins are
            // length-checked at decode and the table's fingerprint is
            // re-validated, so no live-context check remains.
            |_| true,
            || build_relevant_view(db, use_clause),
        )?;
        Ok((view, key))
    }

    /// The fitted estimator for `key`, fitting via `fit` on a miss.
    /// `valid` vets a disk-recovered estimator against the live view
    /// (see [`fetch_tiered`](Self::fetch_tiered)); pass
    /// `CausalEstimator::fits_view` bound to the query's view.
    pub(crate) fn estimator(
        &self,
        key: &str,
        valid: impl Fn(&CausalEstimator) -> bool,
        fit: impl FnOnce() -> Result<CausalEstimator>,
    ) -> Result<Arc<CausalEstimator>> {
        let _span = hyper_trace::span(hyper_trace::Phase::CacheLookup);
        let c = &self.counters;
        fn shard_estimators(s: &SharedShard) -> &SharedCache<CausalEstimator> {
            &s.estimators
        }
        Self::fetch_tiered(
            &self.estimators,
            self.shared.as_deref(),
            shard_estimators,
            self.disk.as_deref(),
            key,
            &TierCounters {
                hits: &c.estimator_hits,
                misses: &c.estimator_misses,
                shared_hits: &c.estimator_shared_hits,
                disk_hits: &c.estimator_disk_hits,
                evictions: &c.estimator_evictions,
            },
            valid,
            fit,
        )
    }

    /// The session's block decomposition (Prop. 1), computed once per
    /// (database, graph) pair — which a session fixes at construction
    /// (and which is exactly what the shared shard is keyed by).
    pub(crate) fn blocks(
        &self,
        db: &Database,
        graph: &CausalGraph,
    ) -> Result<Arc<BlockDecomposition>> {
        let _span = hyper_trace::span(hyper_trace::Phase::CacheLookup);
        let c = &self.counters;
        let build = || {
            let _span = hyper_trace::span(hyper_trace::Phase::BlockDecomp);
            BlockDecomposition::compute(db, graph).map_err(crate::error::EngineError::from)
        };
        fn shard_blocks(s: &SharedShard) -> &SharedCache<BlockDecomposition> {
            &s.blocks
        }
        Self::fetch_tiered(
            &self.blocks,
            self.shared.as_deref(),
            shard_blocks,
            self.disk.as_deref(),
            "",
            &TierCounters {
                hits: &c.block_hits,
                misses: &c.block_misses,
                shared_hits: &c.block_shared_hits,
                disk_hits: &c.block_disk_hits,
                evictions: &AtomicU64::new(0),
            },
            // A disk-recovered decomposition must reference only rows the
            // live database actually has (untrusted indices would
            // otherwise panic during block-wise evaluation).
            |b: &BlockDecomposition| {
                let sizes: Vec<usize> = db.tables().iter().map(|t| t.num_rows()).collect();
                b.fits_tables(&sizes)
            },
            build,
        )
    }

    /// Is the view for `key` currently cached — locally, in the shared
    /// shard, or as a disk-tier file? (Explain provenance; no counter
    /// movement; disk presence is a file check, validation still happens
    /// on load.)
    pub(crate) fn has_view(&self, key: &str) -> bool {
        self.views.peek(key)
            || self
                .shared
                .as_ref()
                .is_some_and(|shard| shard.views.peek(key))
            || self
                .disk
                .as_ref()
                .is_some_and(|d| d.has(hyper_store::ArtifactKind::View, key))
    }

    /// Is the estimator for `key` currently cached (any tier)?
    pub(crate) fn has_estimator(&self, key: &str) -> bool {
        self.estimators.peek(key)
            || self
                .shared
                .as_ref()
                .is_some_and(|shard| shard.estimators.peek(key))
            || self
                .disk
                .as_ref()
                .is_some_and(|d| d.has(hyper_store::ArtifactKind::Estimator, key))
    }

    /// Is the block decomposition cached (any tier)?
    pub(crate) fn has_blocks(&self) -> bool {
        self.blocks.peek("")
            || self
                .shared
                .as_ref()
                .is_some_and(|shard| shard.blocks.peek(""))
            || self
                .disk
                .as_ref()
                .is_some_and(|d| d.has(hyper_store::ArtifactKind::Blocks, ""))
    }

    /// Number of distinct cached views (diagnostics).
    pub(crate) fn cached_views(&self) -> usize {
        self.views.len()
    }

    /// Number of distinct cached estimators (diagnostics).
    pub(crate) fn cached_estimators(&self) -> usize {
        self.estimators.len()
    }

    /// Every locally cached view as `(key, view)` — the survivor scan of
    /// a delta refresh.
    pub(crate) fn view_entries(&self) -> Vec<(String, Arc<RelevantView>)> {
        self.views.entries()
    }

    /// Every locally cached estimator as `(key, estimator)`.
    pub(crate) fn estimator_entries(&self) -> Vec<(String, Arc<CausalEstimator>)> {
        self.estimators.entries()
    }

    /// The locally cached block decomposition, if built (LRU-touching is
    /// harmless here — the blocks store is uncapped).
    pub(crate) fn cached_blocks(&self) -> Option<Arc<BlockDecomposition>> {
        self.blocks.get_if_present("")
    }

    /// Install a delta-surviving artifact in **every** tier of this (new)
    /// cache: the local tier, the session's shared shard (so sibling
    /// sessions over the post-delta data inherit it without rebuilding),
    /// and the disk tier (under the post-delta shard fingerprints).
    /// Counters don't move — adoption is migration, not a hit.
    fn adopt<T: DiskArtifact>(
        &self,
        local: &KeyedCache<T>,
        select: fn(&SharedShard) -> &SharedCache<T>,
        evictions: &AtomicU64,
        key: &str,
        value: Arc<T>,
    ) {
        if let Some(shard) = self.shared.as_deref() {
            shard.insert_prebuilt(select, key, Arc::clone(&value), T::approx_bytes(&value));
        }
        if let Some(d) = self.disk.as_deref() {
            d.store(key, &*value);
        }
        local.insert(key, value, evictions);
    }

    /// Adopt a surviving relevant view (see [`ArtifactCache::adopt`]).
    pub(crate) fn adopt_view(&self, key: &str, view: Arc<RelevantView>) {
        fn shard_views(s: &SharedShard) -> &SharedCache<RelevantView> {
            &s.views
        }
        self.adopt(
            &self.views,
            shard_views,
            &self.counters.view_evictions,
            key,
            view,
        );
    }

    /// Adopt a surviving fitted estimator (see [`ArtifactCache::adopt`]).
    pub(crate) fn adopt_estimator(&self, key: &str, est: Arc<CausalEstimator>) {
        fn shard_estimators(s: &SharedShard) -> &SharedCache<CausalEstimator> {
            &s.estimators
        }
        self.adopt(
            &self.estimators,
            shard_estimators,
            &self.counters.estimator_evictions,
            key,
            est,
        );
    }

    /// Adopt the freshly computed post-delta block decomposition, so the
    /// refreshed session's first block-wise evaluation is a local hit.
    pub(crate) fn adopt_blocks(&self, blocks: Arc<BlockDecomposition>) {
        fn shard_blocks(s: &SharedShard) -> &SharedCache<BlockDecomposition> {
            &s.blocks
        }
        let none = AtomicU64::new(0);
        self.adopt(&self.blocks, shard_blocks, &none, "", blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::{ArtifactCache, CacheBudget};
    use hyper_query::UseClause;

    #[test]
    fn view_keys_are_exact_text() {
        // Literal and identifier case differences both produce distinct
        // keys: spelling differences can only cost a duplicate entry,
        // never serve the wrong artifact (table lookup and string-value
        // comparison are case-sensitive).
        let a = ArtifactCache::view_key(&UseClause::Table("german_syn".into()));
        let b = ArtifactCache::view_key(&UseClause::Table("GERMAN_SYN".into()));
        assert_ne!(a, b);
        assert_eq!(
            a,
            ArtifactCache::view_key(&UseClause::Table("german_syn".into()))
        );
    }

    #[test]
    fn lru_eviction_honors_cap_and_recency() {
        use super::KeyedCache;
        use std::sync::atomic::{AtomicU64, Ordering};

        let cache: KeyedCache<u32> = KeyedCache::new(Some(2));
        let (h, m, e) = (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
        let get = |key: &str, v: u32| cache.get_or_build(key, &h, &m, &e, || Ok(v)).unwrap();
        get("a", 1);
        get("b", 2);
        get("a", 1); // refresh `a`: `b` is now least recent
        get("c", 3); // evicts `b`
        assert_eq!(cache.len(), 2);
        assert_eq!(e.load(Ordering::Relaxed), 1);
        assert!(cache.peek("a") && cache.peek("c") && !cache.peek("b"));
        // Rebuilding the evicted key is a plain miss.
        let misses_before = m.load(Ordering::Relaxed);
        get("b", 2);
        assert_eq!(m.load(Ordering::Relaxed), misses_before + 1);
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let budget = CacheBudget {
            max_views: Some(0),
            max_estimators: Some(0),
        };
        let cache = ArtifactCache::new(budget, None, None);
        // Nothing to assert beyond construction not panicking and the store
        // still holding the most recent entry after a build; exercised via
        // the estimator store in session tests.
        assert_eq!(cache.cached_views(), 0);
    }
}
