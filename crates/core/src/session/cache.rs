//! The session artifact cache.
//!
//! HypeR's §3.3/§5 computation strategy produces three expensive,
//! *query-independent or query-family-independent* artifacts:
//!
//! 1. **relevant views** — one per distinct `Use` clause; building one may
//!    join and aggregate the whole database,
//! 2. **block decompositions** (Prop. 1) — one per (database, graph) pair,
//!    i.e. exactly one per session,
//! 3. **fitted causal estimators** — one per (view, update set, output,
//!    adjustment set, estimator configuration); training the random forest
//!    dominates what-if latency.
//!
//! The cache keys each artifact by a canonical textual fingerprint, wraps
//! it in an [`Arc`] so concurrent executions share it without copying, and
//! counts hits/misses for [`super::SessionStats`]. All entries are
//! `Send + Sync`, which is what lets [`super::HyperSession::execute_batch`]
//! fan work across threads over one shared cache.
//!
//! Concurrency: each key has a *single-flight* slot — when several threads
//! miss the same key at once, exactly one builds the artifact (holding only
//! that key's init lock, never the whole map) and the rest wait for it, so
//! an expensive estimator is never trained twice and every miss counter
//! increment corresponds to one real build. A failed build caches nothing;
//! the next requester retries. That holds for panics too: the locks only
//! guard a write-once [`OnceLock`] whose state stays consistent across an
//! unwinding builder, so lock poisoning is deliberately recovered from
//! rather than propagated.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use hyper_causal::{BlockDecomposition, CausalGraph};
use hyper_query::{UseClause, WhatIfQuery};
use hyper_storage::Database;

use crate::config::EngineConfig;
use crate::error::Result;
use crate::view::{build_relevant_view, RelevantView};
use crate::whatif::estimator::CausalEstimator;

/// Cache hit/miss counters, exposed through [`super::SessionStats`].
#[derive(Debug, Default)]
pub(crate) struct CacheCounters {
    pub view_hits: AtomicU64,
    pub view_misses: AtomicU64,
    pub estimator_hits: AtomicU64,
    pub estimator_misses: AtomicU64,
    pub block_hits: AtomicU64,
    pub block_misses: AtomicU64,
}

/// One cache entry: a write-once cell plus the per-key init lock that
/// serializes builders without blocking other keys.
struct Slot<T> {
    cell: OnceLock<Arc<T>>,
    init: Mutex<()>,
}

impl<T> Default for Slot<T> {
    fn default() -> Slot<T> {
        Slot {
            cell: OnceLock::new(),
            init: Mutex::new(()),
        }
    }
}

/// A keyed single-flight cache of immutable artifacts.
struct KeyedCache<T> {
    map: RwLock<HashMap<String, Arc<Slot<T>>>>,
}

impl<T> KeyedCache<T> {
    fn new() -> KeyedCache<T> {
        KeyedCache {
            map: RwLock::new(HashMap::new()),
        }
    }

    /// Fetch `key`, building via `build` on first use. `hits`/`misses` are
    /// bumped so that exactly one miss is recorded per successful build.
    fn get_or_build(
        &self,
        key: &str,
        hits: &AtomicU64,
        misses: &AtomicU64,
        build: impl FnOnce() -> Result<T>,
    ) -> Result<Arc<T>> {
        // Fast path: filled slot under the read lock.
        if let Some(slot) = self.map.read().unwrap_or_else(|e| e.into_inner()).get(key) {
            if let Some(v) = slot.cell.get() {
                hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(v));
            }
        }
        // Get-or-create this key's slot (brief write lock; no building).
        let slot = {
            let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        // Serialize builders per key; re-check after acquiring. A builder
        // that panicked poisons this mutex but leaves the OnceLock empty
        // and consistent — recover and retry rather than propagate.
        let _guard = slot.init.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = slot.cell.get() {
            hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(v));
        }
        let built = Arc::new(build()?);
        slot.cell
            .set(Arc::clone(&built))
            .unwrap_or_else(|_| unreachable!("init lock held"));
        misses.fetch_add(1, Ordering::Relaxed);
        Ok(built)
    }

    /// Number of *built* entries (unfilled race slots don't count).
    fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|slot| slot.cell.get().is_some())
            .count()
    }
}

/// Shared store of session artifacts: relevant views, the block
/// decomposition, and fitted estimators.
pub struct ArtifactCache {
    views: KeyedCache<RelevantView>,
    estimators: KeyedCache<CausalEstimator>,
    blocks: KeyedCache<BlockDecomposition>,
    pub(crate) counters: CacheCounters,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("views", &self.views.len())
            .field("estimators", &self.estimators.len())
            .field("counters", &self.counters)
            .finish()
    }
}

impl ArtifactCache {
    /// An empty cache.
    pub(crate) fn new() -> ArtifactCache {
        ArtifactCache {
            views: KeyedCache::new(),
            estimators: KeyedCache::new(),
            blocks: KeyedCache::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Canonical key of a `Use` clause: the AST rendered back to text.
    /// Rendering normalizes spacing and keyword spelling (one token stream
    /// per structure), and parse∘render = id (property-tested in
    /// hyper-query), so equal keys imply equal ASTs imply equal semantics.
    ///
    /// Deliberately **no case folding**: string-literal comparison is
    /// case-sensitive (`'Asus'` ≠ `'ASUS'`), and so is table lookup
    /// (`Use D` must fail identically on a cold and a warm cache when the
    /// table is named `d`). Spelling an identifier differently therefore
    /// costs at most a duplicate cache entry — never a wrong answer.
    pub fn view_key(use_clause: &UseClause) -> String {
        use_clause.to_string()
    }

    /// Fingerprint of everything a fitted estimator depends on: the view it
    /// was trained over, the update set, the output (ψ and Y), the `For`
    /// clause (whose pre-conjuncts feed the adjustment set), the resolved
    /// adjustment columns, and the estimator-relevant configuration. The
    /// `When` clause is deliberately absent — it only masks rows at
    /// evaluation time and does not influence training (§3.3).
    pub(crate) fn estimator_key(
        view_key: &str,
        q: &WhatIfQuery,
        backdoor_cols: &[usize],
        config: &EngineConfig,
    ) -> String {
        use std::fmt::Write as _;
        let mut key = String::with_capacity(view_key.len() + 128);
        key.push_str(view_key);
        key.push('\u{1f}');
        for u in &q.updates {
            let _ = write!(key, "{u};");
        }
        key.push('\u{1f}');
        let _ = write!(key, "{}", q.output);
        key.push('\u{1f}');
        if let Some(fc) = &q.for_clause {
            let _ = write!(key, "{fc}");
        }
        key.push('\u{1f}');
        let _ = write!(key, "{backdoor_cols:?}");
        key.push('\u{1f}');
        let _ = write!(
            key,
            "{:?}|{:?}|{:?}|{}|{}|{}|{}",
            config.backdoor,
            config.estimator,
            config.sample_cap,
            config.n_trees,
            config.max_depth,
            config.seed,
            config.peer_summaries,
        );
        // Same case discipline as `view_key`: exact text, no folding
        // (`Update(color) = 'Red'` ≠ `= 'red'`).
        key
    }

    /// The relevant view for `use_clause`, building and caching it on first
    /// use. Returns the shared view and its canonical key.
    pub(crate) fn view(
        &self,
        db: &Database,
        use_clause: &UseClause,
    ) -> Result<(Arc<RelevantView>, String)> {
        let key = Self::view_key(use_clause);
        let view = self.views.get_or_build(
            &key,
            &self.counters.view_hits,
            &self.counters.view_misses,
            || build_relevant_view(db, use_clause),
        )?;
        Ok((view, key))
    }

    /// The fitted estimator for `key`, fitting via `fit` on a miss.
    pub(crate) fn estimator(
        &self,
        key: &str,
        fit: impl FnOnce() -> Result<CausalEstimator>,
    ) -> Result<Arc<CausalEstimator>> {
        self.estimators.get_or_build(
            key,
            &self.counters.estimator_hits,
            &self.counters.estimator_misses,
            fit,
        )
    }

    /// The session's block decomposition (Prop. 1), computed once per
    /// (database, graph) pair — which a session fixes at construction.
    pub(crate) fn blocks(
        &self,
        db: &Database,
        graph: &CausalGraph,
    ) -> Result<Arc<BlockDecomposition>> {
        self.blocks.get_or_build(
            "",
            &self.counters.block_hits,
            &self.counters.block_misses,
            || BlockDecomposition::compute(db, graph).map_err(crate::error::EngineError::from),
        )
    }

    /// Number of distinct cached views (diagnostics).
    pub(crate) fn cached_views(&self) -> usize {
        self.views.len()
    }

    /// Number of distinct cached estimators (diagnostics).
    pub(crate) fn cached_estimators(&self) -> usize {
        self.estimators.len()
    }
}

#[cfg(test)]
mod tests {
    use super::ArtifactCache;
    use hyper_query::UseClause;

    #[test]
    fn view_keys_are_exact_text() {
        // Literal and identifier case differences both produce distinct
        // keys: spelling differences can only cost a duplicate entry,
        // never serve the wrong artifact (table lookup and string-value
        // comparison are case-sensitive).
        let a = ArtifactCache::view_key(&UseClause::Table("german_syn".into()));
        let b = ArtifactCache::view_key(&UseClause::Table("GERMAN_SYN".into()));
        assert_ne!(a, b);
        assert_eq!(
            a,
            ArtifactCache::view_key(&UseClause::Table("german_syn".into()))
        );
    }
}
