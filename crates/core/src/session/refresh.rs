//! Incremental write path: apply a [`DeltaBatch`] to a session and keep
//! every artifact the delta provably did not touch.
//!
//! [`HyperSession::refresh`] is the engine half of `hyper-ingest`: it
//! applies the batch transactionally (the current session keeps serving
//! the pre-delta data untouched — MVCC by `Arc` swap), then decides
//! artifact-by-artifact whether a from-scratch rebuild over the
//! post-delta database would be **bit-identical**. Only artifacts that
//! fail that test are invalidated; survivors migrate into the refreshed
//! session's local tier, its post-delta shared-store shard, and its disk
//! tier, so the next query on them is a pure cache hit — zero view
//! builds, zero retraining.
//!
//! ## The survival rules
//!
//! A relevant view survives when
//!
//! 1. **(untouched sources)** every source relation of its
//!    [`ViewProvenance`] has an unchanged table fingerprint, or
//! 2. **(filtered replay)** it is [`ViewProvenance::Filtered`] over a
//!    touched relation, the *block guard* below holds, and replaying its
//!    `Use` clause over just the appended rows — and separately over
//!    just the deleted rows — selects **zero** rows. Appends land after
//!    the view's rows and deletes only remove rows the filter never
//!    admitted, so the rebuilt view is row-for-row identical.
//!
//! [`ViewProvenance::AllRows`] and [`ViewProvenance::Opaque`] views over
//! a touched relation always rebuild (every tuple, or any join/aggregate
//! input, may have changed).
//!
//! **Block guard** (the causal part): for sessions with a graph, every
//! pre-delta Prop.-1 block containing a tuple of a touched relation must
//! keep its content fingerprint in the post-delta decomposition
//! ([`BlockFingerprints`]). A delta row that is causally entangled with
//! existing tuples merges blocks and breaks this; a causally isolated
//! append only adds new blocks and passes. Graphless sessions have no
//! decomposition to compare, so the guard degenerates to "the batch
//! deleted nothing".
//!
//! A fitted estimator survives exactly when the view it was trained over
//! survives (its cache key is prefixed by the view key): estimator
//! training is seeded and deterministic over the view's content, so an
//! identical view refits bit-identically. The block decomposition itself
//! is always recomputed — the refreshed session's cache is pre-seeded
//! with the post-delta decomposition, so even that is never paid at
//! query time.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use hyper_causal::{BlockDecomposition, EdgeKind};
use hyper_ingest::{blocks_touching, BlockFingerprints, DeltaBatch};
use hyper_query::UseClause;
use hyper_storage::{Database, Table};

use crate::error::{EngineError, Result};
use crate::session::cache::ArtifactCache;
use crate::session::{HyperSession, SessionInner, SharedArtifactStore};
use crate::view::{build_relevant_view, RelevantView, ViewProvenance};

/// What one [`HyperSession::refresh`] kept, dropped, and produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshReport {
    /// Relations whose table fingerprint actually changed (a delta op
    /// that nets out to a no-op touches nothing).
    pub touched_relations: Vec<String>,
    /// Locally cached views that migrated into the refreshed session.
    pub views_kept: usize,
    /// Locally cached views dropped (their next use rebuilds).
    pub views_invalidated: usize,
    /// Locally cached estimators that migrated.
    pub estimators_kept: usize,
    /// Locally cached estimators dropped (their next use retrains).
    pub estimators_invalidated: usize,
    /// Pre-delta Prop.-1 blocks whose content fingerprint no longer
    /// occurs in the post-delta decomposition (0 for graphless sessions).
    pub blocks_invalidated: usize,
    /// The refreshed session's data version (predecessor's + 1).
    pub data_version: u64,
}

/// A refreshed session plus the invalidation accounting that produced it.
#[derive(Debug)]
pub struct RefreshOutcome {
    /// The post-delta session. The pre-delta session (and any
    /// [`super::PreparedQuery`] handles on it) keeps serving the old
    /// data unchanged.
    pub session: HyperSession,
    /// What survived and what was dropped.
    pub report: RefreshReport,
}

/// The appended and deleted row sets of one relation, accumulated with
/// the same sequential semantics as [`DeltaBatch::apply`].
#[derive(Default)]
struct ChangedRows {
    appended: Option<Table>,
    deleted: Option<Table>,
    /// Set when the rows could not be attributed exactly (e.g. an append
    /// table not named after its relation); filtered replay then treats
    /// the relation as opaquely changed.
    inexact: bool,
}

impl HyperSession {
    /// Apply `delta` and return a session over the post-delta database
    /// that keeps every artifact the delta provably left bit-identical
    /// (see the [module docs](self) for the survival rules).
    ///
    /// This session is untouched: it continues to serve the pre-delta
    /// data, and existing [`super::PreparedQuery`] handles stay valid
    /// against it. Cumulative [`super::SessionStats`] carry over to the
    /// refreshed session, with
    /// [`super::SessionStats::views_invalidated`] and friends advanced
    /// by what this refresh dropped.
    pub fn refresh(&self, delta: &DeltaBatch) -> Result<RefreshOutcome> {
        self.traced(hyper_trace::Phase::Refresh, || self.refresh_inner(delta))
    }

    fn refresh_inner(&self, delta: &DeltaBatch) -> Result<RefreshOutcome> {
        let inner = &self.inner;
        let old_db = &inner.db;
        let new_db = Arc::new(delta.apply(old_db)?);

        // Which relations actually changed content? (Delta ops that net
        // out — e.g. appending zero rows — touch nothing.)
        let mut touched: Vec<String> = Vec::new();
        for r in delta.relations() {
            if old_db.table(r)?.fingerprint() != new_db.table(r)?.fingerprint() {
                touched.push(r.to_string());
            }
        }
        let touched_set: HashSet<&str> = touched.iter().map(String::as_str).collect();

        // Block-level analysis: count the pre-delta blocks whose content
        // fingerprint vanished, and derive the survival guard from it.
        let mut blocks_invalidated = 0usize;
        let mut new_blocks: Option<Arc<BlockDecomposition>> = None;
        let guard_ok = match inner.graph.as_deref() {
            // Fast path: a graph without cross-tuple edges makes every
            // tuple its own block in *any* database, and an append-only
            // delta preserves every pre-delta tuple — so every old
            // (singleton) block keeps its content fingerprint in the
            // post-delta decomposition by construction. This is exactly
            // what the generic comparison below would compute, without
            // paying two full decompositions; the refreshed session
            // recomputes its decomposition lazily if a block-wise
            // evaluation ever asks for it.
            Some(g)
                if delta.deleted_rows() == 0
                    && g.edges().iter().all(|e| matches!(e.kind, EdgeKind::Intra)) =>
            {
                true
            }
            Some(g) => {
                let _decomp = hyper_trace::span(hyper_trace::Phase::BlockDecomp);
                let old_blocks = match inner.cache.cached_blocks() {
                    Some(b) => b,
                    None => Arc::new(BlockDecomposition::compute(old_db, g)?),
                };
                let fresh = Arc::new(BlockDecomposition::compute(&new_db, g)?);
                let old_fps = BlockFingerprints::compute(old_db, &old_blocks);
                let new_fps = BlockFingerprints::compute(&new_db, &fresh).to_set();
                let touched_tables: HashSet<usize> = old_db
                    .tables()
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| touched_set.contains(t.name()))
                    .map(|(i, _)| i)
                    .collect();
                blocks_invalidated = blocks_touching(&old_blocks, &touched_tables)
                    .into_iter()
                    .filter(|&bi| !new_fps.contains(&old_fps.as_slice()[bi]))
                    .count();
                new_blocks = Some(fresh);
                blocks_invalidated == 0
            }
            // No decomposition to compare: pure appends can only extend
            // a filtered view's source; deletes may reshape it.
            None => delta.deleted_rows() == 0,
        };

        // The per-relation appended/deleted row sets, for filtered replay.
        let changed = collect_changed_rows(old_db, delta)?;

        // Survivor scan over the local tiers.
        let mut kept_views: Vec<(String, Arc<RelevantView>)> = Vec::new();
        let mut views_invalidated = 0usize;
        for (key, view) in inner.cache.view_entries() {
            if view_survives(&view, &touched_set, guard_ok, &changed) {
                kept_views.push((key, view));
            } else {
                views_invalidated += 1;
            }
        }
        let kept_keys: HashSet<&str> = kept_views.iter().map(|(k, _)| k.as_str()).collect();
        let mut kept_estimators = Vec::new();
        let mut estimators_invalidated = 0usize;
        for (key, est) in inner.cache.estimator_entries() {
            // Estimator keys are `<view key>\u{1f}<estimator facets>`;
            // an estimator survives with its view (identical view ⇒
            // seeded training refits bit-identically).
            let survives = kept_keys.iter().any(|vk| {
                key.len() > vk.len() && key.starts_with(vk) && key.as_bytes()[vk.len()] == 0x1f
            });
            if survives {
                kept_estimators.push((key, est));
            } else {
                estimators_invalidated += 1;
            }
        }

        // Assemble the post-delta session: same configuration and
        // lineage-shared counters, new shard/disk keyed by the new
        // fingerprints, survivors adopted into every tier.
        let fingerprints = (inner.share_artifacts || inner.persist_dir.is_some()).then(|| {
            (
                new_db.fingerprint(),
                inner.graph.as_ref().map_or(0, |g| g.fingerprint()),
            )
        });
        let shared = inner.share_artifacts.then(|| {
            let (db_fp, graph_fp) = fingerprints.expect("computed when sharing");
            SharedArtifactStore::global().shard(db_fp, graph_fp)
        });
        let disk = inner.persist_dir.as_deref().map(|dir| {
            let (db_fp, graph_fp) = fingerprints.expect("computed when persisting");
            Arc::new(crate::persist::DiskTier::new(dir, db_fp, graph_fp))
        });
        let cache = ArtifactCache::with_counters(
            inner.cache_budget,
            shared,
            disk,
            Arc::clone(&inner.cache.counters),
        );
        for (key, view) in &kept_views {
            cache.adopt_view(key, Arc::clone(view));
        }
        for (key, est) in &kept_estimators {
            cache.adopt_estimator(key, Arc::clone(est));
        }
        if let Some(fresh) = new_blocks {
            cache.adopt_blocks(fresh);
        }

        let exec = &inner.exec;
        exec.refreshes.fetch_add(1, Ordering::Relaxed);
        exec.views_invalidated
            .fetch_add(views_invalidated as u64, Ordering::Relaxed);
        exec.estimators_invalidated
            .fetch_add(estimators_invalidated as u64, Ordering::Relaxed);
        exec.blocks_invalidated
            .fetch_add(blocks_invalidated as u64, Ordering::Relaxed);

        let data_version = inner.data_version + 1;
        let session = HyperSession {
            inner: Arc::new(SessionInner {
                db: new_db,
                graph: inner.graph.clone(),
                config: inner.config.clone(),
                howto_opts: inner.howto_opts.clone(),
                cache_budget: inner.cache_budget,
                share_artifacts: inner.share_artifacts,
                persist_dir: inner.persist_dir.clone(),
                runtime: inner.runtime.clone(),
                cache,
                exec: Arc::clone(exec),
                data_version,
                tracing: std::sync::atomic::AtomicBool::new(inner.tracing.load(Ordering::Relaxed)),
            }),
        };
        Ok(RefreshOutcome {
            session,
            report: RefreshReport {
                touched_relations: touched,
                views_kept: kept_views.len(),
                views_invalidated,
                estimators_kept: kept_estimators.len(),
                estimators_invalidated,
                blocks_invalidated,
                data_version,
            },
        })
    }
}

/// Does this cached view provably rebuild bit-identically post-delta?
fn view_survives(
    view: &RelevantView,
    touched: &HashSet<&str>,
    guard_ok: bool,
    changed: &HashMap<String, ChangedRows>,
) -> bool {
    if view
        .provenance
        .relations()
        .iter()
        .all(|r| !touched.contains(r))
    {
        return true;
    }
    match &view.provenance {
        ViewProvenance::Filtered { relation } if guard_ok => {
            let Some(c) = changed.get(relation.as_str()) else {
                // Touched by fingerprint but not named by the delta —
                // cannot happen, but never guess in favor of survival.
                return false;
            };
            !c.inexact
                && !rows_match_use(c.appended.as_ref(), &view.use_clause)
                && !rows_match_use(c.deleted.as_ref(), &view.use_clause)
        }
        _ => false,
    }
}

/// Replay the view's `Use` clause over just the delta rows: does the
/// filter admit any of them? Errors count as a match (conservative:
/// when in doubt, rebuild).
fn rows_match_use(rows: Option<&Table>, use_clause: &UseClause) -> bool {
    let Some(rows) = rows else { return false };
    if rows.num_rows() == 0 {
        return false;
    }
    let mut mini = Database::new();
    if mini.add_table(rows.clone()).is_err() {
        return true;
    }
    match build_relevant_view(&mini, use_clause) {
        Ok(v) => v.table.num_rows() > 0,
        Err(_) => true,
    }
}

/// Accumulate each relation's appended and deleted rows with the same
/// sequential semantics as [`DeltaBatch::apply`] (deletes index the
/// intermediate table, not the original).
fn collect_changed_rows(db: &Database, delta: &DeltaBatch) -> Result<HashMap<String, ChangedRows>> {
    let mut changed: HashMap<String, ChangedRows> = HashMap::new();
    if delta.ops.iter().all(|op| op.deletes.is_empty()) {
        // Append-only: no delete ever re-indexes the table, so the
        // appended row set is just the concatenated append chunks — no
        // need to clone and replay the base table. Schema compatibility
        // was already proven by `delta.apply` in the caller.
        for op in &delta.ops {
            if let Some(appends) = &op.appends {
                let c = changed.entry(op.relation.clone()).or_default();
                if appends.name() != op.relation {
                    c.inexact = true;
                } else {
                    accumulate(&mut c.appended, appends, &mut c.inexact);
                }
            }
        }
        return Ok(changed);
    }
    let mut state: HashMap<String, Table> = HashMap::new();
    for op in &delta.ops {
        if !state.contains_key(&op.relation) {
            state.insert(op.relation.clone(), db.table(&op.relation)?.clone());
        }
        let cur = state.get_mut(&op.relation).expect("inserted above");
        let c = changed.entry(op.relation.clone()).or_default();
        if !op.deletes.is_empty() {
            let n = cur.num_rows();
            let mut dead = vec![false; n];
            for &i in &op.deletes {
                if i >= n {
                    // `DeltaBatch::apply` already rejected this batch.
                    return Err(EngineError::Storage(format!(
                        "delete index {i} out of range for `{}`",
                        op.relation
                    )));
                }
                dead[i] = true;
            }
            let dead_idx: Vec<usize> = (0..n).filter(|&i| dead[i]).collect();
            accumulate(&mut c.deleted, &cur.gather(&dead_idx), &mut c.inexact);
            let keep: Vec<usize> = (0..n).filter(|&i| !dead[i]).collect();
            *cur = cur.gather(&keep);
        }
        if let Some(appends) = &op.appends {
            if appends.name() != op.relation {
                c.inexact = true;
            } else {
                accumulate(&mut c.appended, appends, &mut c.inexact);
            }
            cur.append_rows(appends).map_err(EngineError::from)?;
        }
    }
    Ok(changed)
}

/// Append `chunk` onto an accumulated row set, marking the relation
/// inexact if the chunks cannot be concatenated.
fn accumulate(acc: &mut Option<Table>, chunk: &Table, inexact: &mut bool) {
    match acc {
        None => *acc = Some(chunk.clone()),
        Some(t) => {
            if t.append_rows(chunk).is_err() {
                *inexact = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use hyper_ingest::DeltaBatch;
    use hyper_storage::{DataType, Field, Schema, TableBuilder};

    fn people_db() -> Database {
        let mut db = Database::new();
        let t = TableBuilder::new(
            "people",
            Schema::new(vec![
                Field::new("age", DataType::Int),
                Field::new("income", DataType::Float),
            ])
            .unwrap(),
        )
        .rows((0..20).map(|i| vec![(20 + i).into(), (1000.0 + i as f64).into()]))
        .unwrap()
        .build();
        db.add_table(t).unwrap();
        db
    }

    fn append_people(rows: impl IntoIterator<Item = (i64, f64)>) -> Table {
        TableBuilder::new(
            "people",
            Schema::new(vec![
                Field::new("age", DataType::Int),
                Field::new("income", DataType::Float),
            ])
            .unwrap(),
        )
        .rows(rows.into_iter().map(|(a, v)| vec![a.into(), v.into()]))
        .unwrap()
        .build()
    }

    #[test]
    fn filtered_view_survives_non_matching_append() {
        let session = HyperSession::builder(people_db())
            .config(EngineConfig::hyper_nb())
            .share_artifacts(false)
            .build();
        // Cache a filtered view over young people only.
        let q = session
            .prepare("Use (Select age, income From people Where age < 25) Update(age) = Pre(age) + 1 Output Avg(Post(income))")
            .unwrap();
        q.execute_whatif().unwrap();
        let before = session.stats();
        assert_eq!(before.view_misses, 1);

        // Append only old people: the filter admits none of them.
        let delta = DeltaBatch::new().append(append_people([(70, 9.0), (80, 9.0)]));
        let out = session.refresh(&delta).unwrap();
        assert_eq!(out.report.views_kept, 1);
        assert_eq!(out.report.views_invalidated, 0);
        assert_eq!(out.report.estimators_kept, 1);
        assert_eq!(out.report.data_version, 1);
        assert_eq!(out.report.touched_relations, vec!["people".to_string()]);

        // Re-running the query on the refreshed session is a pure hit:
        // no view build, no retraining.
        let q2 = out.session
            .prepare("Use (Select age, income From people Where age < 25) Update(age) = Pre(age) + 1 Output Avg(Post(income))")
            .unwrap();
        let r2 = q2.execute_whatif().unwrap();
        let after = out.session.stats();
        assert_eq!(after.view_misses, before.view_misses, "no view rebuild");
        assert_eq!(
            after.estimator_misses, before.estimator_misses,
            "no retraining"
        );
        assert_eq!(after.data_version, 1);
        assert_eq!(after.refreshes, 1);

        // And the answer is bit-identical to a cold session over the
        // post-delta database.
        let cold = HyperSession::builder(out.session.database().clone())
            .config(EngineConfig::hyper_nb())
            .share_artifacts(false)
            .build();
        let r_cold = cold
            .whatif_text("Use (Select age, income From people Where age < 25) Update(age) = Pre(age) + 1 Output Avg(Post(income))")
            .unwrap();
        assert_eq!(r2.value.to_bits(), r_cold.value.to_bits());
    }

    #[test]
    fn matching_append_and_deletes_invalidate() {
        let session = HyperSession::builder(people_db())
            .config(EngineConfig::hyper_nb())
            .share_artifacts(false)
            .build();
        let text = "Use (Select age, income From people Where age < 25) Update(age) = Pre(age) + 1 Output Avg(Post(income))";
        session.whatif_text(text).unwrap();

        // An appended row the filter admits ⇒ the view must rebuild.
        let delta = DeltaBatch::new().append(append_people([(21, 5.0)]));
        let out = session.refresh(&delta).unwrap();
        assert_eq!(out.report.views_kept, 0);
        assert_eq!(out.report.views_invalidated, 1);
        assert_eq!(out.report.estimators_invalidated, 1);
        let r = out.session.whatif_text(text).unwrap();
        let cold = HyperSession::builder(out.session.database().clone())
            .config(EngineConfig::hyper_nb())
            .share_artifacts(false)
            .build();
        assert_eq!(
            r.value.to_bits(),
            cold.whatif_text(text).unwrap().value.to_bits()
        );

        // Graphless sessions treat any delete as guard failure.
        let session2 = HyperSession::builder(people_db())
            .config(EngineConfig::hyper_nb())
            .share_artifacts(false)
            .build();
        session2.whatif_text(text).unwrap();
        let out2 = session2
            .refresh(&DeltaBatch::new().delete("people", vec![19]))
            .unwrap();
        assert_eq!(out2.report.views_invalidated, 1);
        assert_eq!(
            out2.session.stats().views_invalidated,
            1,
            "lineage counter advanced"
        );
    }

    #[test]
    fn untouched_relation_views_always_survive() {
        let mut db = people_db();
        let other = TableBuilder::new(
            "other",
            Schema::new(vec![Field::new("x", DataType::Int)]).unwrap(),
        )
        .rows([vec![1.into()], vec![2.into()]])
        .unwrap()
        .build();
        db.add_table(other).unwrap();
        let session = HyperSession::builder(db).share_artifacts(false).build();
        let text = "Use people Update(income) = Pre(income) * 1.1 Output Avg(Post(income))";
        session.whatif_text(text).unwrap();

        // Delete from the *other* relation: the AllRows view over
        // `people` has untouched sources and survives.
        let out = session
            .refresh(&DeltaBatch::new().delete("other", vec![0]))
            .unwrap();
        assert_eq!(out.report.views_kept, 1);
        assert_eq!(out.report.views_invalidated, 0);
        // But an AllRows view over a *touched* relation never survives.
        let out2 = out
            .session
            .refresh(&DeltaBatch::new().append(append_people([(30, 1.0)])))
            .unwrap();
        assert_eq!(out2.report.views_invalidated, 1);
        assert_eq!(out2.report.data_version, 2);
    }
}
