//! The owned, shareable HypeR session: prepare-once / execute-many
//! hypothetical reasoning over a fixed database and causal model.
//!
//! [`HyperSession`] is the primary entry point of the engine. Unlike the
//! deprecated borrow-based [`crate::HyperEngine`], a session *owns* its
//! database and graph (behind [`Arc`]s), is `Send + Sync + Clone`, and
//! keeps an [`ArtifactCache`] of the expensive intermediates of the
//! paper's computation strategy (§3.3): relevant views, the block
//! decomposition (Prop. 1), and fitted causal estimators. The intended
//! workload — many small parameter-varying hypothetical queries over one
//! fixed scenario — pays the view build and estimator training once and
//! reuses them across:
//!
//! * repeated [`PreparedQuery::execute`] calls,
//! * ad-hoc [`HyperSession::execute`] / [`HyperSession::whatif_text`] calls,
//! * parallel [`HyperSession::execute_batch`] fan-out, and
//! * candidate enumeration inside how-to optimization, whose hundreds of
//!   candidate what-if queries all share one relevant view.
//!
//! Queries enter as text, as parsed ASTs, or through the typed
//! [`WhatIf`]/[`HowTo`] builders — all three share cache entries, because
//! keys are derived structurally from the IR ([`hyper_query::QueryKey`]).
//! Templates with `Param(…)` placeholders are prepared once and executed
//! per [`Bindings`]; [`HyperSession::explain`] reports the plan with cache
//! provenance.
//!
//! Sessions sit on the shared execution runtime: parallel paths
//! (`execute_batch`, how-to candidate fan-out, forest training) draw from
//! a persistent [`HyperRuntime`] worker pool instead of spawning threads,
//! and the [`ArtifactCache`] is a thin LRU tier over the process-wide
//! [`SharedArtifactStore`] (see [`shared`]), so sessions over
//! content-equal `(database, graph)` pairs build each artifact once
//! process-wide. [`SessionBuilder::share_artifacts`] and
//! [`SessionBuilder::runtime`] control both.
//!
//! ```no_run
//! use hyper_core::{EngineConfig, HyperSession};
//! use hyper_query::{Bindings, HExpr, WhatIf};
//! # fn demo(db: hyper_storage::Database, g: hyper_causal::CausalGraph)
//! # -> hyper_core::Result<()> {
//! let session = HyperSession::builder(db)
//!     .graph(g)
//!     .config(EngineConfig::hyper())
//!     .build();
//! let q = session.prepare(
//!     WhatIf::over("product")
//!         .when(HExpr::attr("brand").eq("Asus"))
//!         .scale_param("price", "mult")
//!         .output_avg_post("rating")
//!         .filter(HExpr::pre("category").eq("Laptop")),
//! )?;
//! let first = q.execute_whatif_with(&Bindings::new().set("mult", 1.1))?;
//! let again = q.execute_whatif_with(&Bindings::new().set("mult", 1.1))?;
//! assert_eq!(first.value, again.value); // second run: pure cache hits
//! assert!(session.stats().estimator_hits > 0);
//! # Ok(()) }
//! ```

pub mod cache;
pub mod explain;
pub mod refresh;
pub mod shared;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use hyper_causal::{BlockDecomposition, CausalGraph};
use hyper_query::{
    parse_query, validate_howto, validate_whatif, Bindings, HowTo, HowToQuery, HypotheticalQuery,
    QueryKey, WhatIf, WhatIfQuery,
};
use hyper_runtime::HyperRuntime;
use hyper_storage::Database;
use hyper_trace::{Phase, TraceSnapshot, TraceTree, NUM_PHASES};

use crate::config::{EngineConfig, HowToOptions};
use crate::error::{EngineError, Result};
use crate::howto::baseline::evaluate_howto_bruteforce_cached;
use crate::howto::multi::{evaluate_howto_lexicographic_cached, LexicographicResult};
use crate::howto::optimizer::evaluate_howto_cached;
use crate::howto::HowToResult;
use crate::view::RelevantView;
use crate::whatif::{evaluate_whatif_cached, evaluate_whatif_on_view, WhatIfResult};

pub use cache::{ArtifactCache, CacheBudget};
pub use explain::{
    BlockPlan, EstimatorPlan, ExplainReport, HowToPlan, PhaseTiming, Provenance, QueryKind,
    QueryTimings, ViewPlan,
};
pub use refresh::{RefreshOutcome, RefreshReport};
pub use shared::{SharedArtifactStore, SharedStoreStats};

/// Outcome of executing hypothetical query text: either kind of result.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// What-if result.
    WhatIf(WhatIfResult),
    /// How-to result.
    HowTo(HowToResult),
}

/// Snapshot of a session's cache and execution counters.
///
/// Hits/misses are cumulative over the session's lifetime; `*_cached` are
/// the current number of distinct artifacts held.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Relevant-view cache hits served by this session's local tier.
    pub view_hits: u64,
    /// Relevant-view cache misses — views this session actually built.
    pub view_misses: u64,
    /// Views served by the process-wide [`SharedArtifactStore`] (another
    /// session — or a racing thread of this one — built them).
    pub view_shared_hits: u64,
    /// Views recovered from the disk tier
    /// ([`SessionBuilder::persist_dir`]) instead of being rebuilt.
    pub view_disk_hits: u64,
    /// Relevant views evicted under a [`CacheBudget`] (local tier only;
    /// the shared tier evicts only under its byte budget).
    pub view_evictions: u64,
    /// Fitted-estimator cache hits served by the local tier.
    pub estimator_hits: u64,
    /// Fitted-estimator cache misses — estimators this session trained.
    pub estimator_misses: u64,
    /// Estimators served by the shared store.
    pub estimator_shared_hits: u64,
    /// Estimators deserialized from the disk tier — warm starts that
    /// skipped training entirely.
    pub estimator_disk_hits: u64,
    /// Fitted estimators evicted under a [`CacheBudget`] (local tier).
    pub estimator_evictions: u64,
    /// Block-decomposition cache hits served by the local tier.
    pub block_hits: u64,
    /// Block-decomposition cache misses (at most 1 per session).
    pub block_misses: u64,
    /// Block decompositions served by the shared store.
    pub block_shared_hits: u64,
    /// Block decompositions recovered from the disk tier.
    pub block_disk_hits: u64,
    /// Distinct relevant views currently cached.
    pub views_cached: usize,
    /// Distinct fitted estimators currently cached.
    pub estimators_cached: usize,
    /// Queries prepared via [`HyperSession::prepare`].
    pub queries_prepared: u64,
    /// Queries executed (ad-hoc, prepared, and batch items).
    pub queries_executed: u64,
    /// Query *texts* parsed by this session. Typed-builder inputs and
    /// re-executions of prepared queries never parse, so a parameter sweep
    /// over one `PreparedQuery` leaves this unchanged.
    pub texts_parsed: u64,
    /// Relevant views dropped by [`HyperSession::refresh`] because a
    /// delta touched their source blocks (survivors migrate instead and
    /// keep serving without a rebuild).
    pub views_invalidated: u64,
    /// Fitted estimators dropped by [`HyperSession::refresh`] — each one
    /// is a retraining the next query on that key will pay.
    pub estimators_invalidated: u64,
    /// Prop.-1 blocks of the pre-delta decomposition whose content
    /// fingerprint no longer occurs post-delta (the causally *touched*
    /// blocks; untouched blocks keep their artifacts alive).
    pub blocks_invalidated: u64,
    /// Delta refreshes this session lineage has been through.
    pub refreshes: u64,
    /// The data version this session serves: the number of delta batches
    /// applied since the base snapshot (0 = the snapshot itself).
    pub data_version: u64,
    /// Estimator trainings that streamed through the two-pass binned
    /// layout under [`EngineConfig::train_budget_bytes`] instead of
    /// materializing the dense encoded matrix (bit-identical results).
    pub trainings_streamed: u64,
    /// Chunks streamed across all streaming trainings (both binner
    /// passes count each chunk once).
    pub train_chunks_streamed: u64,
    /// High-water mark of any single streaming training's peak resident
    /// bytes — the footprint the budget actually bought.
    pub train_peak_resident_bytes: u64,
    /// Out-of-core chunk loads (disk reads) by [`hyper_store::PagedTable`]
    /// scans, **process-wide** (paged tables are not session-scoped).
    pub paging_loads: u64,
    /// Out-of-core chunk reads served by the resident LRU, process-wide.
    pub paging_hits: u64,
    /// Out-of-core chunk evictions under a resident budget, process-wide.
    pub paging_evictions: u64,
    /// Cumulative **exclusive** (self) time per [`Phase`], in nanoseconds,
    /// across every traced query this session lineage ran. Zero unless
    /// tracing was enabled ([`SessionBuilder::tracing`] /
    /// [`HyperSession::set_tracing`]). Indexed by `Phase as usize`; use
    /// [`SessionStats::phase_ns`] for named access. Self times partition
    /// each traced query's span tree, so the per-phase entries of one
    /// query sum exactly to that query's [`SessionStats::trace_total_ns`]
    /// contribution — `train_ns` can never exceed `total_ns` in a
    /// consistent snapshot.
    pub trace_phase_ns: [u64; NUM_PHASES],
    /// Cumulative spans entered per [`Phase`] across traced queries
    /// (indexed by `Phase as usize`).
    pub trace_phase_counts: [u64; NUM_PHASES],
    /// Sum of `trace_phase_ns` — total attributed time across traced
    /// queries. On multi-worker runtimes this is CPU-time-like (parallel
    /// phase work sums), not wall clock.
    pub trace_total_ns: u64,
    /// Queries (and refreshes) that ran with tracing enabled.
    pub traced_queries: u64,
}

impl SessionStats {
    /// Cumulative exclusive time spent in `phase`, in nanoseconds.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.trace_phase_ns[phase as usize]
    }

    /// Cumulative spans entered for `phase`.
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.trace_phase_counts[phase as usize]
    }
}

/// Execution counters shared across a session's refresh lineage (a
/// refreshed session continues its predecessor's counts, exactly like
/// the cache counters behind [`ArtifactCache`]).
#[derive(Debug, Default)]
struct ExecCounters {
    queries_prepared: AtomicU64,
    queries_executed: AtomicU64,
    texts_parsed: AtomicU64,
    views_invalidated: AtomicU64,
    estimators_invalidated: AtomicU64,
    blocks_invalidated: AtomicU64,
    refreshes: AtomicU64,
    /// Per-phase exclusive-time totals folded in from traced queries
    /// (indexed by `Phase as usize`).
    phase_ns: [AtomicU64; NUM_PHASES],
    /// Per-phase span counts from traced queries.
    phase_counts: [AtomicU64; NUM_PHASES],
    trace_total_ns: AtomicU64,
    traced_queries: AtomicU64,
}

struct SessionInner {
    db: Arc<Database>,
    graph: Option<Arc<CausalGraph>>,
    config: EngineConfig,
    howto_opts: HowToOptions,
    cache_budget: CacheBudget,
    share_artifacts: bool,
    persist_dir: Option<std::path::PathBuf>,
    runtime: HyperRuntime,
    cache: ArtifactCache,
    exec: Arc<ExecCounters>,
    /// Number of delta batches applied since the base snapshot.
    data_version: u64,
    /// Phase-level tracing switch (see [`HyperSession::set_tracing`]).
    tracing: AtomicBool,
}

/// Builder for [`HyperSession`].
pub struct SessionBuilder {
    db: Arc<Database>,
    graph: Option<Arc<CausalGraph>>,
    config: EngineConfig,
    howto_opts: HowToOptions,
    cache_budget: CacheBudget,
    share_artifacts: bool,
    persist_dir: Option<std::path::PathBuf>,
    shared_budget_bytes: Option<usize>,
    runtime: Option<HyperRuntime>,
    tracing: bool,
}

impl SessionBuilder {
    /// Start a builder over the given database.
    pub fn new(db: impl Into<Arc<Database>>) -> SessionBuilder {
        SessionBuilder {
            db: db.into(),
            graph: None,
            config: EngineConfig::default(),
            howto_opts: HowToOptions::default(),
            cache_budget: CacheBudget::default(),
            share_artifacts: true,
            persist_dir: None,
            shared_budget_bytes: None,
            runtime: None,
            tracing: false,
        }
    }

    /// Attach the schema-level causal graph (required for
    /// [`crate::BackdoorMode::FromGraph`], i.e. plain HypeR).
    pub fn graph(mut self, graph: impl Into<Arc<CausalGraph>>) -> SessionBuilder {
        self.graph = Some(graph.into());
        self
    }

    /// Attach an optional graph (convenience for variant sweeps).
    pub fn maybe_graph(mut self, graph: Option<impl Into<Arc<CausalGraph>>>) -> SessionBuilder {
        self.graph = graph.map(Into::into);
        self
    }

    /// Override the engine configuration.
    pub fn config(mut self, config: EngineConfig) -> SessionBuilder {
        self.config = config;
        self
    }

    /// Override the how-to options.
    pub fn howto_options(mut self, opts: HowToOptions) -> SessionBuilder {
        self.howto_opts = opts;
        self
    }

    /// Bound estimator training's resident footprint at `bytes`
    /// (shorthand for [`EngineConfig::train_budget_bytes`]): forest
    /// trainings whose dense encoded feature matrix would exceed the
    /// budget stream the view through the two-pass binned layout
    /// instead — bit-identical fitted forests, peak memory O(bins +
    /// cells) rather than O(rows × features).
    /// [`SessionStats::trainings_streamed`] counts the reroutes.
    pub fn train_budget_bytes(mut self, bytes: usize) -> SessionBuilder {
        self.config.train_budget_bytes = Some(bytes);
        self
    }

    /// Bound the artifact cache: at most `budget.max_views` relevant views
    /// and `budget.max_estimators` fitted estimators are kept, evicting the
    /// least-recently-used entry past a cap. Unbounded by default — set
    /// this for long-lived sessions running how-to optimization, which
    /// otherwise accumulates one estimator per distinct candidate update.
    pub fn cache_budget(mut self, budget: CacheBudget) -> SessionBuilder {
        self.cache_budget = budget;
        self
    }

    /// Participate in the process-wide [`SharedArtifactStore`] (the
    /// default). Sessions over content-equal `(database, graph)` pairs
    /// then share relevant views, block decompositions, and fitted
    /// estimators, each built exactly once process-wide (single-flight);
    /// [`SessionStats`] distinguishes shared hits from local ones. Pass
    /// `false` for a fully isolated session — e.g. to benchmark cold
    /// paths or keep a tenant's cache lifetime strictly session-scoped.
    pub fn share_artifacts(mut self, share: bool) -> SessionBuilder {
        self.share_artifacts = share;
        self
    }

    /// Run this session's parallel work — [`HyperSession::execute_batch`]
    /// fan-out, how-to candidate evaluation, and estimator (forest)
    /// training — on the given runtime instead of
    /// [`HyperRuntime::global`]. Training results are
    /// worker-count-independent, so sessions with different runtimes can
    /// still share fitted estimators through the shared store.
    pub fn runtime(mut self, runtime: HyperRuntime) -> SessionBuilder {
        self.runtime = Some(runtime);
        self
    }

    /// Enable phase-level tracing (off by default). Traced sessions wrap
    /// each query in a [`hyper_trace`] span tree rooted at
    /// [`Phase::Execute`] and fold the per-phase **exclusive** durations
    /// into the cumulative [`SessionStats`] timing counters. The cost is
    /// one span per instrumented phase boundary (two `Instant` reads and
    /// a few thread-local bumps); disabled sessions pay a single relaxed
    /// atomic load per query. Tracing never changes results — the
    /// bit-identity property suites run with it on.
    pub fn tracing(mut self, on: bool) -> SessionBuilder {
        self.tracing = on;
        self
    }

    /// Persist artifacts under `dir`, adding a **disk tier** below the
    /// shared in-memory store: relevant views, fitted estimators, and
    /// block decompositions are spilled as checksummed `HYPR1` files
    /// when built and recovered by deserialization (single-flight, with
    /// [`SessionStats::estimator_disk_hits`] and friends counting the
    /// recoveries) instead of being rebuilt. A restarted process pointed
    /// at the same directory answers its first what-if at warm-cache
    /// speed — no CSV re-ingest, no retraining (see
    /// `examples/warm_start.rs`).
    ///
    /// Artifact files embed the session's `(database, graph)` content
    /// fingerprints and their own checksums; a stale directory (different
    /// data), a truncated file, or a flipped byte reads as a typed error
    /// and is treated as a cache miss, then overwritten by the rebuild.
    pub fn persist_dir(mut self, dir: impl Into<std::path::PathBuf>) -> SessionBuilder {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Cap the **process-wide** [`SharedArtifactStore`]'s approximate
    /// footprint at `bytes` (0 = unbounded). Exceeding the budget evicts
    /// globally least-recently-used artifacts across all shards; when
    /// the building session also set [`SessionBuilder::persist_dir`],
    /// evicted artifacts re-serve from the disk tier instead of
    /// retraining. The budget is a store-level setting — the last
    /// session to set it wins — exposed here for convenience next to
    /// the per-session [`SessionBuilder::cache_budget`].
    pub fn shared_budget_bytes(mut self, bytes: usize) -> SessionBuilder {
        self.shared_budget_bytes = Some(bytes);
        self
    }

    /// Finish: an owned, shareable session with an empty local artifact
    /// cache, attached to its `(db, graph)` shard of the shared store
    /// unless [`SessionBuilder::share_artifacts`]`(false)` was set, and
    /// to a disk tier when [`SessionBuilder::persist_dir`] was set.
    pub fn build(self) -> HyperSession {
        if let Some(bytes) = self.shared_budget_bytes {
            SharedArtifactStore::global().set_budget_bytes(bytes);
        }
        // Fingerprints key the shared store and the disk tier; a fully
        // isolated session (no sharing, no persistence) must not pay the
        // whole-database hash for keys nothing will read.
        let fingerprints = (self.share_artifacts || self.persist_dir.is_some()).then(|| {
            (
                self.db.fingerprint(),
                self.graph.as_ref().map_or(0, |g| g.fingerprint()),
            )
        });
        let shared = if self.share_artifacts {
            let (db_fp, graph_fp) = fingerprints.expect("computed when sharing");
            Some(SharedArtifactStore::global().shard(db_fp, graph_fp))
        } else {
            None
        };
        let disk = self.persist_dir.as_deref().map(|dir| {
            let (db_fp, graph_fp) = fingerprints.expect("computed when persisting");
            Arc::new(crate::persist::DiskTier::new(dir, db_fp, graph_fp))
        });
        HyperSession {
            inner: Arc::new(SessionInner {
                db: self.db,
                graph: self.graph,
                config: self.config,
                howto_opts: self.howto_opts,
                cache: ArtifactCache::new(self.cache_budget, shared, disk),
                cache_budget: self.cache_budget,
                share_artifacts: self.share_artifacts,
                persist_dir: self.persist_dir,
                runtime: self
                    .runtime
                    .unwrap_or_else(|| HyperRuntime::global().clone()),
                exec: Arc::new(ExecCounters::default()),
                data_version: 0,
                tracing: AtomicBool::new(self.tracing),
            }),
        }
    }
}

/// Anything [`HyperSession::prepare`] / [`HyperSession::execute`] /
/// [`HyperSession::explain`] accepts as a query: raw text (parsed by the
/// session, counted in [`SessionStats::texts_parsed`]), an already-parsed
/// AST, or an unfinished [`WhatIf`] / [`HowTo`] builder (finished — and
/// validated — on entry).
pub enum QueryInput {
    /// Query text to parse.
    Text(String),
    /// A ready AST (from the parser, the builders, or constructed by hand;
    /// boxed — query ASTs are large relative to the text variant).
    Ast(Box<HypotheticalQuery>),
}

/// Conversion into [`QueryInput`]. Implemented for `&str`/`String`
/// (parsed), the query ASTs (used as-is), and the typed builders
/// (validated by their `build()`).
pub trait IntoQuery {
    /// Convert into a query input. Builder inputs surface their
    /// validation errors here.
    fn into_query_input(self) -> Result<QueryInput>;
}

impl IntoQuery for &str {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Text(self.to_string()))
    }
}

impl IntoQuery for &String {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Text(self.clone()))
    }
}

impl IntoQuery for String {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Text(self))
    }
}

impl IntoQuery for HypotheticalQuery {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Ast(Box::new(self)))
    }
}

impl IntoQuery for &HypotheticalQuery {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Ast(Box::new(self.clone())))
    }
}

impl IntoQuery for WhatIfQuery {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Ast(Box::new(HypotheticalQuery::WhatIf(self))))
    }
}

impl IntoQuery for &WhatIfQuery {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Ast(Box::new(HypotheticalQuery::WhatIf(
            self.clone(),
        ))))
    }
}

impl IntoQuery for HowToQuery {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Ast(Box::new(HypotheticalQuery::HowTo(self))))
    }
}

impl IntoQuery for &HowToQuery {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Ast(Box::new(HypotheticalQuery::HowTo(
            self.clone(),
        ))))
    }
}

impl IntoQuery for WhatIf {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Ast(Box::new(HypotheticalQuery::WhatIf(
            self.build()?,
        ))))
    }
}

impl IntoQuery for HowTo {
    fn into_query_input(self) -> Result<QueryInput> {
        Ok(QueryInput::Ast(Box::new(HypotheticalQuery::HowTo(
            self.build()?,
        ))))
    }
}

/// An owned, cache-backed HypeR session. Cheap to clone (clones share the
/// cache), `Send + Sync`, safe to use from many threads at once.
#[derive(Clone)]
pub struct HyperSession {
    inner: Arc<SessionInner>,
}

impl std::fmt::Debug for HyperSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyperSession")
            .field("tables", &self.inner.db.tables().len())
            .field("graph", &self.inner.graph.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

impl HyperSession {
    /// Builder over the given database.
    pub fn builder(db: impl Into<Arc<Database>>) -> SessionBuilder {
        SessionBuilder::new(db)
    }

    /// Session with the default (plain HypeR) configuration. The graph is
    /// cloned into the session; use [`HyperSession::builder`] with
    /// [`SessionBuilder::graph`] to share an existing `Arc`.
    pub fn new(db: impl Into<Arc<Database>>, graph: Option<&CausalGraph>) -> HyperSession {
        let mut b = SessionBuilder::new(db);
        b.graph = graph.map(|g| Arc::new(g.clone()));
        b.build()
    }

    /// Replace the configuration, returning a session over the same
    /// database/graph with a **fresh, empty local cache** (estimator keys
    /// include the configuration, so any shared-store entries that still
    /// apply keep applying).
    pub fn with_config(self, config: EngineConfig) -> HyperSession {
        SessionBuilder {
            db: Arc::clone(&self.inner.db),
            graph: self.inner.graph.clone(),
            config,
            howto_opts: self.inner.howto_opts.clone(),
            cache_budget: self.inner.cache_budget,
            share_artifacts: self.inner.share_artifacts,
            persist_dir: self.inner.persist_dir.clone(),
            shared_budget_bytes: None,
            runtime: Some(self.inner.runtime.clone()),
            tracing: self.inner.tracing.load(Ordering::Relaxed),
        }
        .build()
    }

    /// Replace the how-to options, returning a session over the same
    /// database/graph with a fresh, empty local cache.
    pub fn with_howto_options(self, opts: HowToOptions) -> HyperSession {
        SessionBuilder {
            db: Arc::clone(&self.inner.db),
            graph: self.inner.graph.clone(),
            config: self.inner.config.clone(),
            howto_opts: opts,
            cache_budget: self.inner.cache_budget,
            share_artifacts: self.inner.share_artifacts,
            persist_dir: self.inner.persist_dir.clone(),
            shared_budget_bytes: None,
            runtime: Some(self.inner.runtime.clone()),
            tracing: self.inner.tracing.load(Ordering::Relaxed),
        }
        .build()
    }

    /// The bound database.
    pub fn database(&self) -> &Database {
        &self.inner.db
    }

    /// The bound causal graph, if any.
    pub fn graph(&self) -> Option<&CausalGraph> {
        self.inner.graph.as_deref()
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The active how-to options.
    pub fn howto_options(&self) -> &HowToOptions {
        &self.inner.howto_opts
    }

    /// The worker pool this session's parallel paths run on (the global
    /// runtime unless overridden via [`SessionBuilder::runtime`]).
    pub fn runtime(&self) -> &HyperRuntime {
        &self.inner.runtime
    }

    /// Is phase-level tracing on for this session?
    pub fn tracing_enabled(&self) -> bool {
        self.inner.tracing.load(Ordering::Relaxed)
    }

    /// Toggle phase-level tracing at runtime (see
    /// [`SessionBuilder::tracing`]). Queries already in flight keep the
    /// setting they started with.
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracing.store(on, Ordering::Relaxed);
    }

    /// Run `f` under a fresh trace rooted at `root` when tracing is on,
    /// folding the resulting span tree into the cumulative counters.
    /// No-op passthrough when tracing is off **or** the thread already
    /// carries a trace (a nested entry point — e.g. `execute` delegating
    /// to `whatif`, or a batch item on a worker — keeps attributing to
    /// the enclosing query's tree instead of starting its own).
    fn traced<T>(&self, root: Phase, f: impl FnOnce() -> T) -> T {
        if !self.inner.tracing.load(Ordering::Relaxed) || hyper_trace::current_context().is_some() {
            return f();
        }
        let tree = TraceTree::new();
        let out = hyper_trace::with_trace(&tree, || {
            let _root = hyper_trace::span(root);
            f()
        });
        self.fold_trace(&tree.snapshot());
        out
    }

    /// Fold one traced query's per-phase exclusive times and span counts
    /// into the lineage-cumulative counters behind [`SessionStats`].
    pub(crate) fn fold_trace(&self, snap: &TraceSnapshot) {
        let exec = &self.inner.exec;
        for phase in Phase::ALL {
            let ns = snap.self_ns(phase);
            if ns != 0 {
                exec.phase_ns[phase as usize].fetch_add(ns, Ordering::Relaxed);
            }
            let n = snap.count(phase);
            if n != 0 {
                exec.phase_counts[phase as usize].fetch_add(n, Ordering::Relaxed);
            }
        }
        exec.trace_total_ns
            .fetch_add(snap.total_ns(), Ordering::Relaxed);
        exec.traced_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of cache and execution counters. Equivalent to
    /// [`HyperSession::snapshot`]; kept as the familiar short name.
    pub fn stats(&self) -> SessionStats {
        self.snapshot()
    }

    /// A **consistent** snapshot of cache and execution counters.
    ///
    /// The counters live in independent atomics (and two map-size
    /// gauges), so a single naive pass over them can observe a torn set
    /// while another thread is mid-update — e.g. a view miss already
    /// counted but `views_cached` not yet grown, or `queries_executed`
    /// ahead of the estimator counters it implies. This accessor
    /// re-reads until two consecutive passes agree, so the returned set
    /// reflects one quiescent instant whenever the session is not under
    /// *continuous* concurrent mutation (under sustained load it falls
    /// back to the freshest pass after a bounded number of attempts —
    /// every individual counter is still exact and monotone).
    ///
    /// `/stats` reporting in `hyper-serve` and the assertions in the
    /// integration tests read through here.
    pub fn snapshot(&self) -> SessionStats {
        let mut prev = self.read_stats_once();
        for _ in 0..8 {
            let next = self.read_stats_once();
            if next == prev {
                return next;
            }
            prev = next;
        }
        prev
    }

    fn read_stats_once(&self) -> SessionStats {
        let c = &self.inner.cache.counters;
        let paging = hyper_store::global_paging_stats();
        SessionStats {
            view_hits: c.view_hits.load(Ordering::Relaxed),
            view_misses: c.view_misses.load(Ordering::Relaxed),
            view_shared_hits: c.view_shared_hits.load(Ordering::Relaxed),
            view_disk_hits: c.view_disk_hits.load(Ordering::Relaxed),
            view_evictions: c.view_evictions.load(Ordering::Relaxed),
            estimator_hits: c.estimator_hits.load(Ordering::Relaxed),
            estimator_misses: c.estimator_misses.load(Ordering::Relaxed),
            estimator_shared_hits: c.estimator_shared_hits.load(Ordering::Relaxed),
            estimator_disk_hits: c.estimator_disk_hits.load(Ordering::Relaxed),
            estimator_evictions: c.estimator_evictions.load(Ordering::Relaxed),
            block_hits: c.block_hits.load(Ordering::Relaxed),
            block_misses: c.block_misses.load(Ordering::Relaxed),
            block_shared_hits: c.block_shared_hits.load(Ordering::Relaxed),
            block_disk_hits: c.block_disk_hits.load(Ordering::Relaxed),
            views_cached: self.inner.cache.cached_views(),
            estimators_cached: self.inner.cache.cached_estimators(),
            queries_prepared: self.inner.exec.queries_prepared.load(Ordering::Relaxed),
            queries_executed: self.inner.exec.queries_executed.load(Ordering::Relaxed),
            texts_parsed: self.inner.exec.texts_parsed.load(Ordering::Relaxed),
            views_invalidated: self.inner.exec.views_invalidated.load(Ordering::Relaxed),
            estimators_invalidated: self
                .inner
                .exec
                .estimators_invalidated
                .load(Ordering::Relaxed),
            blocks_invalidated: self.inner.exec.blocks_invalidated.load(Ordering::Relaxed),
            refreshes: self.inner.exec.refreshes.load(Ordering::Relaxed),
            data_version: self.inner.data_version,
            trainings_streamed: c.trainings_streamed.load(Ordering::Relaxed),
            train_chunks_streamed: c.train_chunks_streamed.load(Ordering::Relaxed),
            train_peak_resident_bytes: c.train_peak_resident_bytes.load(Ordering::Relaxed),
            paging_loads: paging.loads,
            paging_hits: paging.hits,
            paging_evictions: paging.evictions,
            trace_phase_ns: std::array::from_fn(|i| {
                self.inner.exec.phase_ns[i].load(Ordering::Relaxed)
            }),
            trace_phase_counts: std::array::from_fn(|i| {
                self.inner.exec.phase_counts[i].load(Ordering::Relaxed)
            }),
            trace_total_ns: self.inner.exec.trace_total_ns.load(Ordering::Relaxed),
            traced_queries: self.inner.exec.traced_queries.load(Ordering::Relaxed),
        }
    }

    /// Parse `text`, counting the parse in
    /// [`SessionStats::texts_parsed`].
    fn parse_text(&self, text: &str) -> Result<HypotheticalQuery> {
        let _span = hyper_trace::span(Phase::Parse);
        self.inner.exec.texts_parsed.fetch_add(1, Ordering::Relaxed);
        Ok(parse_query(text)?)
    }

    /// Resolve any [`IntoQuery`] input to an AST, parsing only text inputs.
    fn resolve_input(&self, input: impl IntoQuery) -> Result<HypotheticalQuery> {
        match input.into_query_input()? {
            QueryInput::Text(text) => self.parse_text(&text),
            QueryInput::Ast(q) => Ok(*q),
        }
    }

    /// Validate, resolve the `Use` clause, and plan a query once, returning
    /// a handle that can be executed many times. Accepts text (parsed
    /// here — never again), a typed [`WhatIf`]/[`HowTo`] builder, or an
    /// AST. The relevant view is built (or fetched) here, so the first
    /// [`PreparedQuery::execute`] only pays estimator training, and later
    /// ones only mask evaluation.
    ///
    /// A prepared query may contain `Param(name)` placeholders; execute it
    /// with [`PreparedQuery::execute_with`], supplying a [`Bindings`] map
    /// per call. The view (and its cache entry) is shared across every
    /// binding; only the estimator re-keys when the resolved update/output
    /// literals actually differ.
    pub fn prepare(&self, input: impl IntoQuery) -> Result<PreparedQuery> {
        self.traced(Phase::Execute, || self.prepare_inner(input))
    }

    fn prepare_inner(&self, input: impl IntoQuery) -> Result<PreparedQuery> {
        let query = self.resolve_input(input)?;
        let use_clause = match &query {
            HypotheticalQuery::WhatIf(q) => &q.use_clause,
            HypotheticalQuery::HowTo(q) => &q.use_clause,
        };
        let (view, view_key) = self.inner.cache.view(&self.inner.db, use_clause)?;
        let cols = view.column_names();
        match &query {
            HypotheticalQuery::WhatIf(q) => validate_whatif(q, Some(&cols))?,
            HypotheticalQuery::HowTo(q) => validate_howto(q, Some(&cols))?,
        }
        self.inner
            .exec
            .queries_prepared
            .fetch_add(1, Ordering::Relaxed);
        let params = query.param_names();
        Ok(PreparedQuery {
            session: self.clone(),
            text: query.to_string(),
            query,
            params,
            view,
            view_key,
        })
    }

    /// Evaluate a query; returns either result kind. Accepts the same
    /// inputs as [`HyperSession::prepare`] (text is parsed once, builders
    /// and ASTs skip parsing entirely).
    pub fn execute(&self, input: impl IntoQuery) -> Result<QueryOutcome> {
        self.traced(Phase::Execute, || match self.resolve_input(input)? {
            HypotheticalQuery::WhatIf(q) => Ok(QueryOutcome::WhatIf(self.whatif(&q)?)),
            HypotheticalQuery::HowTo(q) => Ok(QueryOutcome::HowTo(self.howto(&q)?)),
        })
    }

    /// Evaluate many queries concurrently over the shared artifact cache,
    /// preserving input order in the output. Queries fan out across the
    /// session's persistent [`HyperRuntime`] worker pool — no threads are
    /// spawned per batch, and nested fan-outs (a batch of how-to queries,
    /// each evaluating candidates, each training a forest) all draw from
    /// the same fixed pool. Results are identical to executing each query
    /// sequentially (estimator training is seeded and deterministic, and
    /// cached artifacts are immutable once built).
    pub fn execute_batch<S: AsRef<str> + Sync>(&self, queries: &[S]) -> Vec<Result<QueryOutcome>> {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        let slots: Vec<OnceLock<Result<QueryOutcome>>> = (0..n).map(|_| OnceLock::new()).collect();
        self.traced(Phase::Execute, || {
            self.inner.runtime.for_each_parallel(n, |i| {
                let r = self.execute(queries[i].as_ref());
                let _ = slots[i].set(r);
            });
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every batch slot is filled"))
            .collect()
    }

    /// Evaluate a parsed what-if query through the artifact cache.
    pub fn whatif(&self, q: &WhatIfQuery) -> Result<WhatIfResult> {
        self.inner
            .exec
            .queries_executed
            .fetch_add(1, Ordering::Relaxed);
        self.traced(Phase::Execute, || {
            evaluate_whatif_cached(
                &self.inner.db,
                self.graph(),
                &self.inner.config,
                q,
                &self.inner.cache,
                &self.inner.runtime,
            )
        })
    }

    /// Evaluate a parsed how-to query via the IP formulation; the candidate
    /// what-if evaluations share the session caches.
    pub fn howto(&self, q: &HowToQuery) -> Result<HowToResult> {
        self.inner
            .exec
            .queries_executed
            .fetch_add(1, Ordering::Relaxed);
        self.traced(Phase::Execute, || {
            evaluate_howto_cached(
                &self.inner.db,
                self.graph(),
                &self.inner.config,
                q,
                &self.inner.howto_opts,
                Some(&self.inner.cache),
                &self.inner.runtime,
            )
        })
    }

    /// Evaluate a how-to query by exhaustive enumeration (Opt-HowTo).
    pub fn howto_bruteforce(&self, q: &HowToQuery) -> Result<HowToResult> {
        self.inner
            .exec
            .queries_executed
            .fetch_add(1, Ordering::Relaxed);
        self.traced(Phase::Execute, || {
            evaluate_howto_bruteforce_cached(
                &self.inner.db,
                self.graph(),
                &self.inner.config,
                q,
                &self.inner.howto_opts,
                Some(&self.inner.cache),
                &self.inner.runtime,
            )
        })
    }

    /// Lexicographic multi-objective how-to (§4.3 extension).
    pub fn howto_lexicographic(&self, qs: &[HowToQuery]) -> Result<LexicographicResult> {
        self.inner
            .exec
            .queries_executed
            .fetch_add(1, Ordering::Relaxed);
        self.traced(Phase::Execute, || {
            evaluate_howto_lexicographic_cached(
                &self.inner.db,
                self.graph(),
                &self.inner.config,
                qs,
                &self.inner.howto_opts,
                Some(&self.inner.cache),
                &self.inner.runtime,
            )
        })
    }

    /// Parse and evaluate what-if text.
    pub fn whatif_text(&self, text: &str) -> Result<WhatIfResult> {
        self.traced(Phase::Execute, || match self.parse_text(text)? {
            HypotheticalQuery::WhatIf(q) => self.whatif(&q),
            HypotheticalQuery::HowTo(_) => Err(EngineError::Query(
                "expected a what-if query, got a how-to query".into(),
            )),
        })
    }

    /// Parse and evaluate how-to text.
    pub fn howto_text(&self, text: &str) -> Result<HowToResult> {
        self.traced(Phase::Execute, || match self.parse_text(text)? {
            HypotheticalQuery::HowTo(q) => self.howto(&q),
            HypotheticalQuery::WhatIf(_) => Err(EngineError::Query(
                "expected a how-to query, got a what-if query".into(),
            )),
        })
    }

    /// The block-independent decomposition of the bound database under the
    /// bound causal graph (Prop. 1/Example 7), computed once and cached.
    pub fn block_decomposition(&self) -> Result<Arc<BlockDecomposition>> {
        let graph = self.graph().ok_or_else(|| {
            EngineError::Causal("block decomposition requires a causal graph".into())
        })?;
        self.inner.cache.blocks(&self.inner.db, graph)
    }
}

/// A query validated and planned once against a session; execute it as
/// many times as needed. Cheap to clone; clones share the session and the
/// resolved view. `Send + Sync`, so prepared queries can be executed from
/// worker threads directly.
///
/// A prepared query may be a *template* containing `Param(name)`
/// placeholders; [`PreparedQuery::execute_with`] resolves them against a
/// [`Bindings`] map per call, keeping the relevant view (and, for how-to,
/// the block decomposition) shared across the whole sweep while the
/// estimator re-keys only when the resolved literals differ.
#[derive(Clone)]
pub struct PreparedQuery {
    session: HyperSession,
    text: String,
    query: HypotheticalQuery,
    params: Vec<String>,
    view: Arc<RelevantView>,
    view_key: QueryKey,
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("text", &self.text)
            .field("params", &self.params)
            .field("view_rows", &self.view.table.num_rows())
            .finish()
    }
}

impl PreparedQuery {
    /// The canonical query text (the rendering of the prepared AST; for
    /// text inputs this is the normalized form of what was parsed).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The prepared query AST.
    pub fn query(&self) -> &HypotheticalQuery {
        &self.query
    }

    /// Names of unbound `Param(…)` placeholders (empty for a concrete
    /// query).
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Rows in the resolved relevant view.
    pub fn view_rows(&self) -> usize {
        self.view.table.num_rows()
    }

    /// The session this query was prepared against.
    pub fn session(&self) -> &HyperSession {
        &self.session
    }

    /// Execute the prepared query (which must be concrete — see
    /// [`PreparedQuery::execute_with`] for templates).
    ///
    /// What-if queries skip parsing and view resolution (the view was
    /// resolved at prepare time) and fetch the fitted estimator from the
    /// session cache — training it on the first call only, which is where
    /// nearly all the latency lives. Per-execution work that remains:
    /// re-validating against the view schema, binding the `When`/`For`
    /// masks, and backdoor-set selection (all linear scans, no training).
    /// How-to queries reuse the session caches for their candidate
    /// what-if evaluations.
    pub fn execute(&self) -> Result<QueryOutcome> {
        if !self.params.is_empty() {
            return Err(EngineError::Query(format!(
                "prepared query has unbound parameter(s) [{}]; use execute_with(bindings)",
                self.params.join(", ")
            )));
        }
        self.execute_query(&self.query)
    }

    /// Resolve the template's `Param(…)` placeholders against `bindings`
    /// and execute. No parsing and no view resolution happens here — a
    /// sweep of N bindings over one prepared query costs one view build
    /// total, plus one estimator training per *distinct* resolved
    /// update/output combination.
    pub fn execute_with(&self, bindings: &Bindings) -> Result<QueryOutcome> {
        let bound = self.query.bind(bindings).map_err(EngineError::from)?;
        self.execute_query(&bound)
    }

    /// Execute and expect a what-if result, resolving placeholders first.
    pub fn execute_whatif_with(&self, bindings: &Bindings) -> Result<WhatIfResult> {
        match self.execute_with(bindings)? {
            QueryOutcome::WhatIf(r) => Ok(r),
            QueryOutcome::HowTo(_) => Err(EngineError::Query(
                "expected a what-if query, got a how-to query".into(),
            )),
        }
    }

    /// Explain this prepared query's plan (see [`HyperSession::explain`]);
    /// templates must be resolved with [`PreparedQuery::explain_with`].
    pub fn explain(&self) -> Result<explain::ExplainReport> {
        self.session.explain(&self.query)
    }

    /// Explain the plan of this template resolved against `bindings`.
    pub fn explain_with(&self, bindings: &Bindings) -> Result<explain::ExplainReport> {
        let bound = self.query.bind(bindings).map_err(EngineError::from)?;
        self.session.explain(bound)
    }

    fn execute_query(&self, query: &HypotheticalQuery) -> Result<QueryOutcome> {
        let inner = &self.session.inner;
        inner.exec.queries_executed.fetch_add(1, Ordering::Relaxed);
        self.session
            .traced(Phase::Execute, || self.execute_query_inner(query))
    }

    fn execute_query_inner(&self, query: &HypotheticalQuery) -> Result<QueryOutcome> {
        let inner = &self.session.inner;
        match query {
            HypotheticalQuery::WhatIf(q) => Ok(QueryOutcome::WhatIf(evaluate_whatif_on_view(
                &inner.db,
                self.session.graph(),
                &inner.config,
                q,
                &self.view,
                self.view_key.as_str(),
                Some(&inner.cache),
                &inner.runtime,
            )?)),
            HypotheticalQuery::HowTo(q) => Ok(QueryOutcome::HowTo(evaluate_howto_cached(
                &inner.db,
                self.session.graph(),
                &inner.config,
                q,
                &inner.howto_opts,
                Some(&inner.cache),
                &inner.runtime,
            )?)),
        }
    }

    /// Execute and expect a what-if result.
    pub fn execute_whatif(&self) -> Result<WhatIfResult> {
        match self.execute()? {
            QueryOutcome::WhatIf(r) => Ok(r),
            QueryOutcome::HowTo(_) => Err(EngineError::Query(
                "expected a what-if query, got a how-to query".into(),
            )),
        }
    }

    /// Execute and expect a how-to result.
    pub fn execute_howto(&self) -> Result<HowToResult> {
        match self.execute()? {
            QueryOutcome::HowTo(r) => Ok(r),
            QueryOutcome::WhatIf(_) => Err(EngineError::Query(
                "expected a how-to query, got a what-if query".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_types_are_send_sync_and_clone() {
        fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
        assert_send_sync_clone::<HyperSession>();
        assert_send_sync_clone::<PreparedQuery>();
        assert_send_sync_clone::<SessionStats>();
    }

    #[test]
    fn stats_is_the_consistent_snapshot() {
        let session = HyperSession::builder(hyper_storage::Database::new())
            .share_artifacts(false)
            .build();
        // Idle sessions: two passes must agree immediately, and the two
        // accessors are the same set.
        assert_eq!(session.stats(), session.snapshot());
        assert_eq!(session.snapshot(), session.snapshot());
    }
}
