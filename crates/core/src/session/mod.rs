//! The owned, shareable HypeR session: prepare-once / execute-many
//! hypothetical reasoning over a fixed database and causal model.
//!
//! [`HyperSession`] is the primary entry point of the engine. Unlike the
//! deprecated borrow-based [`crate::HyperEngine`], a session *owns* its
//! database and graph (behind [`Arc`]s), is `Send + Sync + Clone`, and
//! keeps an [`ArtifactCache`] of the expensive intermediates of the
//! paper's computation strategy (§3.3): relevant views, the block
//! decomposition (Prop. 1), and fitted causal estimators. The intended
//! workload — many small parameter-varying hypothetical queries over one
//! fixed scenario — pays the view build and estimator training once and
//! reuses them across:
//!
//! * repeated [`PreparedQuery::execute`] calls,
//! * ad-hoc [`HyperSession::execute`] / [`HyperSession::whatif_text`] calls,
//! * parallel [`HyperSession::execute_batch`] fan-out, and
//! * candidate enumeration inside how-to optimization, whose hundreds of
//!   candidate what-if queries all share one relevant view.
//!
//! ```no_run
//! use std::sync::Arc;
//! use hyper_core::{EngineConfig, HyperSession};
//! # fn demo(db: hyper_storage::Database, g: hyper_causal::CausalGraph)
//! # -> hyper_core::Result<()> {
//! let session = HyperSession::builder(db)
//!     .graph(g)
//!     .config(EngineConfig::hyper())
//!     .build();
//! let q = session.prepare(
//!     "Use product When brand = 'Asus' \
//!      Update(price) = 1.1 * Pre(price) \
//!      Output Avg(Post(rating)) For Pre(category) = 'Laptop'",
//! )?;
//! let first = q.execute()?;  // builds the view, trains the estimator
//! let again = q.execute()?;  // pure cache hits
//! assert!(session.stats().estimator_hits > 0);
//! # Ok(()) }
//! ```

pub mod cache;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use hyper_causal::{BlockDecomposition, CausalGraph};
use hyper_query::{
    parse_query, validate_howto, validate_whatif, HowToQuery, HypotheticalQuery, WhatIfQuery,
};
use hyper_storage::Database;

use crate::config::{EngineConfig, HowToOptions};
use crate::error::{EngineError, Result};
use crate::howto::baseline::evaluate_howto_bruteforce_cached;
use crate::howto::multi::{evaluate_howto_lexicographic_cached, LexicographicResult};
use crate::howto::optimizer::evaluate_howto_cached;
use crate::howto::HowToResult;
use crate::view::RelevantView;
use crate::whatif::{evaluate_whatif_cached, evaluate_whatif_on_view, WhatIfResult};

pub use cache::ArtifactCache;

/// Outcome of executing hypothetical query text: either kind of result.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// What-if result.
    WhatIf(WhatIfResult),
    /// How-to result.
    HowTo(HowToResult),
}

/// Snapshot of a session's cache and execution counters.
///
/// Hits/misses are cumulative over the session's lifetime; `*_cached` are
/// the current number of distinct artifacts held.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Relevant-view cache hits.
    pub view_hits: u64,
    /// Relevant-view cache misses (views built).
    pub view_misses: u64,
    /// Fitted-estimator cache hits.
    pub estimator_hits: u64,
    /// Fitted-estimator cache misses (estimators trained).
    pub estimator_misses: u64,
    /// Block-decomposition cache hits.
    pub block_hits: u64,
    /// Block-decomposition cache misses (at most 1 per session).
    pub block_misses: u64,
    /// Distinct relevant views currently cached.
    pub views_cached: usize,
    /// Distinct fitted estimators currently cached.
    pub estimators_cached: usize,
    /// Queries prepared via [`HyperSession::prepare`].
    pub queries_prepared: u64,
    /// Queries executed (ad-hoc, prepared, and batch items).
    pub queries_executed: u64,
}

struct SessionInner {
    db: Arc<Database>,
    graph: Option<Arc<CausalGraph>>,
    config: EngineConfig,
    howto_opts: HowToOptions,
    cache: ArtifactCache,
    queries_prepared: AtomicU64,
    queries_executed: AtomicU64,
}

/// Builder for [`HyperSession`].
pub struct SessionBuilder {
    db: Arc<Database>,
    graph: Option<Arc<CausalGraph>>,
    config: EngineConfig,
    howto_opts: HowToOptions,
}

impl SessionBuilder {
    /// Start a builder over the given database.
    pub fn new(db: impl Into<Arc<Database>>) -> SessionBuilder {
        SessionBuilder {
            db: db.into(),
            graph: None,
            config: EngineConfig::default(),
            howto_opts: HowToOptions::default(),
        }
    }

    /// Attach the schema-level causal graph (required for
    /// [`crate::BackdoorMode::FromGraph`], i.e. plain HypeR).
    pub fn graph(mut self, graph: impl Into<Arc<CausalGraph>>) -> SessionBuilder {
        self.graph = Some(graph.into());
        self
    }

    /// Attach an optional graph (convenience for variant sweeps).
    pub fn maybe_graph(mut self, graph: Option<impl Into<Arc<CausalGraph>>>) -> SessionBuilder {
        self.graph = graph.map(Into::into);
        self
    }

    /// Override the engine configuration.
    pub fn config(mut self, config: EngineConfig) -> SessionBuilder {
        self.config = config;
        self
    }

    /// Override the how-to options.
    pub fn howto_options(mut self, opts: HowToOptions) -> SessionBuilder {
        self.howto_opts = opts;
        self
    }

    /// Finish: an owned, shareable session with an empty artifact cache.
    pub fn build(self) -> HyperSession {
        HyperSession {
            inner: Arc::new(SessionInner {
                db: self.db,
                graph: self.graph,
                config: self.config,
                howto_opts: self.howto_opts,
                cache: ArtifactCache::new(),
                queries_prepared: AtomicU64::new(0),
                queries_executed: AtomicU64::new(0),
            }),
        }
    }
}

/// An owned, cache-backed HypeR session. Cheap to clone (clones share the
/// cache), `Send + Sync`, safe to use from many threads at once.
#[derive(Clone)]
pub struct HyperSession {
    inner: Arc<SessionInner>,
}

impl std::fmt::Debug for HyperSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyperSession")
            .field("tables", &self.inner.db.tables().len())
            .field("graph", &self.inner.graph.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

impl HyperSession {
    /// Builder over the given database.
    pub fn builder(db: impl Into<Arc<Database>>) -> SessionBuilder {
        SessionBuilder::new(db)
    }

    /// Session with the default (plain HypeR) configuration. The graph is
    /// cloned into the session; use [`HyperSession::builder`] with
    /// [`SessionBuilder::graph`] to share an existing `Arc`.
    pub fn new(db: impl Into<Arc<Database>>, graph: Option<&CausalGraph>) -> HyperSession {
        SessionBuilder {
            db: db.into(),
            graph: graph.map(|g| Arc::new(g.clone())),
            config: EngineConfig::default(),
            howto_opts: HowToOptions::default(),
        }
        .build()
    }

    /// Replace the configuration, returning a session over the same
    /// database/graph with a **fresh, empty cache** (cached artifacts
    /// depend on the configuration).
    pub fn with_config(self, config: EngineConfig) -> HyperSession {
        SessionBuilder {
            db: Arc::clone(&self.inner.db),
            graph: self.inner.graph.clone(),
            config,
            howto_opts: self.inner.howto_opts.clone(),
        }
        .build()
    }

    /// Replace the how-to options, returning a session over the same
    /// database/graph with a fresh, empty cache.
    pub fn with_howto_options(self, opts: HowToOptions) -> HyperSession {
        SessionBuilder {
            db: Arc::clone(&self.inner.db),
            graph: self.inner.graph.clone(),
            config: self.inner.config.clone(),
            howto_opts: opts,
        }
        .build()
    }

    /// The bound database.
    pub fn database(&self) -> &Database {
        &self.inner.db
    }

    /// The bound causal graph, if any.
    pub fn graph(&self) -> Option<&CausalGraph> {
        self.inner.graph.as_deref()
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The active how-to options.
    pub fn howto_options(&self) -> &HowToOptions {
        &self.inner.howto_opts
    }

    /// Snapshot of cache and execution counters.
    pub fn stats(&self) -> SessionStats {
        let c = &self.inner.cache.counters;
        SessionStats {
            view_hits: c.view_hits.load(Ordering::Relaxed),
            view_misses: c.view_misses.load(Ordering::Relaxed),
            estimator_hits: c.estimator_hits.load(Ordering::Relaxed),
            estimator_misses: c.estimator_misses.load(Ordering::Relaxed),
            block_hits: c.block_hits.load(Ordering::Relaxed),
            block_misses: c.block_misses.load(Ordering::Relaxed),
            views_cached: self.inner.cache.cached_views(),
            estimators_cached: self.inner.cache.cached_estimators(),
            queries_prepared: self.inner.queries_prepared.load(Ordering::Relaxed),
            queries_executed: self.inner.queries_executed.load(Ordering::Relaxed),
        }
    }

    /// Parse, validate, resolve the `Use` clause, and plan `text` once,
    /// returning a handle that can be executed many times. The relevant
    /// view is built (or fetched) here, so the first
    /// [`PreparedQuery::execute`] only pays estimator training, and later
    /// ones only mask evaluation.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery> {
        let query = parse_query(text)?;
        let use_clause = match &query {
            HypotheticalQuery::WhatIf(q) => &q.use_clause,
            HypotheticalQuery::HowTo(q) => &q.use_clause,
        };
        let (view, view_key) = self.inner.cache.view(&self.inner.db, use_clause)?;
        let cols = view.column_names();
        match &query {
            HypotheticalQuery::WhatIf(q) => validate_whatif(q, Some(&cols))?,
            HypotheticalQuery::HowTo(q) => validate_howto(q, Some(&cols))?,
        }
        self.inner.queries_prepared.fetch_add(1, Ordering::Relaxed);
        Ok(PreparedQuery {
            session: self.clone(),
            text: text.to_string(),
            query,
            view,
            view_key,
        })
    }

    /// Parse and evaluate query text; returns either result kind.
    pub fn execute(&self, text: &str) -> Result<QueryOutcome> {
        match parse_query(text)? {
            HypotheticalQuery::WhatIf(q) => Ok(QueryOutcome::WhatIf(self.whatif(&q)?)),
            HypotheticalQuery::HowTo(q) => Ok(QueryOutcome::HowTo(self.howto(&q)?)),
        }
    }

    /// Evaluate many queries concurrently over the shared artifact cache,
    /// preserving input order in the output. Queries fan out across up to
    /// `available_parallelism` worker threads; results are identical to
    /// executing each query sequentially (estimator training is seeded and
    /// deterministic, and cached artifacts are immutable once built).
    pub fn execute_batch<S: AsRef<str> + Sync>(&self, queries: &[S]) -> Vec<Result<QueryOutcome>> {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        if workers <= 1 {
            return queries.iter().map(|q| self.execute(q.as_ref())).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Result<QueryOutcome>>> = (0..n).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = self.execute(queries[i].as_ref());
                    let _ = slots[i].set(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every batch slot is filled"))
            .collect()
    }

    /// Evaluate a parsed what-if query through the artifact cache.
    pub fn whatif(&self, q: &WhatIfQuery) -> Result<WhatIfResult> {
        self.inner.queries_executed.fetch_add(1, Ordering::Relaxed);
        evaluate_whatif_cached(
            &self.inner.db,
            self.graph(),
            &self.inner.config,
            q,
            &self.inner.cache,
        )
    }

    /// Evaluate a parsed how-to query via the IP formulation; the candidate
    /// what-if evaluations share the session caches.
    pub fn howto(&self, q: &HowToQuery) -> Result<HowToResult> {
        self.inner.queries_executed.fetch_add(1, Ordering::Relaxed);
        evaluate_howto_cached(
            &self.inner.db,
            self.graph(),
            &self.inner.config,
            q,
            &self.inner.howto_opts,
            Some(&self.inner.cache),
        )
    }

    /// Evaluate a how-to query by exhaustive enumeration (Opt-HowTo).
    pub fn howto_bruteforce(&self, q: &HowToQuery) -> Result<HowToResult> {
        self.inner.queries_executed.fetch_add(1, Ordering::Relaxed);
        evaluate_howto_bruteforce_cached(
            &self.inner.db,
            self.graph(),
            &self.inner.config,
            q,
            &self.inner.howto_opts,
            Some(&self.inner.cache),
        )
    }

    /// Lexicographic multi-objective how-to (§4.3 extension).
    pub fn howto_lexicographic(&self, qs: &[HowToQuery]) -> Result<LexicographicResult> {
        self.inner.queries_executed.fetch_add(1, Ordering::Relaxed);
        evaluate_howto_lexicographic_cached(
            &self.inner.db,
            self.graph(),
            &self.inner.config,
            qs,
            &self.inner.howto_opts,
            Some(&self.inner.cache),
        )
    }

    /// Parse and evaluate what-if text.
    pub fn whatif_text(&self, text: &str) -> Result<WhatIfResult> {
        match parse_query(text)? {
            HypotheticalQuery::WhatIf(q) => self.whatif(&q),
            HypotheticalQuery::HowTo(_) => Err(EngineError::Query(
                "expected a what-if query, got a how-to query".into(),
            )),
        }
    }

    /// Parse and evaluate how-to text.
    pub fn howto_text(&self, text: &str) -> Result<HowToResult> {
        match parse_query(text)? {
            HypotheticalQuery::HowTo(q) => self.howto(&q),
            HypotheticalQuery::WhatIf(_) => Err(EngineError::Query(
                "expected a how-to query, got a what-if query".into(),
            )),
        }
    }

    /// The block-independent decomposition of the bound database under the
    /// bound causal graph (Prop. 1/Example 7), computed once and cached.
    pub fn block_decomposition(&self) -> Result<Arc<BlockDecomposition>> {
        let graph = self.graph().ok_or_else(|| {
            EngineError::Causal("block decomposition requires a causal graph".into())
        })?;
        self.inner.cache.blocks(&self.inner.db, graph)
    }
}

/// A query parsed, validated, and planned once against a session; execute
/// it as many times as needed. Cheap to clone; clones share the session and
/// the resolved view. `Send + Sync`, so prepared queries can be executed
/// from worker threads directly.
#[derive(Clone)]
pub struct PreparedQuery {
    session: HyperSession,
    text: String,
    query: HypotheticalQuery,
    view: Arc<RelevantView>,
    view_key: String,
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("text", &self.text)
            .field("view_rows", &self.view.table.num_rows())
            .finish()
    }
}

impl PreparedQuery {
    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The parsed query.
    pub fn query(&self) -> &HypotheticalQuery {
        &self.query
    }

    /// Rows in the resolved relevant view.
    pub fn view_rows(&self) -> usize {
        self.view.table.num_rows()
    }

    /// Execute the prepared query.
    ///
    /// What-if queries skip parsing and view resolution (the view was
    /// resolved at prepare time) and fetch the fitted estimator from the
    /// session cache — training it on the first call only, which is where
    /// nearly all the latency lives. Per-execution work that remains:
    /// re-validating against the view schema, binding the `When`/`For`
    /// masks, and backdoor-set selection (all linear scans, no training).
    /// How-to queries reuse the session caches for their candidate
    /// what-if evaluations.
    pub fn execute(&self) -> Result<QueryOutcome> {
        let inner = &self.session.inner;
        inner.queries_executed.fetch_add(1, Ordering::Relaxed);
        match &self.query {
            HypotheticalQuery::WhatIf(q) => Ok(QueryOutcome::WhatIf(evaluate_whatif_on_view(
                &inner.db,
                self.session.graph(),
                &inner.config,
                q,
                &self.view,
                &self.view_key,
                Some(&inner.cache),
            )?)),
            HypotheticalQuery::HowTo(q) => Ok(QueryOutcome::HowTo(evaluate_howto_cached(
                &inner.db,
                self.session.graph(),
                &inner.config,
                q,
                &inner.howto_opts,
                Some(&inner.cache),
            )?)),
        }
    }

    /// Execute and expect a what-if result.
    pub fn execute_whatif(&self) -> Result<WhatIfResult> {
        match self.execute()? {
            QueryOutcome::WhatIf(r) => Ok(r),
            QueryOutcome::HowTo(_) => Err(EngineError::Query(
                "expected a what-if query, got a how-to query".into(),
            )),
        }
    }

    /// Execute and expect a how-to result.
    pub fn execute_howto(&self) -> Result<HowToResult> {
        match self.execute()? {
            QueryOutcome::HowTo(r) => Ok(r),
            QueryOutcome::WhatIf(_) => Err(EngineError::Query(
                "expected a how-to query, got a what-if query".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_types_are_send_sync_and_clone() {
        fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
        assert_send_sync_clone::<HyperSession>();
        assert_send_sync_clone::<PreparedQuery>();
        assert_send_sync_clone::<SessionStats>();
    }
}
