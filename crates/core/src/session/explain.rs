//! `EXPLAIN` for hypothetical queries: the static plan a session would (or
//! did) use to answer a query, with per-artifact cache provenance.
//!
//! [`HyperSession::explain`] resolves the relevant view (through the
//! cache — a cold explain builds it, exactly as `prepare` would), then
//! *plans* the rest without executing: the Prop.-1 block decomposition
//! size, the chosen backdoor adjustment set, the estimator configuration
//! and cache key. Nothing is trained — the estimator's provenance reports
//! [`Provenance::WouldBuild`] when a subsequent execution would have to
//! fit it.
//!
//! Every field except the provenance markers is a pure function of
//! (database, graph, config, query), so a report is identical on a cold
//! and a warm cache apart from provenance — asserted by the session test
//! suite and usable as a regression oracle.

use std::fmt;
use std::time::Instant;

use hyper_query::{HypotheticalQuery, QueryKey, UseClause};
use hyper_trace::{Phase, TraceSnapshot, TraceTree};

use crate::config::EstimatorKind;
use crate::error::Result;
use crate::session::{ArtifactCache, HyperSession, IntoQuery};
use crate::whatif::plan_whatif;

/// Where an artifact stands in the session cache at explain time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Already cached; execution reuses it for free.
    Hit,
    /// Not cached; explain built it (views only — view row counts require
    /// the view).
    Miss,
    /// Not cached and not built by explain; the next execution builds it.
    WouldBuild,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Hit => write!(f, "hit"),
            Provenance::Miss => write!(f, "miss"),
            Provenance::WouldBuild => write!(f, "would-build"),
        }
    }
}

/// Which query kind the report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// What-if (§3).
    WhatIf,
    /// How-to (§4).
    HowTo,
}

/// The relevant-view part of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewPlan {
    /// Canonical cache key of the `Use` clause.
    pub key: QueryKey,
    /// Source tables (the `Use` table, or the select's `From` list).
    pub source_tables: Vec<String>,
    /// Rendered `Where` predicate of an embedded select, if any.
    pub predicate: Option<String>,
    /// Materialized view rows.
    pub rows: usize,
    /// View columns.
    pub columns: usize,
    /// Cache provenance.
    pub provenance: Provenance,
}

/// The Prop.-1 block-decomposition part of the plan (present when a causal
/// graph is bound and the `Use` clause is a single table).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    /// Number of mutually independent blocks.
    pub count: usize,
    /// Whether evaluation actually decomposes by blocks
    /// ([`EngineConfig::use_blocks`]).
    pub used_in_evaluation: bool,
    /// Cache provenance.
    pub provenance: Provenance,
}

/// The estimator part of a what-if plan (absent on the deterministic fast
/// path, where post values are fully determined by the update functions).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorPlan {
    /// Estimator family.
    pub kind: EstimatorKind,
    /// Forest size.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Training-row cap (HypeR-sampled).
    pub sample_cap: Option<usize>,
    /// Training seed.
    pub seed: u64,
    /// Full estimator cache key (view ⊕ updates ⊕ output ⊕ for ⊕
    /// adjustment ⊕ config).
    pub key: String,
    /// Cache provenance (never `Miss`: explain does not train).
    pub provenance: Provenance,
}

/// The how-to part of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct HowToPlan {
    /// Attributes the optimizer may update.
    pub update_attrs: Vec<String>,
    /// Buckets per continuous attribute (candidate discretization).
    pub buckets: usize,
    /// Budget on simultaneously updated attributes.
    pub max_attrs_updated: Option<usize>,
    /// Number of `Limit` constraints.
    pub limits: usize,
}

/// One phase's measured share of an analyzed execution: **exclusive**
/// (self) time — nested spans subtract — plus the number of spans
/// entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Which phase.
    pub phase: Phase,
    /// Exclusive time, nanoseconds.
    pub self_ns: u64,
    /// Spans entered.
    pub count: u64,
}

/// Measured per-phase timings of one traced execution
/// ([`HyperSession::explain_analyze`]). Exclusive times partition the
/// span tree, so [`QueryTimings::total_ns`] (their sum) equals the
/// traced wall time on a single-threaded runtime; with pool workers it
/// is a CPU-time-like sum and can exceed [`QueryTimings::wall_ns`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTimings {
    /// Wall-clock time of the analyzed execution, nanoseconds.
    pub wall_ns: u64,
    /// Phases that recorded any time or spans, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseTiming>,
}

impl QueryTimings {
    /// Build from a trace snapshot plus the separately measured wall time.
    pub(crate) fn from_snapshot(snap: &TraceSnapshot, wall_ns: u64) -> QueryTimings {
        let phases = Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let (self_ns, count) = (snap.self_ns(phase), snap.count(phase));
                (self_ns != 0 || count != 0).then_some(PhaseTiming {
                    phase,
                    self_ns,
                    count,
                })
            })
            .collect();
        QueryTimings { wall_ns, phases }
    }

    /// Sum of the per-phase exclusive times (the attributed total).
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.self_ns).sum()
    }

    /// Exclusive time of `phase`, nanoseconds (0 when absent).
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map_or(0, |p| p.self_ns)
    }
}

/// A structured query plan: what a session would do to answer the query,
/// and which parts are already cached. Render with `Display` for the
/// textual form.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// Query kind.
    pub kind: QueryKind,
    /// Canonical query text (rendering of the IR).
    pub query: String,
    /// Canonical structural key of the whole query.
    pub key: QueryKey,
    /// Relevant-view plan.
    pub view: ViewPlan,
    /// Block-decomposition plan, when applicable.
    pub blocks: Option<BlockPlan>,
    /// Chosen backdoor adjustment columns (empty when deterministic or
    /// under `BackdoorMode::None`).
    pub adjustment: Vec<String>,
    /// True when the what-if answer is fully determined by the update
    /// functions (no estimator is trained at all).
    pub deterministic: bool,
    /// Estimator plan (what-if, non-deterministic only).
    pub estimator: Option<EstimatorPlan>,
    /// How-to plan (how-to only).
    pub howto: Option<HowToPlan>,
    /// Delta version of the session's database snapshot: 0 for a freshly
    /// built session, incremented by each [`HyperSession::refresh`].
    pub data_version: u64,
    /// Measured per-phase durations — present only on reports from
    /// [`HyperSession::explain_analyze`], which executes the query under
    /// tracing; plain [`HyperSession::explain`] leaves this `None`.
    pub timings: Option<QueryTimings>,
}

impl ExplainReport {
    /// A copy with every provenance marker cleared to
    /// [`Provenance::WouldBuild`]: two reports for the same query on the
    /// same session compare equal under this normalization regardless of
    /// cache warmth.
    pub fn normalized(&self) -> ExplainReport {
        let mut out = self.clone();
        out.view.provenance = Provenance::WouldBuild;
        if let Some(b) = &mut out.blocks {
            b.provenance = Provenance::WouldBuild;
        }
        if let Some(e) = &mut out.estimator {
            e.provenance = Provenance::WouldBuild;
        }
        // Timings are a measurement, not part of the plan.
        out.timings = None;
        out
    }
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "explain {}: {}",
            match self.kind {
                QueryKind::WhatIf => "what-if",
                QueryKind::HowTo => "how-to",
            },
            self.query
        )?;
        writeln!(f, "  data version: {}", self.data_version)?;
        write!(
            f,
            "  view: tables=[{}] rows={} cols={}",
            self.view.source_tables.join(", "),
            self.view.rows,
            self.view.columns
        )?;
        if let Some(p) = &self.view.predicate {
            write!(f, " where \"{p}\"")?;
        }
        writeln!(f, " [{}]", self.view.provenance)?;
        match &self.blocks {
            Some(b) => writeln!(
                f,
                "  blocks: {}{} [{}]",
                b.count,
                if b.used_in_evaluation {
                    ""
                } else {
                    " (not used: use_blocks=false)"
                },
                b.provenance
            )?,
            None => writeln!(f, "  blocks: n/a")?,
        }
        if self.deterministic {
            writeln!(
                f,
                "  deterministic: post values fully determined by the update; no estimator"
            )?;
        } else if self.kind == QueryKind::WhatIf {
            writeln!(f, "  adjustment set: [{}]", self.adjustment.join(", "))?;
        }
        if let Some(e) = &self.estimator {
            writeln!(
                f,
                "  estimator: {:?} trees={} depth={} cap={:?} seed={} [{}]",
                e.kind, e.n_trees, e.max_depth, e.sample_cap, e.seed, e.provenance
            )?;
        }
        if let Some(h) = &self.howto {
            writeln!(
                f,
                "  how-to: update=[{}] buckets={} attr_budget={:?} limits={}",
                h.update_attrs.join(", "),
                h.buckets,
                h.max_attrs_updated,
                h.limits
            )?;
        }
        if let Some(t) = &self.timings {
            writeln!(
                f,
                "  timings: attributed={} wall={}",
                fmt_ns(t.total_ns()),
                fmt_ns(t.wall_ns)
            )?;
            for p in &t.phases {
                writeln!(
                    f,
                    "    {}: {} ({} span{})",
                    p.phase.name(),
                    fmt_ns(p.self_ns),
                    p.count,
                    if p.count == 1 { "" } else { "s" }
                )?;
            }
        }
        Ok(())
    }
}

/// Human-scale duration: nanoseconds rendered at the natural unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl HyperSession {
    /// Explain how this session would evaluate a query, without training
    /// anything: the relevant-view source and size, the Prop.-1 block
    /// count, the chosen backdoor adjustment set, the estimator
    /// configuration, and per-artifact cache provenance
    /// (hit / miss / would-build).
    ///
    /// Accepts the same inputs as [`HyperSession::prepare`]. The relevant
    /// view is resolved through the cache (a cold explain builds it — that
    /// is the one `miss` a report can contain); the estimator is only
    /// looked up, never fitted. Every field except the provenance markers
    /// is deterministic in (database, graph, config, query), so reports
    /// from a cold and a warm session agree after
    /// [`ExplainReport::normalized`].
    pub fn explain(&self, input: impl IntoQuery) -> Result<ExplainReport> {
        let query = self.resolve_input(input)?;
        let cache = &self.inner.cache;
        let config = self.config().clone();

        // Relevant view (the only artifact explain may build).
        let use_clause = query.use_clause().clone();
        let view_cached = cache.has_view(ArtifactCache::view_key(&use_clause).as_str());
        let (view, view_key) = cache.view(self.database(), &use_clause)?;
        let (source_tables, predicate) = describe_use(&use_clause);
        let view_plan = ViewPlan {
            key: view_key.clone(),
            source_tables,
            predicate,
            rows: view.table.num_rows(),
            columns: view.table.schema().len(),
            provenance: if view_cached {
                Provenance::Hit
            } else {
                Provenance::Miss
            },
        };

        // Prop.-1 block decomposition: available exactly when a graph is
        // bound and the view is a single base relation (the evaluator's
        // own precondition).
        let blocks = match (self.graph(), &use_clause) {
            (Some(g), UseClause::Table(_)) => {
                let cached = cache.has_blocks();
                let decomposition = cache.blocks(self.database(), g)?;
                Some(BlockPlan {
                    count: decomposition.num_blocks(),
                    used_in_evaluation: config.use_blocks,
                    provenance: if cached {
                        Provenance::Hit
                    } else {
                        Provenance::Miss
                    },
                })
            }
            _ => None,
        };

        match &query {
            HypotheticalQuery::WhatIf(q) => {
                let plan = plan_whatif(
                    self.database(),
                    self.graph(),
                    &config,
                    q,
                    &view,
                    view_key.as_str(),
                )?;
                let estimator = plan.estimator_key.map(|key| EstimatorPlan {
                    kind: config.estimator,
                    n_trees: config.n_trees,
                    max_depth: config.max_depth,
                    sample_cap: config.sample_cap,
                    seed: config.seed,
                    provenance: if cache.has_estimator(&key) {
                        Provenance::Hit
                    } else {
                        Provenance::WouldBuild
                    },
                    key,
                });
                Ok(ExplainReport {
                    kind: QueryKind::WhatIf,
                    query: query.to_string(),
                    key: QueryKey::of_query(&query),
                    view: view_plan,
                    blocks,
                    adjustment: plan.backdoor,
                    deterministic: !plan.needs_estimation,
                    estimator,
                    howto: None,
                    data_version: self.inner.data_version,
                    timings: None,
                })
            }
            HypotheticalQuery::HowTo(q) => {
                let opts = self.howto_options();
                Ok(ExplainReport {
                    kind: QueryKind::HowTo,
                    query: query.to_string(),
                    key: QueryKey::of_query(&query),
                    view: view_plan,
                    blocks,
                    adjustment: Vec::new(),
                    deterministic: false,
                    estimator: None,
                    howto: Some(HowToPlan {
                        update_attrs: q.update_attrs.clone(),
                        buckets: opts.buckets,
                        max_attrs_updated: opts.max_attrs_updated,
                        limits: q.limits.len(),
                    }),
                    data_version: self.inner.data_version,
                    timings: None,
                })
            }
        }
    }
}

impl HyperSession {
    /// `EXPLAIN ANALYZE`: execute the query under a dedicated trace, then
    /// return the plan report with [`ExplainReport::timings`] populated
    /// from the measured span tree — each plan step annotated with the
    /// phase time it actually cost, and provenance reflecting the
    /// post-execution cache (a second analyze shows the estimator as a
    /// hit and near-zero `forest_train` time).
    ///
    /// Works regardless of the session's tracing switch; the trace lives
    /// only for this call, and its totals are folded into the cumulative
    /// [`super::SessionStats`] timing counters like any traced query.
    pub fn explain_analyze(&self, input: impl IntoQuery) -> Result<ExplainReport> {
        let query = self.resolve_input(input)?;
        let tree = TraceTree::new();
        let started = Instant::now();
        let run = hyper_trace::with_trace(&tree, || {
            let _root = hyper_trace::span(Phase::Execute);
            match &query {
                HypotheticalQuery::WhatIf(q) => self.whatif(q).map(drop),
                HypotheticalQuery::HowTo(q) => self.howto(q).map(drop),
            }
        });
        let wall_ns = started.elapsed().as_nanos() as u64;
        run?;
        let snap = tree.snapshot();
        self.fold_trace(&snap);
        let mut report = self.explain(&query)?;
        report.timings = Some(QueryTimings::from_snapshot(&snap, wall_ns));
        Ok(report)
    }
}

/// Source tables and rendered predicate of a `Use` clause.
fn describe_use(u: &UseClause) -> (Vec<String>, Option<String>) {
    match u {
        UseClause::Table(t) => (vec![t.clone()], None),
        UseClause::Select(s) => {
            let tables = s.from.iter().map(|t| t.table.clone()).collect();
            let predicate = if s.conditions.is_empty() {
                None
            } else {
                Some(
                    s.conditions
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(" And "),
                )
            };
            (tables, predicate)
        }
    }
}
