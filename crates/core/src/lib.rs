//! # hyper-core
//!
//! The HypeR engine — the primary contribution of *"HypeR: Hypothetical
//! Reasoning With What-If and How-To Queries Using a Probabilistic Causal
//! Approach"* (SIGMOD 2022), reproduced in Rust:
//!
//! * **What-if queries** (§3): expected aggregate values over possible
//!   worlds under a probabilistic relational causal model, computed by
//!   backdoor adjustment with a random-forest conditional estimator
//!   ([`whatif`]), an exact possible-world oracle for discrete models
//!   ([`whatif::exact`]), and the block-decomposition optimization.
//! * **How-to queries** (§4): optimization over candidate what-if queries
//!   via bucketized candidate updates and a 0-1 Integer Program
//!   ([`howto`]), with the exhaustive Opt-HowTo baseline and the
//!   lexicographic multi-objective extension.
//! * **Variants** of the paper's evaluation: plain HypeR, HypeR-NB (no
//!   background graph), HypeR-sampled, and the correlational Indep
//!   baseline ([`config`]).
//!
//! ## Sessions: prepare once, execute many
//!
//! The entry point is [`HyperSession`] — an owned, `Send + Sync`, cheaply
//! cloneable handle over `Arc<Database>` + `Arc<CausalGraph>` that caches
//! the expensive intermediates of the paper's §3.3 computation strategy
//! (relevant views, the Prop.-1 block decomposition, fitted estimators)
//! across queries, prepared executions, and threads:
//!
//! ```no_run
//! use hyper_core::{EngineConfig, HyperSession};
//! # fn demo(db: hyper_storage::Database, g: hyper_causal::CausalGraph)
//! # -> hyper_core::Result<()> {
//! let session = HyperSession::builder(db)
//!     .graph(g)
//!     .config(EngineConfig::hyper())
//!     .build();
//!
//! // Prepared query: parsed, validated, and view-resolved once.
//! let q = session.prepare(
//!     "Use product When brand = 'Asus' \
//!      Update(price) = 1.1 * Pre(price) \
//!      Output Avg(Post(rating)) For Pre(category) = 'Laptop'",
//! )?;
//! let first = q.execute_whatif()?; // trains the estimator
//! let again = q.execute_whatif()?; // pure cache hit
//! assert_eq!(first.value, again.value);
//! assert!(session.stats().estimator_hits > 0);
//!
//! // Parallel batch over the shared cache.
//! let results = session.execute_batch(&[
//!     "Use product Update(price) = 0.9 * Pre(price) Output Avg(Post(rating))",
//!     "Use product Update(price) = 1.1 * Pre(price) Output Avg(Post(rating))",
//! ]);
//! assert!(results.iter().all(|r| r.is_ok()));
//! # Ok(()) }
//! ```
//!
//! The borrow-based [`HyperEngine`] remains as a deprecated shim that
//! recomputes every artifact per call.

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod hexpr;
pub mod howto;
pub mod session;
pub mod view;
pub mod whatif;

pub use config::{BackdoorMode, EngineConfig, EstimatorKind, HowToOptions};
#[allow(deprecated)]
pub use engine::HyperEngine;
pub use error::{EngineError, Result};
pub use howto::multi::LexicographicResult;
pub use howto::HowToResult;
pub use session::{
    ArtifactCache, HyperSession, PreparedQuery, QueryOutcome, SessionBuilder, SessionStats,
};
pub use view::{build_relevant_view, ColumnOrigin, RelevantView};
pub use whatif::exact::exact_whatif;
pub use whatif::{evaluate_whatif, WhatIfResult};
