//! # hyper-core
//!
//! The HypeR engine — the primary contribution of *"HypeR: Hypothetical
//! Reasoning With What-If and How-To Queries Using a Probabilistic Causal
//! Approach"* (SIGMOD 2022), reproduced in Rust:
//!
//! * **What-if queries** (§3): expected aggregate values over possible
//!   worlds under a probabilistic relational causal model, computed by
//!   backdoor adjustment with a random-forest conditional estimator
//!   ([`whatif`]), an exact possible-world oracle for discrete models
//!   ([`whatif::exact`]), and the block-decomposition optimization.
//! * **How-to queries** (§4): optimization over candidate what-if queries
//!   via bucketized candidate updates and a 0-1 Integer Program
//!   ([`howto`]), with the exhaustive Opt-HowTo baseline and the
//!   lexicographic multi-objective extension.
//! * **Variants** of the paper's evaluation: plain HypeR, HypeR-NB (no
//!   background graph), HypeR-sampled, and the correlational Indep
//!   baseline ([`config`]).
//!
//! ## Sessions: prepare once, execute many
//!
//! The entry point is [`HyperSession`] — an owned, `Send + Sync`, cheaply
//! cloneable handle over `Arc<Database>` + `Arc<CausalGraph>` that caches
//! the expensive intermediates of the paper's §3.3 computation strategy
//! (relevant views, the Prop.-1 block decomposition, fitted estimators)
//! across queries, prepared executions, and threads.
//! [`HyperSession::prepare`] accepts query text, a parsed AST, or the
//! typed [`WhatIf`](hyper_query::WhatIf) / [`HowTo`](hyper_query::HowTo)
//! builders — all three produce the same IR and key into the same cache
//! entries:
//!
//! ```no_run
//! use hyper_core::{CacheBudget, EngineConfig, HyperSession};
//! use hyper_query::{Bindings, HExpr, WhatIf};
//! # fn demo(db: hyper_storage::Database, g: hyper_causal::CausalGraph)
//! # -> hyper_core::Result<()> {
//! let session = HyperSession::builder(db)
//!     .graph(g)
//!     .config(EngineConfig::hyper())
//!     .cache_budget(CacheBudget::estimators(512)) // LRU-bounded
//!     .build();
//!
//! // A typed, parameterized template: validated and view-resolved once.
//! let q = session.prepare(
//!     WhatIf::over("product")
//!         .when(HExpr::attr("brand").eq("Asus"))
//!         .scale_param("price", "mult")
//!         .output_avg_post("rating")
//!         .filter(HExpr::pre("category").eq("Laptop")),
//! )?;
//!
//! // Sweep the multiplier: one view build for the whole sweep, one
//! // estimator training per distinct binding, zero parses.
//! for i in 0..50 {
//!     let mult = 1.0 + 0.01 * i as f64;
//!     let r = q.execute_whatif_with(&Bindings::new().set("mult", mult))?;
//!     println!("x{mult:.2} -> {:.3}", r.value);
//! }
//! assert_eq!(session.stats().view_misses, 1);
//! assert_eq!(session.stats().texts_parsed, 0);
//!
//! // explain(): the plan (view source/size, block count, adjustment set,
//! // estimator config) plus per-artifact cache provenance — no training.
//! println!("{}", q.explain_with(&Bindings::new().set("mult", 1.1))?);
//!
//! // Text still works everywhere, including parallel batches over the
//! // shared cache.
//! let results = session.execute_batch(&[
//!     "Use product Update(price) = 0.9 * Pre(price) Output Avg(Post(rating))",
//!     "Use product Update(price) = 1.1 * Pre(price) Output Avg(Post(rating))",
//! ]);
//! assert!(results.iter().all(|r| r.is_ok()));
//! # Ok(()) }
//! ```
//!
//! The borrow-based [`HyperEngine`] remains as a deprecated shim that
//! recomputes every artifact per call.
//!
//! ## The shared execution runtime
//!
//! Two process-wide facilities sit underneath every session:
//!
//! * **[`HyperRuntime`](hyper_runtime::HyperRuntime)** — one persistent
//!   worker pool (fixed threads, shared injector queue) that
//!   [`HyperSession::execute_batch`], how-to candidate evaluation, and
//!   random-forest training all route through. Fan-outs nest freely —
//!   a batch of how-to queries, each evaluating candidates, each
//!   training trees, still runs on the same fixed thread count — and
//!   seeded results are bit-identical whatever the worker count (every
//!   tree derives its RNG from `(seed, tree index)`). Sessions use the
//!   global pool by default; [`SessionBuilder::runtime`] installs a
//!   private one.
//! * **[`SharedArtifactStore`]** — a process-wide store of relevant
//!   views, block decompositions, and fitted estimators, sharded by
//!   `(database fingerprint, graph fingerprint)` *content* hashes. Each
//!   session's [`ArtifactCache`] is a thin local tier (LRU budget,
//!   per-session counters) over its shard: a local miss resolves through
//!   the shared store single-flight **across sessions**, so N tenant
//!   sessions over one dataset pay for each artifact once process-wide
//!   (see `examples/multi_session.rs`). [`SessionStats`] separates local
//!   hits, shared hits, and real builds;
//!   [`SessionBuilder::share_artifacts`]`(false)` opts a session out.
//!
//! ## The three-tier artifact cache
//!
//! With a persist directory configured, artifact resolution runs through
//! three tiers, each consulted only when the tier above misses:
//!
//! ```text
//!   ArtifactCache (per session)     local LRU tier — CacheBudget-bounded,
//!        │ miss                     plain hits
//!        ▼
//!   SharedArtifactStore shard       in-memory, process-wide, single-flight
//!        │ miss                     across sessions; byte-budgeted LRU
//!        ▼                          (SessionBuilder::shared_budget_bytes)
//!   persist_dir artifact files      checksummed HYPR1 files keyed by the
//!        │ miss                     full cache key + shard fingerprints;
//!        ▼                          survive restarts
//!   build / train                   spills back to disk on completion
//! ```
//!
//! [`SessionBuilder::persist_dir`] enables the disk tier: artifacts are
//! spilled as `hyper-store` `HYPR1` files when built and recovered by
//! deserialization after a restart — a reloaded forest predicts
//! bit-identically, so a restarted process answers its first what-if at
//! warm-cache speed with **zero** estimator builds
//! ([`SessionStats::estimator_disk_hits`]; `examples/warm_start.rs`
//! asserts exactly that, and `bench_smoke` gates the warm start at ≥3×
//! faster than retraining). Stale directories (different data), hash
//! collisions, truncated files, and flipped bytes all read as typed
//! errors and fall back to a rebuild — never a panic, never a wrong
//! artifact. When the shared tier's byte budget evicts an artifact whose
//! builder had persistence enabled, the next request re-serves it from
//! disk instead of retraining.
//!
//! ```no_run
//! use hyper_core::HyperSession;
//! # fn demo(db: std::sync::Arc<hyper_storage::Database>,
//! #          g: std::sync::Arc<hyper_causal::CausalGraph>) -> hyper_core::Result<()> {
//! // Two tenants over the same data: the second session's first query
//! // reuses the first session's view and estimator via the shared store.
//! let a = HyperSession::builder(db.clone()).graph(g.clone()).build();
//! let b = HyperSession::builder(db).graph(g).build();
//! a.whatif_text("Use d Update(b) = 1 Output Count(Post(y) = 1)")?;
//! b.whatif_text("Use d Update(b) = 1 Output Count(Post(y) = 1)")?;
//! assert_eq!(b.stats().view_misses, 0);
//! assert_eq!(b.stats().view_shared_hits, 1);
//! assert_eq!(b.stats().estimator_shared_hits, 1);
//! # Ok(()) }
//! ```
//!
//! ## Incremental writes: refresh with block-scoped invalidation
//!
//! Sessions are immutable snapshots over `Arc<Database>`, so writes are
//! modeled as a transition: [`HyperSession::refresh`] takes a typed
//! [`DeltaBatch`](hyper_ingest::DeltaBatch) (appends and/or deletes
//! against named tables), applies it transactionally, and returns a
//! [`RefreshOutcome`] — a new session over the post-delta database plus
//! a [`RefreshReport`] saying exactly which cached artifacts survived.
//! Invalidation is *causal*, not wholesale: a relevant view is kept when
//! its source relations are untouched, or when its `Use` filter provably
//! admits none of the appended/deleted rows **and** the Prop.-1 block
//! decomposition kept its per-block content fingerprints (a graph with
//! only intra-tuple edges makes every tuple a singleton block, so an
//! append-only delta passes the block guard without recomputing the
//! decomposition at all). Estimators survive exactly when the view they
//! were trained over survives. Surviving artifacts are adopted into the
//! new session's cache tiers, so re-serving them is a pure cache hit —
//! `tests/prop_ingest.rs` property-checks bit-for-bit parity against a
//! cold rebuild, and the `bench_smoke` `delta_refresh_german_10k` gate
//! holds refresh + re-serving the untouched working set ≥3× faster than
//! a from-scratch session. Each refresh bumps
//! [`SessionStats::data_version`], which [`ExplainReport`] carries so
//! answers correlate with the data they were computed over.
//!
//! ## Observability: phase tracing and timing counters
//!
//! Every layer of the query path is instrumented with `hyper-trace`
//! spans, keyed by a fixed [`Phase`] taxonomy:
//!
//! | phase | recorded where |
//! |---|---|
//! | `parse` | query-text parsing ([`SessionStats::texts_parsed`] sites) |
//! | `plan` | validation, expression binding, masks, adjustment-set selection |
//! | `view_build` | [`build_relevant_view`] |
//! | `block_decomp` | Prop.-1 decomposition computation |
//! | `encoder_fit` | feature-encoder fitting (`hyper-ml`) |
//! | `forest_train` | estimator training, resident and streamed |
//! | `predict` | forest inference during mask evaluation |
//! | `cache_lookup` | [`ArtifactCache`] tiered fetches (lookup overhead only) |
//! | `queue_wait` / `execute` | `hyper-serve` admission queue vs. work |
//! | `snapshot_load` | disk-tier artifact recovery, server snapshot loads |
//! | `refresh` | [`HyperSession::refresh`] root span |
//! | `paged_io` | out-of-core chunk reads (`hyper-store` paging) |
//!
//! Tracing is **per session** ([`SessionBuilder::tracing`], default off)
//! and attributes **exclusive** time: nested spans subtract, so the
//! per-phase totals of one traced query partition its root span exactly
//! — phases always sum to the attributed total, and parallel fan-outs
//! (morsel workers, batch items) are credited to the query that spawned
//! them via trace-context propagation through the
//! [`HyperRuntime`](hyper_runtime::HyperRuntime) pool.
//!
//! **Overhead contract**: with tracing off, the entire cost is one
//! relaxed atomic load per potential span — `bench_smoke` gates the
//! traced prepared what-if path at ≤ 1.05× the untraced one. Tracing
//! never changes results; the bit-identity property suites run with it
//! enabled.
//!
//! Cumulative per-phase totals surface in the [`SessionStats`] timing
//! fields ([`SessionStats::phase_ns`]), per-query measurements in
//! [`HyperSession::explain_analyze`] (`EXPLAIN ANALYZE`-style:
//! [`ExplainReport::timings`]), and over HTTP as per-tenant latency
//! percentiles in `hyper-serve`'s `/stats` and Prometheus `/metrics`.

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod hexpr;
pub mod howto;
pub(crate) mod persist;
pub mod session;
pub mod view;
pub mod whatif;

pub use config::{BackdoorMode, EngineConfig, EstimatorKind, HowToOptions};
#[allow(deprecated)]
pub use engine::HyperEngine;
pub use error::{EngineError, Result};
pub use howto::multi::LexicographicResult;
pub use howto::HowToResult;
pub use hyper_trace::{Phase, NUM_PHASES};
pub use session::{
    ArtifactCache, BlockPlan, CacheBudget, EstimatorPlan, ExplainReport, HowToPlan, HyperSession,
    IntoQuery, PhaseTiming, PreparedQuery, Provenance, QueryInput, QueryKind, QueryOutcome,
    QueryTimings, RefreshOutcome, RefreshReport, SessionBuilder, SessionStats, SharedArtifactStore,
    SharedStoreStats, ViewPlan,
};
pub use view::{build_relevant_view, ColumnOrigin, RelevantView, ViewProvenance};
pub use whatif::exact::exact_whatif;
pub use whatif::{evaluate_whatif, WhatIfResult};
