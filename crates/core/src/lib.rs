//! # hyper-core
//!
//! The HypeR engine — the primary contribution of *"HypeR: Hypothetical
//! Reasoning With What-If and How-To Queries Using a Probabilistic Causal
//! Approach"* (SIGMOD 2022), reproduced in Rust:
//!
//! * **What-if queries** (§3): expected aggregate values over possible
//!   worlds under a probabilistic relational causal model, computed by
//!   backdoor adjustment with a random-forest conditional estimator
//!   ([`whatif`]), an exact possible-world oracle for discrete models
//!   ([`whatif::exact`]), and the block-decomposition optimization.
//! * **How-to queries** (§4): optimization over candidate what-if queries
//!   via bucketized candidate updates and a 0-1 Integer Program
//!   ([`howto`]), with the exhaustive Opt-HowTo baseline and the
//!   lexicographic multi-objective extension.
//! * **Variants** of the paper's evaluation: plain HypeR, HypeR-NB (no
//!   background graph), HypeR-sampled, and the correlational Indep
//!   baseline ([`config`]).
//!
//! ```no_run
//! use hyper_core::{HyperEngine, EngineConfig};
//! # fn demo(db: &hyper_storage::Database, g: &hyper_causal::CausalGraph)
//! # -> hyper_core::Result<()> {
//! let engine = HyperEngine::new(db, Some(g)).with_config(EngineConfig::hyper());
//! let r = engine.whatif_text(
//!     "Use product When brand = 'Asus' \
//!      Update(price) = 1.1 * Pre(price) \
//!      Output Avg(Post(rating)) For Pre(category) = 'Laptop'",
//! )?;
//! println!("expected avg rating after the price bump: {}", r.value);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod hexpr;
pub mod howto;
pub mod view;
pub mod whatif;

pub use config::{BackdoorMode, EngineConfig, EstimatorKind, HowToOptions};
pub use engine::{HyperEngine, QueryOutcome};
pub use error::{EngineError, Result};
pub use howto::multi::LexicographicResult;
pub use howto::HowToResult;
pub use view::{build_relevant_view, ColumnOrigin, RelevantView};
pub use whatif::exact::exact_whatif;
pub use whatif::{evaluate_whatif, WhatIfResult};
