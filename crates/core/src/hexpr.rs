//! Dual-world evaluation of hypothetical expressions: an [`HExpr`] is
//! evaluated against a *pre* row and a *post* row of the relevant view,
//! with `Pre(A)` reading the former and `Post(A)` the latter.

use hyper_query::{HExpr, HOp, Temporal};
use hyper_storage::{Schema, Table, Value};

use crate::error::{EngineError, Result};

/// An `HExpr` with attribute references resolved to view column positions.
#[derive(Debug, Clone)]
pub enum BoundHExpr {
    /// Attribute read: `(world, column index)`.
    Attr(Temporal, usize),
    /// Literal.
    Lit(Value),
    /// Negation.
    Not(Box<BoundHExpr>),
    /// Binary operation.
    Binary(HOp, Box<BoundHExpr>, Box<BoundHExpr>),
    /// Membership.
    InList {
        /// Tested expression.
        expr: Box<BoundHExpr>,
        /// Candidates.
        list: Vec<Value>,
        /// Negated?
        negated: bool,
    },
}

/// Resolve a view column name case-insensitively.
pub fn resolve_column(schema: &Schema, name: &str) -> Result<usize> {
    if let Ok(i) = schema.index_of(name) {
        return Ok(i);
    }
    let mut found: Option<usize> = None;
    for (i, f) in schema.fields().iter().enumerate() {
        if f.name.eq_ignore_ascii_case(name) {
            if found.is_some() {
                return Err(EngineError::Plan(format!(
                    "attribute `{name}` is ambiguous in the relevant view"
                )));
            }
            found = Some(i);
        }
    }
    found.ok_or_else(|| {
        EngineError::Plan(format!(
            "attribute `{name}` is not a column of the relevant view"
        ))
    })
}

/// Bind an expression to the view schema, applying `default` to unmarked
/// attribute references.
pub fn bind_hexpr(expr: &HExpr, schema: &Schema, default: Temporal) -> Result<BoundHExpr> {
    Ok(match expr {
        HExpr::Attr { temporal, name } => {
            BoundHExpr::Attr(temporal.unwrap_or(default), resolve_column(schema, name)?)
        }
        HExpr::Lit(v) => BoundHExpr::Lit(v.clone()),
        HExpr::Not(e) => BoundHExpr::Not(Box::new(bind_hexpr(e, schema, default)?)),
        HExpr::Binary { op, left, right } => BoundHExpr::Binary(
            *op,
            Box::new(bind_hexpr(left, schema, default)?),
            Box::new(bind_hexpr(right, schema, default)?),
        ),
        HExpr::InList {
            expr,
            list,
            negated,
        } => BoundHExpr::InList {
            expr: Box::new(bind_hexpr(expr, schema, default)?),
            list: list.clone(),
            negated: *negated,
        },
        HExpr::Param(name) => {
            return Err(EngineError::Query(format!(
                "unresolved parameter `Param({name})`; supply a value through \
                 Bindings (e.g. PreparedQuery::execute_with) before evaluation"
            )))
        }
    })
}

impl BoundHExpr {
    /// Evaluate against row `i` of columnar `(pre, post)` tables, reading
    /// cells straight off the typed columns — no row materialization.
    /// `pre` and `post` may be the same table (the unmodified world).
    pub fn eval_at(&self, pre: &Table, post: &Table, i: usize) -> Result<Value> {
        self.eval_with(&mut |t, c| match t {
            Temporal::Pre => pre.column(c).value(i),
            Temporal::Post => post.column(c).value(i),
        })
    }

    /// Evaluate row `i` as a predicate (NULL → false), reading the typed
    /// columns directly.
    pub fn eval_bool_at(&self, pre: &Table, post: &Table, i: usize) -> Result<bool> {
        match self.eval_at(pre, post, i)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            v => Err(EngineError::Plan(format!(
                "predicate evaluated to non-boolean {v}"
            ))),
        }
    }

    /// Evaluate the predicate over every row of `table` with `post = pre`
    /// (the mask-construction helper for `When`/`For` clauses).
    pub fn eval_mask(&self, table: &Table) -> Result<Vec<bool>> {
        (0..table.num_rows())
            .map(|i| self.eval_bool_at(table, table, i))
            .collect()
    }

    /// Evaluate against `(pre, post)` rows.
    pub fn eval(&self, pre: &[Value], post: &[Value]) -> Result<Value> {
        self.eval_with(&mut |t, c| match t {
            Temporal::Pre => pre[c].clone(),
            Temporal::Post => post[c].clone(),
        })
    }

    /// Core evaluator over an arbitrary `(world, column) → Value` accessor.
    pub(crate) fn eval_with(&self, get: &mut dyn FnMut(Temporal, usize) -> Value) -> Result<Value> {
        Ok(match self {
            BoundHExpr::Attr(t, i) => get(*t, *i),
            BoundHExpr::Lit(v) => v.clone(),
            BoundHExpr::Not(e) => match e.eval_with(get)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                v => return Err(EngineError::Plan(format!("Not expects boolean, got {v}"))),
            },
            BoundHExpr::Binary(op, l, r) => {
                let lv = l.eval_with(get)?;
                // Short-circuit logical operators.
                if *op == HOp::And && lv == Value::Bool(false) {
                    return Ok(Value::Bool(false));
                }
                if *op == HOp::Or && lv == Value::Bool(true) {
                    return Ok(Value::Bool(true));
                }
                let rv = r.eval_with(get)?;
                match op {
                    HOp::Eq => Value::Bool(lv.sql_eq(&rv)),
                    HOp::Ne => {
                        if lv.is_null() || rv.is_null() {
                            Value::Bool(false)
                        } else {
                            Value::Bool(!lv.sql_eq(&rv))
                        }
                    }
                    HOp::Lt | HOp::Le | HOp::Gt | HOp::Ge => match lv.sql_cmp(&rv) {
                        None => Value::Bool(false),
                        Some(o) => Value::Bool(match op {
                            HOp::Lt => o.is_lt(),
                            HOp::Le => o.is_le(),
                            HOp::Gt => o.is_gt(),
                            HOp::Ge => o.is_ge(),
                            _ => unreachable!(),
                        }),
                    },
                    HOp::And | HOp::Or => {
                        let lb = as_bool(&lv)?;
                        let rb = as_bool(&rv)?;
                        match (op, lb, rb) {
                            (HOp::And, Some(a), Some(b)) => Value::Bool(a && b),
                            (HOp::Or, Some(a), Some(b)) => Value::Bool(a || b),
                            _ => Value::Null,
                        }
                    }
                    HOp::Add => lv.add(&rv).map_err(EngineError::from)?,
                    HOp::Sub => lv.sub(&rv).map_err(EngineError::from)?,
                    HOp::Mul => lv.mul(&rv).map_err(EngineError::from)?,
                    HOp::Div => lv.div(&rv).map_err(EngineError::from)?,
                }
            }
            BoundHExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_with(get)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let found = list.iter().any(|c| v.sql_eq(c));
                Value::Bool(found != *negated)
            }
        })
    }

    /// Evaluate as a predicate (NULL → false).
    pub fn eval_bool(&self, pre: &[Value], post: &[Value]) -> Result<bool> {
        match self.eval(pre, post)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            v => Err(EngineError::Plan(format!(
                "predicate evaluated to non-boolean {v}"
            ))),
        }
    }

    /// Column indices read from the post world.
    pub fn post_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let BoundHExpr::Attr(Temporal::Post, i) = e {
                out.push(*i);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Column indices read from the pre world.
    pub fn pre_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let BoundHExpr::Attr(Temporal::Pre, i) = e {
                out.push(*i);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    fn walk(&self, f: &mut impl FnMut(&BoundHExpr)) {
        f(self);
        match self {
            BoundHExpr::Not(e) => e.walk(f),
            BoundHExpr::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            BoundHExpr::InList { expr, .. } => expr.walk(f),
            BoundHExpr::Attr(..) | BoundHExpr::Lit(_) => {}
        }
    }
}

fn as_bool(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        v => Err(EngineError::Plan(format!(
            "logical operator expects boolean, got {v}"
        ))),
    }
}

/// Split a predicate into `(pre-only conjuncts, conjuncts touching Post)`.
///
/// The paper decomposes `For` into `μ_For,Pre ∧ μ_For,Post` (§A.2.1); we do
/// the same at the top-level conjunction, leaving mixed conjuncts on the
/// post side (they are evaluated with both worlds available).
pub fn split_pre_post(expr: &HExpr, default: Temporal) -> (Vec<HExpr>, Vec<HExpr>) {
    let mut pre = Vec::new();
    let mut post = Vec::new();
    collect_conjuncts(expr, &mut |conj| {
        let touches_post = conj
            .attrs_with_default(default)
            .iter()
            .any(|(t, _)| *t == Temporal::Post);
        if touches_post {
            post.push(conj.clone());
        } else {
            pre.push(conj.clone());
        }
    });
    (pre, post)
}

fn collect_conjuncts(expr: &HExpr, f: &mut impl FnMut(&HExpr)) {
    match expr {
        HExpr::Binary {
            op: HOp::And,
            left,
            right,
        } => {
            collect_conjuncts(left, f);
            collect_conjuncts(right, f);
        }
        other => f(other),
    }
}

/// Re-assemble conjuncts into a single expression (`None` when empty).
pub fn conjoin(conjuncts: &[HExpr]) -> Option<HExpr> {
    let mut it = conjuncts.iter().cloned();
    let first = it.next()?;
    Some(it.fold(first, |acc, c| acc.and(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("price", DataType::Float),
            Field::new("rating", DataType::Float),
            Field::new("brand", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn pre_and_post_read_different_worlds() {
        let e = HExpr::binary(HOp::Lt, HExpr::pre("price"), HExpr::post("price"));
        let b = bind_hexpr(&e, &schema(), Temporal::Pre).unwrap();
        let pre = vec![Value::Float(100.0), Value::Float(3.0), Value::str("a")];
        let post = vec![Value::Float(110.0), Value::Float(2.5), Value::str("a")];
        assert_eq!(b.eval(&pre, &post).unwrap(), Value::Bool(true));
        assert_eq!(b.eval(&post, &pre).unwrap(), Value::Bool(false));
    }

    #[test]
    fn default_temporal_applied_at_bind() {
        let e = HExpr::binary(HOp::Gt, HExpr::attr("rating"), HExpr::lit(2.8));
        let pre = vec![Value::Float(100.0), Value::Float(3.0), Value::str("a")];
        let post = vec![Value::Float(100.0), Value::Float(2.5), Value::str("a")];
        let b = bind_hexpr(&e, &schema(), Temporal::Pre).unwrap();
        assert_eq!(b.eval(&pre, &post).unwrap(), Value::Bool(true));
        let b = bind_hexpr(&e, &schema(), Temporal::Post).unwrap();
        assert_eq!(b.eval(&pre, &post).unwrap(), Value::Bool(false));
    }

    #[test]
    fn case_insensitive_resolution() {
        let e = HExpr::binary(HOp::Eq, HExpr::attr("Brand"), HExpr::lit("a"));
        let b = bind_hexpr(&e, &schema(), Temporal::Pre).unwrap();
        let row = vec![Value::Float(0.0), Value::Float(0.0), Value::str("a")];
        assert_eq!(b.eval(&row, &row).unwrap(), Value::Bool(true));
        assert!(bind_hexpr(&HExpr::attr("ghost"), &schema(), Temporal::Pre).is_err());
    }

    #[test]
    fn split_separates_conjuncts() {
        let e = HExpr::binary(HOp::Eq, HExpr::attr("brand"), HExpr::lit("a"))
            .and(HExpr::binary(
                HOp::Gt,
                HExpr::post("rating"),
                HExpr::lit(0.5),
            ))
            .and(HExpr::binary(
                HOp::Lt,
                HExpr::pre("price"),
                HExpr::post("price"),
            ));
        let (pre, post) = split_pre_post(&e, Temporal::Pre);
        assert_eq!(pre.len(), 1);
        assert_eq!(post.len(), 2);
        let rebuilt = conjoin(&pre).unwrap();
        assert!(!rebuilt.mentions_post());
    }

    #[test]
    fn post_column_collection() {
        let e = HExpr::binary(HOp::Gt, HExpr::post("rating"), HExpr::pre("price"));
        let b = bind_hexpr(&e, &schema(), Temporal::Pre).unwrap();
        assert_eq!(b.post_columns(), vec![1]);
        assert_eq!(b.pre_columns(), vec![0]);
    }

    #[test]
    fn arithmetic_across_worlds() {
        // Pre(price) - Post(price) < 15
        let e = HExpr::binary(
            HOp::Lt,
            HExpr::binary(HOp::Sub, HExpr::pre("price"), HExpr::post("price")),
            HExpr::lit(15.0),
        );
        let b = bind_hexpr(&e, &schema(), Temporal::Pre).unwrap();
        let pre = vec![Value::Float(100.0), Value::Float(0.0), Value::str("a")];
        let post = vec![Value::Float(90.0), Value::Float(0.0), Value::str("a")];
        assert_eq!(b.eval(&pre, &post).unwrap(), Value::Bool(true));
        let post = vec![Value::Float(80.0), Value::Float(0.0), Value::str("a")];
        assert_eq!(b.eval(&pre, &post).unwrap(), Value::Bool(false));
    }
}
