//! The disk-backed artifact tier: `HYPR1` codecs for the engine's cached
//! artifacts and the [`DiskTier`] that files them under a session's
//! persist directory.
//!
//! The three artifact kinds the in-memory caches hold — relevant views,
//! fitted [`CausalEstimator`]s, and Prop.-1 block decompositions — are
//! each fully self-contained on disk: an estimator snapshot carries its
//! feature layout, fitted encoder, fitted model(s) (forests with exact
//! `f64` bit patterns → bit-identical predictions), the bound ψ/Y
//! expression trees, and peer-summary state, so a restarted process
//! deserializes and evaluates without re-deriving anything from the
//! query.
//!
//! Layout under `SessionBuilder::persist_dir(root)`:
//!
//! ```text
//! root/<db_fp:016x>-<graph_fp:016x>/      one directory per shard
//!     views/<fnv(key):016x>.hypr
//!     estimators/<fnv(key):016x>.hypr
//!     blocks/<fnv(key):016x>.hypr
//! ```
//!
//! File names hash the cache key; the *full* key plus both shard
//! fingerprints live inside each file and are verified on read (see
//! [`hyper_store::artifact`]), so hash collisions and stale persist
//! directories read as typed errors, which the cache treats as misses.
//! Corrupt files are likewise misses — never panics, never wrong
//! artifacts.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hyper_causal::BlockDecomposition;
use hyper_query::{
    HOp, QualifiedName, SelectItem, SelectStmt, TableRef, Temporal, UpdateFunc, UseClause,
    UseCondition,
};
use hyper_storage::AggFunc;
use hyper_store::{
    artifact::{read_artifact, write_artifact, ArtifactKind, ArtifactMeta},
    causalcodec, fnv1a, mlcodec, tablecodec, ByteReader, ByteWriter, StoreError,
};

use crate::hexpr::BoundHExpr;
use crate::view::{ColumnOrigin, RelevantView, ViewProvenance};
use crate::whatif::estimator::{CausalEstimator, CellTable, FittedModel, PeerSummary};

type SResult<T> = hyper_store::Result<T>;

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

// ------------------------------------------------------------ small enums

fn encode_agg(w: &mut ByteWriter, agg: AggFunc) {
    w.write_u8(match agg {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Avg => 2,
        AggFunc::Min => 3,
        AggFunc::Max => 4,
    });
}

fn decode_agg(r: &mut ByteReader<'_>) -> SResult<AggFunc> {
    Ok(match r.read_u8("aggregate tag")? {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Avg,
        3 => AggFunc::Min,
        4 => AggFunc::Max,
        t => return Err(corrupt(format!("invalid aggregate tag {t}"))),
    })
}

fn encode_hop(w: &mut ByteWriter, op: HOp) {
    w.write_u8(match op {
        HOp::Eq => 0,
        HOp::Ne => 1,
        HOp::Lt => 2,
        HOp::Le => 3,
        HOp::Gt => 4,
        HOp::Ge => 5,
        HOp::And => 6,
        HOp::Or => 7,
        HOp::Add => 8,
        HOp::Sub => 9,
        HOp::Mul => 10,
        HOp::Div => 11,
    });
}

fn decode_hop(r: &mut ByteReader<'_>) -> SResult<HOp> {
    Ok(match r.read_u8("operator tag")? {
        0 => HOp::Eq,
        1 => HOp::Ne,
        2 => HOp::Lt,
        3 => HOp::Le,
        4 => HOp::Gt,
        5 => HOp::Ge,
        6 => HOp::And,
        7 => HOp::Or,
        8 => HOp::Add,
        9 => HOp::Sub,
        10 => HOp::Mul,
        11 => HOp::Div,
        t => return Err(corrupt(format!("invalid operator tag {t}"))),
    })
}

fn encode_update_func(w: &mut ByteWriter, f: &UpdateFunc) -> SResult<()> {
    match f {
        UpdateFunc::Set(v) => {
            w.write_u8(0);
            w.write_value(v);
        }
        UpdateFunc::Scale(c) => {
            w.write_u8(1);
            w.write_f64(*c);
        }
        UpdateFunc::Shift(c) => {
            w.write_u8(2);
            w.write_f64(*c);
        }
        UpdateFunc::Param { name, .. } => {
            return Err(StoreError::Unsupported(format!(
                "estimator carries an unresolved Param({name}) update"
            )))
        }
    }
    Ok(())
}

fn decode_update_func(r: &mut ByteReader<'_>) -> SResult<UpdateFunc> {
    Ok(match r.read_u8("update-function tag")? {
        0 => UpdateFunc::Set(r.read_value("update constant")?),
        1 => UpdateFunc::Scale(r.read_f64("scale constant")?),
        2 => UpdateFunc::Shift(r.read_f64("shift constant")?),
        t => return Err(corrupt(format!("invalid update-function tag {t}"))),
    })
}

// ---------------------------------------------------- bound expressions

/// Maximum expression nesting accepted from disk: deep enough for any
/// real predicate, shallow enough that hostile bytes cannot overflow the
/// decoder's stack.
const MAX_EXPR_DEPTH: usize = 512;

fn encode_bound_hexpr(w: &mut ByteWriter, e: &BoundHExpr) {
    match e {
        BoundHExpr::Attr(t, col) => {
            w.write_u8(0);
            w.write_u8(match t {
                Temporal::Pre => 0,
                Temporal::Post => 1,
            });
            w.write_u64(*col as u64);
        }
        BoundHExpr::Lit(v) => {
            w.write_u8(1);
            w.write_value(v);
        }
        BoundHExpr::Not(inner) => {
            w.write_u8(2);
            encode_bound_hexpr(w, inner);
        }
        BoundHExpr::Binary(op, l, r) => {
            w.write_u8(3);
            encode_hop(w, *op);
            encode_bound_hexpr(w, l);
            encode_bound_hexpr(w, r);
        }
        BoundHExpr::InList {
            expr,
            list,
            negated,
        } => {
            w.write_u8(4);
            encode_bound_hexpr(w, expr);
            w.write_u64(list.len() as u64);
            for v in list {
                w.write_value(v);
            }
            w.write_bool(*negated);
        }
    }
}

fn decode_bound_hexpr(r: &mut ByteReader<'_>, depth: usize) -> SResult<BoundHExpr> {
    if depth > MAX_EXPR_DEPTH {
        return Err(corrupt("expression nests too deeply"));
    }
    Ok(match r.read_u8("expression tag")? {
        0 => {
            let t = match r.read_u8("temporal tag")? {
                0 => Temporal::Pre,
                1 => Temporal::Post,
                t => return Err(corrupt(format!("invalid temporal tag {t}"))),
            };
            BoundHExpr::Attr(t, r.read_u64("column index")? as usize)
        }
        1 => BoundHExpr::Lit(r.read_value("literal")?),
        2 => BoundHExpr::Not(Box::new(decode_bound_hexpr(r, depth + 1)?)),
        3 => {
            let op = decode_hop(r)?;
            let l = decode_bound_hexpr(r, depth + 1)?;
            let rhs = decode_bound_hexpr(r, depth + 1)?;
            BoundHExpr::Binary(op, Box::new(l), Box::new(rhs))
        }
        4 => {
            let expr = decode_bound_hexpr(r, depth + 1)?;
            let n = r.read_len(1, "in-list length")?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(r.read_value("in-list value")?);
            }
            BoundHExpr::InList {
                expr: Box::new(expr),
                list,
                negated: r.read_bool("in-list negation")?,
            }
        }
        t => return Err(corrupt(format!("invalid expression tag {t}"))),
    })
}

// ----------------------------------------------------------- use clauses

fn encode_opt_str(w: &mut ByteWriter, s: &Option<String>) {
    match s {
        None => w.write_u8(0),
        Some(s) => {
            w.write_u8(1);
            w.write_str(s);
        }
    }
}

fn decode_opt_str(r: &mut ByteReader<'_>, what: &str) -> SResult<Option<String>> {
    Ok(match r.read_u8(what)? {
        0 => None,
        1 => Some(r.read_string(what)?),
        t => return Err(corrupt(format!("invalid option flag {t} for {what}"))),
    })
}

fn encode_qname(w: &mut ByteWriter, q: &QualifiedName) {
    encode_opt_str(w, &q.qualifier);
    w.write_str(&q.name);
}

fn decode_qname(r: &mut ByteReader<'_>) -> SResult<QualifiedName> {
    Ok(QualifiedName {
        qualifier: decode_opt_str(r, "name qualifier")?,
        name: r.read_string("qualified name")?,
    })
}

fn encode_use_clause(w: &mut ByteWriter, u: &UseClause) {
    match u {
        UseClause::Table(name) => {
            w.write_u8(0);
            w.write_str(name);
        }
        UseClause::Select(s) => {
            w.write_u8(1);
            w.write_u64(s.items.len() as u64);
            for item in &s.items {
                match item {
                    SelectItem::Column { name, alias } => {
                        w.write_u8(0);
                        encode_qname(w, name);
                        encode_opt_str(w, alias);
                    }
                    SelectItem::Aggregate { func, arg, alias } => {
                        w.write_u8(1);
                        encode_agg(w, *func);
                        encode_qname(w, arg);
                        w.write_str(alias);
                    }
                }
            }
            w.write_u64(s.from.len() as u64);
            for t in &s.from {
                w.write_str(&t.table);
                encode_opt_str(w, &t.alias);
            }
            w.write_u64(s.conditions.len() as u64);
            for c in &s.conditions {
                match c {
                    UseCondition::Join(l, r) => {
                        w.write_u8(0);
                        encode_qname(w, l);
                        encode_qname(w, r);
                    }
                    UseCondition::Filter { column, op, value } => {
                        w.write_u8(1);
                        encode_qname(w, column);
                        encode_hop(w, *op);
                        w.write_value(value);
                    }
                }
            }
            w.write_u64(s.group_by.len() as u64);
            for g in &s.group_by {
                encode_qname(w, g);
            }
        }
    }
}

fn decode_use_clause(r: &mut ByteReader<'_>) -> SResult<UseClause> {
    Ok(match r.read_u8("use-clause tag")? {
        0 => UseClause::Table(r.read_string("use table")?),
        1 => {
            let n = r.read_len(2, "select item count")?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(match r.read_u8("select item tag")? {
                    0 => SelectItem::Column {
                        name: decode_qname(r)?,
                        alias: decode_opt_str(r, "column alias")?,
                    },
                    1 => SelectItem::Aggregate {
                        func: decode_agg(r)?,
                        arg: decode_qname(r)?,
                        alias: r.read_string("aggregate alias")?,
                    },
                    t => return Err(corrupt(format!("invalid select item tag {t}"))),
                });
            }
            let n = r.read_len(9, "from count")?;
            let mut from = Vec::with_capacity(n);
            for _ in 0..n {
                from.push(TableRef {
                    table: r.read_string("from table")?,
                    alias: decode_opt_str(r, "table alias")?,
                });
            }
            let n = r.read_len(2, "condition count")?;
            let mut conditions = Vec::with_capacity(n);
            for _ in 0..n {
                conditions.push(match r.read_u8("condition tag")? {
                    0 => UseCondition::Join(decode_qname(r)?, decode_qname(r)?),
                    1 => UseCondition::Filter {
                        column: decode_qname(r)?,
                        op: decode_hop(r)?,
                        value: r.read_value("filter literal")?,
                    },
                    t => return Err(corrupt(format!("invalid condition tag {t}"))),
                });
            }
            let n = r.read_len(9, "group-by count")?;
            let mut group_by = Vec::with_capacity(n);
            for _ in 0..n {
                group_by.push(decode_qname(r)?);
            }
            UseClause::Select(SelectStmt {
                items,
                from,
                conditions,
                group_by,
            })
        }
        t => return Err(corrupt(format!("invalid use-clause tag {t}"))),
    })
}

fn encode_provenance(w: &mut ByteWriter, p: &ViewProvenance) {
    match p {
        ViewProvenance::AllRows { relation } => {
            w.write_u8(0);
            w.write_str(relation);
        }
        ViewProvenance::Filtered { relation } => {
            w.write_u8(1);
            w.write_str(relation);
        }
        ViewProvenance::Opaque { relations } => {
            w.write_u8(2);
            w.write_u64(relations.len() as u64);
            for rel in relations {
                w.write_str(rel);
            }
        }
    }
}

fn decode_provenance(r: &mut ByteReader<'_>) -> SResult<ViewProvenance> {
    Ok(match r.read_u8("provenance tag")? {
        0 => ViewProvenance::AllRows {
            relation: r.read_string("provenance relation")?,
        },
        1 => ViewProvenance::Filtered {
            relation: r.read_string("provenance relation")?,
        },
        2 => {
            let n = r.read_len(8, "provenance relation count")?;
            let mut relations = Vec::with_capacity(n);
            for _ in 0..n {
                relations.push(r.read_string("provenance relation")?);
            }
            ViewProvenance::Opaque { relations }
        }
        t => return Err(corrupt(format!("invalid provenance tag {t}"))),
    })
}

// -------------------------------------------------------- relevant views

fn encode_view(w: &mut ByteWriter, view: &RelevantView) {
    tablecodec::encode_table(w, &view.table);
    w.write_u64(view.origins.len() as u64);
    for o in &view.origins {
        w.write_str(&o.relation);
        w.write_str(&o.attribute);
        match o.aggregated {
            None => w.write_u8(0),
            Some(agg) => {
                w.write_u8(1);
                encode_agg(w, agg);
            }
        }
    }
    encode_use_clause(w, &view.use_clause);
    encode_provenance(w, &view.provenance);
}

fn decode_view(r: &mut ByteReader<'_>) -> SResult<RelevantView> {
    let table = tablecodec::decode_table(r)?;
    let n = r.read_len(17, "origin count")?;
    if n != table.num_columns() {
        return Err(corrupt(format!(
            "view has {} column(s) but {n} origin(s)",
            table.num_columns()
        )));
    }
    let mut origins = Vec::with_capacity(n);
    for _ in 0..n {
        let relation = r.read_string("origin relation")?;
        let attribute = r.read_string("origin attribute")?;
        let aggregated = match r.read_u8("origin aggregation flag")? {
            0 => None,
            1 => Some(decode_agg(r)?),
            t => return Err(corrupt(format!("invalid aggregation flag {t}"))),
        };
        origins.push(ColumnOrigin {
            relation,
            attribute,
            aggregated,
        });
    }
    let use_clause = decode_use_clause(r)?;
    let provenance = decode_provenance(r)?;
    Ok(RelevantView {
        table,
        origins,
        use_clause,
        provenance,
    })
}

// ------------------------------------------------------------ estimators

fn encode_cell_table(w: &mut ByteWriter, t: &CellTable) {
    w.write_u64(t.skip as u64);
    w.write_f64(t.global);
    for map in [&t.cells, &t.marginal] {
        // Canonical order: sort entries by key so equal tables encode to
        // equal bytes regardless of hash-map iteration order.
        let mut entries: Vec<(&Vec<u64>, &(f64, u32))> = map.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.write_u64(entries.len() as u64);
        for (key, (sum, count)) in entries {
            w.write_u64(key.len() as u64);
            for &k in key {
                w.write_u64(k);
            }
            w.write_f64(*sum);
            w.write_u32(*count);
        }
    }
}

fn decode_cell_table(r: &mut ByteReader<'_>) -> SResult<CellTable> {
    let skip = r.read_u64("cell-table skip")? as usize;
    let global = r.read_f64("cell-table global mean")?;
    let mut maps = Vec::with_capacity(2);
    for what in ["cell", "marginal"] {
        let n = r.read_len(20, "cell count")?;
        let mut map = std::collections::HashMap::with_capacity(n);
        for _ in 0..n {
            let klen = r.read_len(8, "cell key length")?;
            let mut key = Vec::with_capacity(klen);
            for _ in 0..klen {
                key.push(r.read_u64("cell key word")?);
            }
            let sum = r.read_f64("cell sum")?;
            let count = r.read_u32("cell count")?;
            if map.insert(key, (sum, count)).is_some() {
                return Err(corrupt(format!("duplicate {what} key")));
            }
        }
        maps.push(map);
    }
    let marginal = maps.pop().expect("two maps pushed");
    let cells = maps.pop().expect("two maps pushed");
    Ok(CellTable {
        cells,
        marginal,
        global,
        skip,
    })
}

fn encode_model(w: &mut ByteWriter, m: &FittedModel) {
    match m {
        FittedModel::Forest(f) => {
            w.write_u8(0);
            mlcodec::encode_forest(w, f);
        }
        FittedModel::Linear(l) => {
            w.write_u8(1);
            mlcodec::encode_linear(w, l);
        }
        FittedModel::Cells(c) => {
            w.write_u8(2);
            encode_cell_table(w, c);
        }
    }
}

fn decode_model(r: &mut ByteReader<'_>) -> SResult<FittedModel> {
    Ok(match r.read_u8("model tag")? {
        0 => FittedModel::Forest(mlcodec::decode_forest(r)?),
        1 => FittedModel::Linear(mlcodec::decode_linear(r)?),
        2 => FittedModel::Cells(decode_cell_table(r)?),
        t => return Err(corrupt(format!("invalid model tag {t}"))),
    })
}

fn encode_estimator(w: &mut ByteWriter, e: &CausalEstimator) -> SResult<()> {
    encode_agg(w, e.agg);
    w.write_u64(e.feature_cols.len() as u64);
    for &c in &e.feature_cols {
        w.write_u64(c as u64);
    }
    w.write_u64(e.update_cols.len() as u64);
    for (c, f) in &e.update_cols {
        w.write_u64(*c as u64);
        encode_update_func(w, f)?;
    }
    mlcodec::encode_encoder(w, &e.encoder);
    encode_model(w, &e.model);
    match &e.denom_model {
        None => w.write_u8(0),
        Some(m) => {
            w.write_u8(1);
            encode_model(w, m);
        }
    }
    for expr in [&e.psi, &e.y] {
        match expr {
            None => w.write_u8(0),
            Some(b) => {
                w.write_u8(1);
                encode_bound_hexpr(w, b);
            }
        }
    }
    match &e.peer {
        None => w.write_u8(0),
        Some((p, pre, post)) => {
            w.write_u8(1);
            w.write_u64(p.update_col as u64);
            w.write_u64(p.group_col as u64);
            for means in [pre, post] {
                w.write_u64(means.len() as u64);
                for &m in means {
                    w.write_f64(m);
                }
            }
        }
    }
    w.write_u64(e.trained_rows as u64);
    Ok(())
}

fn decode_estimator(r: &mut ByteReader<'_>) -> SResult<CausalEstimator> {
    let agg = decode_agg(r)?;
    let nf = r.read_len(8, "feature column count")?;
    let mut feature_cols = Vec::with_capacity(nf);
    for _ in 0..nf {
        feature_cols.push(r.read_u64("feature column")? as usize);
    }
    let nu = r.read_len(9, "update column count")?;
    let mut update_cols = Vec::with_capacity(nu);
    for _ in 0..nu {
        let c = r.read_u64("update column")? as usize;
        update_cols.push((c, decode_update_func(r)?));
    }
    let encoder = mlcodec::decode_encoder(r)?;
    let model = decode_model(r)?;
    let denom_model = match r.read_u8("denominator-model flag")? {
        0 => None,
        1 => Some(decode_model(r)?),
        t => return Err(corrupt(format!("invalid denominator flag {t}"))),
    };
    let mut exprs = Vec::with_capacity(2);
    for what in ["psi", "y"] {
        exprs.push(match r.read_u8("expression flag")? {
            0 => None,
            1 => Some(Arc::new(decode_bound_hexpr(r, 0)?)),
            t => return Err(corrupt(format!("invalid {what} flag {t}"))),
        });
    }
    let y = exprs.pop().expect("two expressions pushed");
    let psi = exprs.pop().expect("two expressions pushed");
    let peer = match r.read_u8("peer flag")? {
        0 => None,
        1 => {
            let update_col = r.read_u64("peer update column")? as usize;
            let group_col = r.read_u64("peer group column")? as usize;
            let mut means = Vec::with_capacity(2);
            for _ in 0..2 {
                let n = r.read_len(8, "peer mean count")?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.read_f64("peer mean")?);
                }
                means.push(v);
            }
            let post = means.pop().expect("two mean vectors pushed");
            let pre = means.pop().expect("two mean vectors pushed");
            Some((
                PeerSummary {
                    update_col,
                    group_col,
                },
                pre,
                post,
            ))
        }
        t => return Err(corrupt(format!("invalid peer flag {t}"))),
    };
    let trained_rows = r.read_u64("trained row count")? as usize;
    // Context-free structural invariants (the fetch site additionally
    // validates column indices against the live view before evaluation).
    if encoder.columns().len() != feature_cols.len() {
        return Err(corrupt(format!(
            "estimator encoder covers {} column(s) but {} feature column(s) are declared",
            encoder.columns().len(),
            feature_cols.len()
        )));
    }
    if !update_cols.iter().all(|(c, _)| feature_cols.contains(c)) {
        return Err(corrupt(
            "estimator update columns are not a subset of its feature columns",
        ));
    }
    if let Some((_, pre, post)) = &peer {
        if pre.len() != post.len() {
            return Err(corrupt("estimator peer-mean vectors disagree in length"));
        }
    }
    // Every fitted model must expect exactly the feature width the
    // encoder produces (plus the appended peer column, when present):
    // a forest tree splitting past that width would index out of bounds
    // at prediction time.
    let expected_width = encoder.width() + usize::from(peer.is_some());
    let model_width = |m: &FittedModel| match m {
        FittedModel::Forest(f) => f.trees().first().map(|t| t.n_features()),
        FittedModel::Linear(l) => Some(l.coefs.len()),
        // Cell tables clamp their key slices to the row width; any skip
        // is safe.
        FittedModel::Cells(_) => None,
    };
    for m in std::iter::once(&model).chain(denom_model.iter()) {
        if let Some(w) = model_width(m) {
            if w != expected_width {
                return Err(corrupt(format!(
                    "estimator model expects {w} feature(s) but the encoder \
                     produces {expected_width}"
                )));
            }
        }
    }
    Ok(CausalEstimator {
        agg,
        feature_cols,
        update_cols,
        encoder,
        model,
        denom_model,
        psi,
        y,
        peer,
        trained_rows,
        // Stream counters describe a training run, not the model; a
        // disk-recovered estimator never trained in this process.
        stream_stats: None,
    })
}

// --------------------------------------------------- the artifact trait

/// An artifact the disk tier can spill and recover. `encode` may refuse
/// (e.g. unresolved parameters); refusal just means the artifact stays
/// memory-only.
pub(crate) trait DiskArtifact: Sized {
    /// Which directory/kind tag this artifact files under.
    const KIND: ArtifactKind;
    /// Serialize the payload bytes.
    fn encode_payload(&self) -> SResult<Vec<u8>>;
    /// Deserialize and fully validate payload bytes.
    fn decode_payload(bytes: &[u8]) -> SResult<Self>;
    /// Approximate in-memory footprint, for the byte-budgeted eviction
    /// policy.
    fn approx_bytes(&self) -> usize;
}

impl DiskArtifact for RelevantView {
    const KIND: ArtifactKind = ArtifactKind::View;

    fn encode_payload(&self) -> SResult<Vec<u8>> {
        let mut w = ByteWriter::new();
        encode_view(&mut w, self);
        Ok(w.into_bytes())
    }

    fn decode_payload(bytes: &[u8]) -> SResult<Self> {
        let mut r = ByteReader::new(bytes);
        let v = decode_view(&mut r)?;
        r.expect_end("relevant view")?;
        Ok(v)
    }

    fn approx_bytes(&self) -> usize {
        self.table.approx_bytes() + self.origins.len() * 64
    }
}

impl DiskArtifact for CausalEstimator {
    const KIND: ArtifactKind = ArtifactKind::Estimator;

    fn encode_payload(&self) -> SResult<Vec<u8>> {
        let mut w = ByteWriter::new();
        encode_estimator(&mut w, self)?;
        Ok(w.into_bytes())
    }

    fn decode_payload(bytes: &[u8]) -> SResult<Self> {
        let mut r = ByteReader::new(bytes);
        let e = decode_estimator(&mut r)?;
        r.expect_end("estimator")?;
        Ok(e)
    }

    fn approx_bytes(&self) -> usize {
        let model_bytes = |m: &FittedModel| match m {
            FittedModel::Forest(f) => f.approx_bytes(),
            FittedModel::Linear(l) => 16 + l.coefs.len() * 8,
            FittedModel::Cells(c) => (c.cells.len() + c.marginal.len()) * 64,
        };
        let peer_bytes = self
            .peer
            .as_ref()
            .map_or(0, |(_, pre, post)| (pre.len() + post.len()) * 8);
        model_bytes(&self.model)
            + self.denom_model.as_ref().map_or(0, model_bytes)
            + self.encoder.approx_bytes()
            + peer_bytes
            + 256
    }
}

impl DiskArtifact for BlockDecomposition {
    const KIND: ArtifactKind = ArtifactKind::Blocks;

    fn encode_payload(&self) -> SResult<Vec<u8>> {
        let mut w = ByteWriter::new();
        causalcodec::encode_blocks(&mut w, self);
        Ok(w.into_bytes())
    }

    fn decode_payload(bytes: &[u8]) -> SResult<Self> {
        let mut r = ByteReader::new(bytes);
        let b = causalcodec::decode_blocks(&mut r)?;
        r.expect_end("block decomposition")?;
        Ok(b)
    }

    fn approx_bytes(&self) -> usize {
        // TupleRef in the blocks vec + the inverse map entry.
        self.blocks().iter().map(Vec::len).sum::<usize>() * 56 + self.num_blocks() * 32
    }
}

// ------------------------------------------------------------- disk tier

/// A session's slice of the persist directory: artifact files for one
/// `(database, graph)` fingerprint pair. Reads verify identity + checksums
/// ([`read_artifact`]); writes are atomic and best-effort — a full disk
/// degrades persistence, never correctness.
pub(crate) struct DiskTier {
    shard_dir: PathBuf,
    db_fp: u64,
    graph_fp: u64,
}

impl std::fmt::Debug for DiskTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskTier")
            .field("dir", &self.shard_dir)
            .finish()
    }
}

impl DiskTier {
    /// Tier rooted at `persist_dir` for the given shard fingerprints. No
    /// I/O happens here; directories appear on first write.
    pub(crate) fn new(persist_dir: &Path, db_fp: u64, graph_fp: u64) -> DiskTier {
        DiskTier {
            shard_dir: persist_dir.join(format!("{db_fp:016x}-{graph_fp:016x}")),
            db_fp,
            graph_fp,
        }
    }

    fn path_for(&self, kind: ArtifactKind, key: &str) -> PathBuf {
        self.shard_dir
            .join(kind.dir_name())
            .join(format!("{:016x}.hypr", fnv1a(key.as_bytes())))
    }

    fn meta_for(&self, kind: ArtifactKind, key: &str) -> ArtifactMeta {
        ArtifactMeta {
            kind,
            key: key.to_string(),
            db_fingerprint: self.db_fp,
            graph_fingerprint: self.graph_fp,
        }
    }

    /// Load and validate an artifact; `Ok(None)` when no file exists,
    /// `Err` when a file exists but cannot be trusted (corrupt, version
    /// mismatch, wrong key/fingerprints).
    pub(crate) fn try_load<T: DiskArtifact>(&self, key: &str) -> SResult<Option<T>> {
        let path = self.path_for(T::KIND, key);
        if !path.exists() {
            return Ok(None);
        }
        let payload = read_artifact(&path, &self.meta_for(T::KIND, key))?;
        Ok(Some(T::decode_payload(&payload)?))
    }

    /// Load an artifact, treating *any* failure as a miss (the cache will
    /// rebuild and overwrite the bad file).
    pub(crate) fn load<T: DiskArtifact>(&self, key: &str) -> Option<T> {
        let _span = hyper_trace::span(hyper_trace::Phase::SnapshotLoad);
        self.try_load(key).ok().flatten()
    }

    /// Spill an artifact (best-effort; errors are swallowed — persistence
    /// is an optimization, and the next process simply rebuilds).
    pub(crate) fn store<T: DiskArtifact>(&self, key: &str, value: &T) {
        let Ok(payload) = value.encode_payload() else {
            return;
        };
        let path = self.path_for(T::KIND, key);
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        let _ = write_artifact(&path, &self.meta_for(T::KIND, key), payload);
    }

    /// Does a (possibly invalid) artifact file exist for `key`? Used by
    /// explain-provenance only; readers still validate on load.
    pub(crate) fn has(&self, kind: ArtifactKind, key: &str) -> bool {
        self.path_for(kind, key).exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_query::HExpr;
    use hyper_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn sample_view() -> RelevantView {
        let schema = Schema::new(vec![
            Field::new("price", DataType::Float),
            Field::new("brand", DataType::Str),
        ])
        .unwrap();
        let table = TableBuilder::new("relevant_view", schema)
            .rows([vec![1.5.into(), "a".into()], vec![2.5.into(), "b".into()]])
            .unwrap()
            .build();
        RelevantView {
            table,
            origins: vec![
                ColumnOrigin {
                    relation: "product".into(),
                    attribute: "price".into(),
                    aggregated: None,
                },
                ColumnOrigin {
                    relation: "product".into(),
                    attribute: "brand".into(),
                    aggregated: Some(AggFunc::Min),
                },
            ],
            use_clause: UseClause::Select(SelectStmt {
                items: vec![
                    SelectItem::Column {
                        name: QualifiedName::bare("price"),
                        alias: None,
                    },
                    SelectItem::Aggregate {
                        func: AggFunc::Min,
                        arg: QualifiedName::qualified("T1", "brand"),
                        alias: "brand".into(),
                    },
                ],
                from: vec![TableRef {
                    table: "product".into(),
                    alias: Some("T1".into()),
                }],
                conditions: vec![UseCondition::Filter {
                    column: QualifiedName::bare("price"),
                    op: HOp::Gt,
                    value: Value::Float(1.0),
                }],
                group_by: vec![QualifiedName::bare("price")],
            }),
            provenance: ViewProvenance::Opaque {
                relations: vec!["product".into()],
            },
        }
    }

    #[test]
    fn view_round_trips() {
        let v = sample_view();
        let bytes = v.encode_payload().unwrap();
        let back = RelevantView::decode_payload(&bytes).unwrap();
        assert_eq!(back.table.fingerprint(), v.table.fingerprint());
        assert_eq!(back.origins, v.origins);
        assert_eq!(back.use_clause, v.use_clause);
        assert_eq!(back.provenance, v.provenance);
    }

    #[test]
    fn bound_hexpr_round_trips() {
        let schema = sample_view().table.schema().clone();
        let e = HExpr::attr("price")
            .gt(1.0)
            .and(HExpr::post("brand").in_list(["a", "b"]));
        let bound = crate::hexpr::bind_hexpr(&e, &schema, Temporal::Pre).unwrap();
        let mut w = ByteWriter::new();
        encode_bound_hexpr(&mut w, &bound);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_bound_hexpr(&mut r, 0).unwrap();
        assert!(r.is_at_end());
        let row = vec![Value::Float(2.0), Value::str("b")];
        assert_eq!(
            back.eval_bool(&row, &row).unwrap(),
            bound.eval_bool(&row, &row).unwrap()
        );
    }

    #[test]
    fn param_update_refuses_to_serialize() {
        let mut w = ByteWriter::new();
        let err = encode_update_func(
            &mut w,
            &UpdateFunc::Param {
                name: "m".into(),
                mode: hyper_query::ParamMode::Scale,
            },
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::Unsupported(_)));
    }

    #[test]
    fn disk_tier_misses_on_absent_stale_and_corrupt() {
        let dir = std::env::temp_dir().join(format!("hyper_disk_tier_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let tier = DiskTier::new(&dir, 7, 9);
        assert!(tier.load::<RelevantView>("k").is_none(), "absent is a miss");

        let v = sample_view();
        tier.store("k", &v);
        assert!(tier.try_load::<RelevantView>("k").unwrap().is_some());

        // Same directory, different data → typed fingerprint error, and a
        // plain miss through the lenient path.
        let stale = DiskTier::new(&dir, 8, 9);
        // Same file name only if the key hashes equal — same key, so yes.
        std::fs::rename(
            tier.path_for(ArtifactKind::View, "k"),
            stale
                .path_for(ArtifactKind::View, "k")
                .parent()
                .map(|p| {
                    std::fs::create_dir_all(p).unwrap();
                    p.join(format!("{:016x}.hypr", fnv1a("k".as_bytes())))
                })
                .unwrap(),
        )
        .unwrap();
        let err = stale.try_load::<RelevantView>("k").unwrap_err();
        assert!(matches!(err, StoreError::FingerprintMismatch { .. }));
        assert!(stale.load::<RelevantView>("k").is_none());

        // Corrupt file → typed error, lenient miss.
        let path = stale.path_for(ArtifactKind::View, "k");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            stale.try_load::<RelevantView>("k").unwrap_err(),
            StoreError::Corrupt(_)
        ));
        assert!(stale.load::<RelevantView>("k").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
