//! Preferential multi-objective how-to optimization (§4.3 "Extension to
//! preferential multi-objective optimization", Example 11): solve the IP
//! for the most-preferred objective, then re-solve for each subsequent
//! objective with the previously achieved values pinned as constraints.

use std::time::Instant;

use hyper_causal::CausalGraph;
use hyper_ip::{solve_ilp, Model, Sense};
use hyper_query::{HowToQuery, ObjectiveDirection, UpdateSpec};
use hyper_runtime::HyperRuntime;
use hyper_storage::Database;

use crate::config::{EngineConfig, HowToOptions};
use crate::error::{EngineError, Result};
use crate::howto::optimizer::HowToContext;
use crate::howto::HowToResult;
use crate::session::cache::ArtifactCache;

/// Result of a lexicographic optimization: the final chosen updates plus
/// the achieved value of every objective, in preference order.
#[derive(Debug, Clone)]
pub struct LexicographicResult {
    /// The solution.
    pub result: HowToResult,
    /// Achieved objective values, most-preferred first.
    pub achieved: Vec<f64>,
}

/// Solve a sequence of how-to queries sharing `Use`/`When`/`HowToUpdate`/
/// `Limit` but with different objectives, ordered most-preferred first.
pub fn evaluate_howto_lexicographic(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    queries: &[HowToQuery],
    opts: &HowToOptions,
) -> Result<LexicographicResult> {
    evaluate_howto_lexicographic_cached(
        db,
        graph,
        config,
        queries,
        opts,
        None,
        HyperRuntime::global(),
    )
}

/// Lexicographic optimization, optionally sharing a session's artifact
/// cache across the per-objective candidate evaluations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_howto_lexicographic_cached(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    queries: &[HowToQuery],
    opts: &HowToOptions,
    cache: Option<&ArtifactCache>,
    runtime: &HyperRuntime,
) -> Result<LexicographicResult> {
    let started = Instant::now();
    let Some(first) = queries.first() else {
        return Err(EngineError::Plan("no objectives given".into()));
    };
    for q in queries.iter().skip(1) {
        if q.use_clause != first.use_clause
            || q.when != first.when
            || q.update_attrs != first.update_attrs
            || q.limits != first.limits
        {
            return Err(EngineError::Plan(
                "lexicographic objectives must share Use/When/HowToUpdate/Limit".into(),
            ));
        }
    }

    // Candidate values per objective.
    let mut contexts: Vec<HowToContext> = Vec::with_capacity(queries.len());
    for q in queries {
        contexts.push(HowToContext::prepare(
            db, graph, config, q, opts, cache, runtime,
        )?);
    }
    let candidates = &contexts[0].candidates;

    // Shared variable layout.
    let n_attr = candidates.len();
    let mut achieved: Vec<f64> = Vec::with_capacity(queries.len());
    // Constraints accumulated from already-optimized objectives:
    // Σ δ·coef_k {≥ or ≤} achieved_delta_k.
    let mut pinned: Vec<(Vec<f64>, ObjectiveDirection, f64)> = Vec::new();
    let mut final_solution: Option<Vec<f64>> = None;

    for (k, q) in queries.iter().enumerate() {
        let maximize = q.objective.direction == ObjectiveDirection::Maximize;
        let mut model = if maximize {
            Model::maximize()
        } else {
            Model::minimize()
        };
        let mut var_map: Vec<Vec<usize>> = Vec::with_capacity(n_attr);
        let mut flat_coefs: Vec<f64> = Vec::new();
        for (i, cands) in candidates.iter().enumerate() {
            let mut vars = Vec::with_capacity(cands.len());
            for (j, c) in cands.iter().enumerate() {
                let delta = contexts[k].values[i][j] - contexts[k].baseline;
                flat_coefs.push(delta);
                vars.push(model.add_binary(format!("d{k}_{}_{j}", c.attr), delta));
            }
            var_map.push(vars);
        }
        for (i, vars) in var_map.iter().enumerate() {
            if !vars.is_empty() {
                model
                    .add_constraint(
                        format!("one_{i}"),
                        vars.iter().map(|&v| (v, 1.0)).collect(),
                        Sense::Le,
                        1.0,
                    )
                    .map_err(EngineError::from)?;
            }
        }
        if let Some(budget) = opts.max_attrs_updated {
            model
                .add_constraint(
                    "budget",
                    var_map.iter().flatten().map(|&v| (v, 1.0)).collect(),
                    Sense::Le,
                    budget as f64,
                )
                .map_err(EngineError::from)?;
        }
        // Pin previous objectives (within a small tolerance).
        for (coefs, dir, value) in &pinned {
            let sparse: Vec<(usize, f64)> = coefs
                .iter()
                .enumerate()
                .filter(|(_, c)| c.abs() > 0.0)
                .map(|(i, c)| (i, *c))
                .collect();
            let (sense, rhs) = match dir {
                ObjectiveDirection::Maximize => (Sense::Ge, value - 1e-9),
                ObjectiveDirection::Minimize => (Sense::Le, value + 1e-9),
            };
            model
                .add_constraint("pin", sparse, sense, rhs)
                .map_err(EngineError::from)?;
        }

        let sol = solve_ilp(&model).map_err(EngineError::from)?;
        let delta_value: f64 = flat_coefs.iter().zip(&sol.values).map(|(c, x)| c * x).sum();
        achieved.push(contexts[k].baseline + delta_value);
        pinned.push((flat_coefs, q.objective.direction, delta_value));
        final_solution = Some(sol.values);
    }

    // Decode the final solution.
    let values = final_solution.expect("at least one objective");
    let mut chosen = Vec::new();
    let mut idx = 0usize;
    for cands in candidates {
        for c in cands {
            if values[idx] > 0.5 {
                chosen.push(UpdateSpec {
                    attr: c.attr.clone(),
                    func: c.func.clone(),
                });
            }
            idx += 1;
        }
    }
    // Report per-objective *joint* what-if values of the final solution
    // (the per-step `achieved` values above steer the constraints in
    // linearized form; joint values are what the user observes).
    let mut whatif_evals: usize = contexts.iter().map(|c| c.whatif_evals).sum();
    if !chosen.is_empty() {
        for (k, ctx) in contexts.iter().enumerate() {
            let wq =
                crate::howto::optimizer::candidate_whatif(&ctx.whatif_template, chosen.clone())?;
            achieved[k] = crate::whatif::evaluate_whatif_maybe_cached(
                db, graph, config, &wq, cache, runtime,
            )?
            .value;
            whatif_evals += 1;
        }
    }
    Ok(LexicographicResult {
        result: HowToResult {
            chosen,
            objective: achieved.last().copied().unwrap_or_default(),
            baseline: contexts[0].baseline,
            candidates: candidates.iter().map(Vec::len).sum(),
            whatif_evals,
            elapsed: started.elapsed(),
        },
        achieved,
    })
}
