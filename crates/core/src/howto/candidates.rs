//! Candidate-update enumeration for how-to queries (§4.3: "for each
//! attribute B_i ∈ U, we enumerate all permissible updates S_{B_i}" with
//! continuous domains bucketized).

use hyper_ml::{BinStrategy, Discretizer};
use hyper_query::{HowToQuery, LimitConstraint, UpdateFunc};
use hyper_storage::{ColumnStats, DataType, Value};

use crate::error::{EngineError, Result};
use crate::hexpr::resolve_column;
use crate::view::RelevantView;

/// One permissible update value for one attribute.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Attribute name.
    pub attr: String,
    /// View column.
    pub col: usize,
    /// The update (always an absolute `Set` after bucketization).
    pub func: UpdateFunc,
    /// Mean normalized L1 cost over the update set `S`.
    pub l1_cost: f64,
}

/// Per-attribute candidate lists for a how-to query. `when_mask` marks the
/// update set `S` (the rows whose L1 distance the `Limit` bounds).
pub fn generate_candidates(
    view: &RelevantView,
    when_mask: &[bool],
    q: &HowToQuery,
    buckets: usize,
) -> Result<Vec<Vec<Candidate>>> {
    let mut out = Vec::with_capacity(q.update_attrs.len());
    for attr in &q.update_attrs {
        let col = resolve_column(view.table.schema(), attr)?;
        let stats = ColumnStats::compute(&view.table, &view.table.schema().field(col).name)
            .map_err(EngineError::from)?;

        // Collect this attribute's constraints. Bounds must be resolved
        // by now — a template with `Param(…)` bounds is bound per
        // execution (`PreparedQuery::execute_with`) before reaching here.
        let resolve = |b: &hyper_query::Bound| -> Result<f64> {
            b.as_f64().ok_or_else(|| {
                EngineError::Query(format!(
                    "unresolved parameter `Param({})` in Limit; supply Bindings \
                     (e.g. PreparedQuery::execute_with) before evaluation",
                    b.param_name().unwrap_or("?")
                ))
            })
        };
        let mut lo: Option<f64> = None;
        let mut hi: Option<f64> = None;
        let mut in_set: Option<&[Value]> = None;
        let mut l1: Option<f64> = None;
        for c in &q.limits {
            match c {
                LimitConstraint::Range {
                    attr: a,
                    lo: l,
                    hi: h,
                } if a.eq_ignore_ascii_case(attr) => {
                    if let Some(b) = l {
                        lo = Some(resolve(b)?);
                    }
                    if let Some(b) = h {
                        hi = Some(resolve(b)?);
                    }
                }
                LimitConstraint::InSet { attr: a, values } if a.eq_ignore_ascii_case(attr) => {
                    in_set = Some(values);
                }
                LimitConstraint::L1 { attr: a, bound } if a.eq_ignore_ascii_case(attr) => {
                    l1 = Some(resolve(bound)?);
                }
                _ => {}
            }
        }

        // Pre-update values over S, for L1 costing.
        let pre_col = view.table.column(col);
        let pre_s: Vec<Value> = (0..view.table.num_rows())
            .filter(|&i| when_mask[i])
            .map(|i| pre_col.value(i))
            .collect();

        let mean_l1 = |v: &Value| -> f64 {
            if pre_s.is_empty() {
                return 0.0;
            }
            let target = v.as_f64();
            let total: f64 = pre_s
                .iter()
                .map(|p| match (target, p.as_f64()) {
                    (Some(t), Some(x)) => (t - x).abs(),
                    // Categorical distance: 0/1 mismatch.
                    _ => {
                        if p.sql_eq(v) {
                            0.0
                        } else {
                            1.0
                        }
                    }
                })
                .sum();
            total / pre_s.len() as f64
        };

        let numeric = matches!(
            view.table.schema().field(col).data_type,
            DataType::Int | DataType::Float
        );

        let raw_values: Vec<Value> = if let Some(values) = in_set {
            values.to_vec()
        } else if numeric {
            let dom_lo = stats.min.as_ref().and_then(Value::as_f64).unwrap_or(0.0);
            let dom_hi = stats.max.as_ref().and_then(Value::as_f64).unwrap_or(0.0);
            let range_lo = lo.unwrap_or(dom_lo);
            let range_hi = hi.unwrap_or(dom_hi);
            if range_lo > range_hi {
                Vec::new()
            } else if range_lo == range_hi {
                vec![Value::Float(range_lo)]
            } else {
                let d = Discretizer::fit(
                    &[range_lo, range_hi],
                    buckets.max(1),
                    BinStrategy::EquiWidth,
                )
                .map_err(EngineError::from)?;
                d.midpoints().iter().map(|&m| Value::Float(m)).collect()
            }
        } else {
            // Categorical without an In-set: the observed domain.
            stats.domain()
        };

        let mut cands = Vec::with_capacity(raw_values.len());
        for v in raw_values {
            // Range check (numeric candidates from In-sets too).
            if let Some(x) = v.as_f64() {
                if lo.is_some_and(|l| x < l) || hi.is_some_and(|h| x > h) {
                    continue;
                }
            }
            let cost = mean_l1(&v);
            if l1.is_some_and(|b| cost > b) {
                continue;
            }
            cands.push(Candidate {
                attr: attr.clone(),
                col,
                func: UpdateFunc::Set(v),
                l1_cost: cost,
            });
        }
        out.push(cands);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ColumnOrigin;
    use hyper_query::parse_query;
    use hyper_storage::{Field, Schema, TableBuilder};

    fn view() -> RelevantView {
        let schema = Schema::new(vec![
            Field::new("price", DataType::Float),
            Field::new("color", DataType::Str),
        ])
        .unwrap();
        let mut t = TableBuilder::new("v", schema);
        for (p, c) in [(529.0, "Black"), (999.0, "Silver"), (599.0, "Silver")] {
            t.push(vec![p.into(), c.into()]).unwrap();
        }
        let t = t.build();
        RelevantView {
            origins: vec![
                ColumnOrigin {
                    relation: "v".into(),
                    attribute: "price".into(),
                    aggregated: None,
                },
                ColumnOrigin {
                    relation: "v".into(),
                    attribute: "color".into(),
                    aggregated: None,
                },
            ],
            table: t,
            use_clause: hyper_query::UseClause::Table("v".into()),
            provenance: crate::view::ViewProvenance::AllRows {
                relation: "v".into(),
            },
        }
    }

    fn howto(text: &str) -> HowToQuery {
        match parse_query(text).unwrap() {
            hyper_query::HypotheticalQuery::HowTo(q) => q,
            _ => panic!(),
        }
    }

    #[test]
    fn numeric_candidates_respect_range_and_l1() {
        let q = howto(
            "Use V HowToUpdate price
             Limit 500 <= Post(price) <= 800 And L1(Pre(price), Post(price)) <= 150
             ToMaximize Avg(Post(rating))",
        );
        let v = view();
        // Update set = first row only (pre price 529).
        let cands = generate_candidates(&v, &[true, false, false], &q, 6).unwrap();
        assert_eq!(cands.len(), 1);
        assert!(!cands[0].is_empty());
        for c in &cands[0] {
            let UpdateFunc::Set(Value::Float(x)) = c.func else {
                panic!()
            };
            assert!((500.0..=800.0).contains(&x));
            assert!((x - 529.0).abs() <= 150.0, "L1 violated: {x}");
        }
    }

    #[test]
    fn in_set_candidates() {
        let q = howto(
            "Use V HowToUpdate color
             Limit Post(color) In ('Red', 'Blue')
             ToMaximize Avg(Post(rating))",
        );
        let v = view();
        let cands = generate_candidates(&v, &[true, true, true], &q, 4).unwrap();
        assert_eq!(cands[0].len(), 2);
    }

    #[test]
    fn categorical_defaults_to_domain() {
        let q = howto("Use V HowToUpdate color ToMaximize Avg(Post(rating))");
        let v = view();
        let cands = generate_candidates(&v, &[true, true, true], &q, 4).unwrap();
        // Observed domain: Black, Silver.
        assert_eq!(cands[0].len(), 2);
    }

    #[test]
    fn numeric_defaults_to_observed_range() {
        let q = howto("Use V HowToUpdate price ToMaximize Avg(Post(rating))");
        let v = view();
        let cands = generate_candidates(&v, &[true, true, true], &q, 5).unwrap();
        assert_eq!(cands[0].len(), 5);
        for c in &cands[0] {
            let UpdateFunc::Set(Value::Float(x)) = c.func else {
                panic!()
            };
            assert!((529.0..=999.0).contains(&x));
        }
    }

    #[test]
    fn l1_costs_are_means_over_s() {
        let q = howto(
            "Use V HowToUpdate price Limit 600 <= Post(price) <= 600
             ToMaximize Avg(Post(rating))",
        );
        let v = view();
        let cands = generate_candidates(&v, &[true, true, true], &q, 3).unwrap();
        assert_eq!(cands[0].len(), 1);
        // Mean |600 - {529, 999, 599}| = (71 + 399 + 1)/3.
        let expected = (71.0 + 399.0 + 1.0) / 3.0;
        assert!((cands[0][0].l1_cost - expected).abs() < 1e-9);
    }
}
