//! Probabilistic how-to query evaluation (paper §4): optimize over the
//! space of candidate what-if queries by bucketizing candidate updates and
//! solving a 0-1 Integer Program.

pub mod baseline;
pub mod candidates;
pub mod multi;
pub mod optimizer;

use std::time::Duration;

use hyper_query::UpdateSpec;

/// Result of a how-to query.
#[derive(Debug, Clone)]
pub struct HowToResult {
    /// The chosen updates (attributes not listed are "no change" — §4.1's
    /// output format).
    pub chosen: Vec<UpdateSpec>,
    /// Predicted objective value after applying the chosen updates.
    pub objective: f64,
    /// Objective value with no update (the optimizer's reference point).
    pub baseline: f64,
    /// Total candidate updates enumerated across attributes.
    pub candidates: usize,
    /// What-if evaluations performed.
    pub whatif_evals: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl HowToResult {
    /// Render the paper-style output, e.g. `{Price: 586.2, Color: no change}`.
    pub fn render(&self, all_attrs: &[String]) -> String {
        let mut parts = Vec::with_capacity(all_attrs.len());
        for a in all_attrs {
            match self.chosen.iter().find(|u| u.attr.eq_ignore_ascii_case(a)) {
                Some(u) => parts.push(format!("{a}: {}", u.func)),
                None => parts.push(format!("{a}: no change")),
            }
        }
        format!("{{{}}}", parts.join(", "))
    }
}
