//! The **Opt-HowTo** baseline (§5.1): "compute the optimal solution by
//! enumerating all possible updates, evaluating what-if query output for
//! each update and choosing the one that returns the optimal result."
//!
//! Deliberately exhaustive — Figures 9b and 11b measure its exponential
//! runtime against the IP formulation.

use std::time::Instant;

use hyper_causal::CausalGraph;
use hyper_query::{HowToQuery, ObjectiveDirection, UpdateSpec};
use hyper_runtime::HyperRuntime;
use hyper_storage::Database;

use crate::config::{EngineConfig, HowToOptions};
use crate::error::Result;
use crate::howto::optimizer::{candidate_whatif, HowToContext};
use crate::howto::HowToResult;
use crate::session::cache::ArtifactCache;
use crate::whatif::evaluate_whatif_maybe_cached;

/// Exhaustively search all candidate-update combinations.
pub fn evaluate_howto_bruteforce(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    q: &HowToQuery,
    opts: &HowToOptions,
) -> Result<HowToResult> {
    evaluate_howto_bruteforce_cached(db, graph, config, q, opts, None, HyperRuntime::global())
}

/// Exhaustive search, optionally sharing a session's artifact cache: all
/// enumerated combinations reuse one relevant view, and re-runs reuse the
/// per-combination estimators.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_howto_bruteforce_cached(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    q: &HowToQuery,
    opts: &HowToOptions,
    cache: Option<&ArtifactCache>,
    runtime: &HyperRuntime,
) -> Result<HowToResult> {
    let started = Instant::now();
    let mut ctx = HowToContext::prepare(db, graph, config, q, opts, cache, runtime)?;
    let maximize = q.objective.direction == ObjectiveDirection::Maximize;

    // Mixed-radix enumeration over (no-change + candidates) per attribute.
    let radices: Vec<usize> = ctx.candidates.iter().map(|c| c.len() + 1).collect();
    let mut digits = vec![0usize; radices.len()];
    let mut best: Option<(Vec<UpdateSpec>, f64)> = Some((Vec::new(), ctx.baseline));

    loop {
        // Assemble the combination (digit 0 = no change).
        let updates: Vec<UpdateSpec> = digits
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(i, &d)| {
                let c = &ctx.candidates[i][d - 1];
                UpdateSpec {
                    attr: c.attr.clone(),
                    func: c.func.clone(),
                }
            })
            .collect();
        let n_updated = updates.len();
        let within_budget = opts.max_attrs_updated.is_none_or(|b| n_updated <= b);
        if within_budget && !updates.is_empty() {
            let wq = candidate_whatif(&ctx.whatif_template, updates.clone())?;
            let r = evaluate_whatif_maybe_cached(db, graph, config, &wq, cache, runtime)?;
            ctx.whatif_evals += 1;
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    if maximize {
                        r.value > *b + 1e-12
                    } else {
                        r.value < *b - 1e-12
                    }
                }
            };
            if better {
                best = Some((updates, r.value));
            }
        }
        // Increment.
        let mut i = 0;
        loop {
            if i == digits.len() {
                let (chosen, objective) = best.expect("baseline is always present");
                return Ok(HowToResult {
                    chosen,
                    objective,
                    baseline: ctx.baseline,
                    candidates: ctx.candidates.iter().map(Vec::len).sum(),
                    whatif_evals: ctx.whatif_evals,
                    elapsed: started.elapsed(),
                });
            }
            digits[i] += 1;
            if digits[i] < radices[i] {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}
