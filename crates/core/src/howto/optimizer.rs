//! The IP-based how-to optimizer (§4.3).
//!
//! One binary δ per candidate update value; `Σ_j δ_ij ≤ 1` per attribute;
//! optional budget on the number of updated attributes; objective
//! coefficients are the (linearized) what-if effects of each candidate.

use std::time::Instant;

use hyper_causal::CausalGraph;
use hyper_ip::{solve_ilp, Direction, Model, Sense};
use hyper_query::{
    validate_howto, HExpr, HowToQuery, ObjectiveDirection, OutputArg, OutputSpec, Temporal,
    UpdateSpec, WhatIf, WhatIfQuery,
};
use hyper_runtime::HyperRuntime;
use hyper_storage::Database;

use std::sync::{Arc, OnceLock};

use crate::config::{EngineConfig, HowToOptions};
use crate::error::{EngineError, Result};
use crate::hexpr::bind_hexpr;
use crate::howto::candidates::{generate_candidates, Candidate};
use crate::howto::HowToResult;
use crate::session::cache::ArtifactCache;
use crate::view::{build_relevant_view, RelevantView};
use crate::whatif::evaluate_whatif_maybe_cached;

/// Shared pre-processing for the optimizer, the brute-force baseline, and
/// the lexicographic extension.
pub(crate) struct HowToContext {
    pub candidates: Vec<Vec<Candidate>>,
    pub baseline: f64,
    /// The Definition-7 what-if *template*: an unfinished [`WhatIf`]
    /// builder carrying the shared `Use`/`When`/`Output`/`For` clauses;
    /// each candidate adds its update list and `build()`s (which
    /// re-validates) to obtain a complete query.
    pub whatif_template: WhatIf,
    pub whatif_evals: usize,
    /// Per-attribute per-candidate what-if values.
    pub values: Vec<Vec<f64>>,
}

/// Build the Definition-7 candidate what-if query for a set of updates.
pub(crate) fn candidate_whatif(template: &WhatIf, updates: Vec<UpdateSpec>) -> Result<WhatIfQuery> {
    Ok(template.clone().updates(updates).build()?)
}

impl HowToContext {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepare(
        db: &Database,
        graph: Option<&CausalGraph>,
        config: &EngineConfig,
        q: &HowToQuery,
        opts: &HowToOptions,
        cache: Option<&ArtifactCache>,
        runtime: &HyperRuntime,
    ) -> Result<HowToContext> {
        // Every candidate what-if shares this view; inside a session it is
        // also shared with every other query over the same `Use` clause.
        let view = match cache {
            Some(c) => c.view(db, &q.use_clause)?.0,
            None => Arc::new(build_relevant_view(db, &q.use_clause)?),
        };
        let cols = view.column_names();
        validate_howto(q, Some(&cols))?;
        let schema = view.table.schema();

        // When mask for candidate costing (typed-column scan, no row
        // materialization).
        let when_mask = match &q.when {
            Some(w) => bind_hexpr(w, schema, Temporal::Pre)?.eval_mask(&view.table)?,
            None => vec![true; view.table.num_rows()],
        };

        let candidates = generate_candidates(&view, &when_mask, q, opts.buckets)?;

        // The Definition-7 what-if template: same Use/When/For, Output from
        // the objective. A predicate objective (`Count(Post(credit) =
        // 'Good')`) becomes a boolean output expression. Kept as a typed
        // [`WhatIf`] builder so each candidate's query is assembled — and
        // re-validated — through the same path API callers use. An
        // objective constant still carrying a `Param(…)` placeholder
        // cannot be evaluated — templates must be resolved through
        // `Bindings` (e.g. `PreparedQuery::execute_with`) first.
        let output_expr = match &q.objective.predicate {
            Some((op, constant)) => {
                let value = match constant {
                    hyper_query::ObjectiveConst::Lit(v) => v.clone(),
                    hyper_query::ObjectiveConst::Param(name) => {
                        return Err(EngineError::Query(format!(
                            "unresolved parameter `Param({name})` in the how-to objective; \
                             supply Bindings before evaluation"
                        )))
                    }
                };
                hyper_query::HExpr::binary(
                    *op,
                    hyper_query::HExpr::post(q.objective.attr.clone()),
                    hyper_query::HExpr::Lit(value),
                )
            }
            None => hyper_query::HExpr::post(q.objective.attr.clone()),
        };
        let output_spec = OutputSpec {
            agg: q.objective.agg,
            arg: OutputArg::Expr(output_expr),
        };
        let whatif_template = WhatIf::over_clause(q.use_clause.clone())
            .maybe_when(q.when.clone())
            .output(output_spec.agg, output_spec.arg.clone())
            .maybe_filter(q.for_clause.clone());

        // Baseline: objective with no hypothetical update. Evaluated
        // deterministically (identity update on the first attribute would
        // need numeric types; instead evaluate with an empty candidate by
        // updating nothing: When ∩ S handled by a no-op update) over the
        // already-materialized view.
        let baseline = evaluate_identity_objective(&view, &q.for_clause, &output_spec)?;

        // Assemble every candidate's what-if query, then evaluate. The
        // candidates fan out over the session's persistent worker pool:
        // the artifact cache is thread-safe and single-flight, so
        // concurrent candidates share one relevant view, each estimator
        // is trained at most once, and the values are identical to a
        // sequential pass (training is seeded and order-independent).
        // Nesting is safe — a batch of how-to queries and the forest
        // trainers below them all draw from the same fixed pool.
        let mut flat: Vec<(usize, usize, WhatIfQuery)> = Vec::new();
        for (i, cands) in candidates.iter().enumerate() {
            for (j, c) in cands.iter().enumerate() {
                let wq = candidate_whatif(
                    &whatif_template,
                    vec![UpdateSpec {
                        attr: c.attr.clone(),
                        func: c.func.clone(),
                    }],
                )?;
                flat.push((i, j, wq));
            }
        }
        let whatif_evals = flat.len();
        let mut values: Vec<Vec<f64>> = candidates.iter().map(|c| vec![0.0; c.len()]).collect();
        let slots: Vec<OnceLock<Result<f64>>> = (0..flat.len()).map(|_| OnceLock::new()).collect();
        runtime.for_each_parallel(flat.len(), |k| {
            let r = evaluate_whatif_maybe_cached(db, graph, config, &flat[k].2, cache, runtime)
                .map(|r| r.value);
            let _ = slots[k].set(r);
        });
        for ((i, j, _), slot) in flat.iter().zip(slots) {
            values[*i][*j] = slot.into_inner().expect("every candidate slot is filled")?;
        }

        Ok(HowToContext {
            candidates,
            baseline,
            whatif_template,
            whatif_evals,
            values,
        })
    }
}

/// Evaluate the objective aggregate with no update applied.
fn evaluate_identity_objective(
    view: &RelevantView,
    for_clause: &Option<HExpr>,
    output: &OutputSpec,
) -> Result<f64> {
    // With an empty When set (`When FALSE` is unexpressible) the cleanest
    // identity evaluation reuses the deterministic path: an update on a
    // fresh attribute is impossible, so instead evaluate the aggregate over
    // the view under `post = pre`. The ψ/Y decomposition is the shared
    // what-if one, so the baseline can never diverge from candidate
    // evaluation.
    use hyper_storage::AggFunc;

    let schema = view.table.schema().clone();
    let (pre_conj, post_conj) = match for_clause {
        Some(fc) => crate::hexpr::split_pre_post(fc, Temporal::Pre),
        None => (Vec::new(), Vec::new()),
    };
    let pre = crate::hexpr::conjoin(&pre_conj)
        .map(|e| bind_hexpr(&e, &schema, Temporal::Pre))
        .transpose()?;
    let (psi_expr, y_expr) = crate::whatif::output_decomposition(output, &post_conj)?;
    let psi = psi_expr
        .as_ref()
        .map(|e| bind_hexpr(e, &schema, Temporal::Post))
        .transpose()?;
    let y = y_expr
        .as_ref()
        .map(|e| bind_hexpr(e, &schema, Temporal::Post))
        .transpose()?;

    let table = &view.table;
    let mut total = 0.0;
    let mut count = 0.0;
    for i in 0..table.num_rows() {
        if let Some(p) = &pre {
            if !p.eval_bool_at(table, table, i)? {
                continue;
            }
        }
        let sat = match &psi {
            Some(p) => p.eval_bool_at(table, table, i)?,
            None => true,
        };
        if !sat {
            continue;
        }
        count += 1.0;
        total += match &y {
            Some(yv) => yv
                .eval_at(table, table, i)?
                .as_f64()
                .ok_or_else(|| EngineError::Plan("objective attribute is not numeric".into()))?,
            None => 1.0,
        };
    }
    Ok(match output.agg {
        AggFunc::Avg => {
            if count == 0.0 {
                0.0
            } else {
                total / count
            }
        }
        _ => total,
    })
}

/// Solve a how-to query with the IP formulation (uncached single-shot
/// path; sessions share their artifact cache across the candidate
/// what-if evaluations via [`evaluate_howto_cached`]).
pub fn evaluate_howto(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    q: &HowToQuery,
    opts: &HowToOptions,
) -> Result<HowToResult> {
    evaluate_howto_cached(db, graph, config, q, opts, None, HyperRuntime::global())
}

/// Solve a how-to query with the IP formulation, optionally resolving
/// views and estimators through a session's artifact cache; candidate
/// what-ifs fan out over `runtime`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_howto_cached(
    db: &Database,
    graph: Option<&CausalGraph>,
    config: &EngineConfig,
    q: &HowToQuery,
    opts: &HowToOptions,
    cache: Option<&ArtifactCache>,
    runtime: &HyperRuntime,
) -> Result<HowToResult> {
    let started = Instant::now();
    let ctx = HowToContext::prepare(db, graph, config, q, opts, cache, runtime)?;

    // Build the IP (Eqs. 7–9).
    let maximize = q.objective.direction == ObjectiveDirection::Maximize;
    let mut model = if maximize {
        Model::maximize()
    } else {
        Model::minimize()
    };
    let mut var_map: Vec<Vec<usize>> = Vec::with_capacity(ctx.candidates.len());
    for (i, cands) in ctx.candidates.iter().enumerate() {
        let mut vars = Vec::with_capacity(cands.len());
        for (j, c) in cands.iter().enumerate() {
            let delta = ctx.values[i][j] - ctx.baseline;
            vars.push(model.add_binary(format!("d_{}_{j}", c.attr), delta));
        }
        var_map.push(vars);
    }
    if model.variables.is_empty() {
        return Err(EngineError::Plan(
            "no feasible candidate updates under the Limit constraints".into(),
        ));
    }
    for (i, vars) in var_map.iter().enumerate() {
        if vars.is_empty() {
            continue;
        }
        model
            .add_constraint(
                format!("one_per_attr_{i}"),
                vars.iter().map(|&v| (v, 1.0)).collect(),
                Sense::Le,
                1.0,
            )
            .map_err(EngineError::from)?;
    }
    if let Some(budget) = opts.max_attrs_updated {
        let coefs: Vec<(usize, f64)> = var_map.iter().flatten().map(|&v| (v, 1.0)).collect();
        model
            .add_constraint("attr_budget", coefs, Sense::Le, budget as f64)
            .map_err(EngineError::from)?;
    }

    let solution = solve_ilp(&model).map_err(EngineError::from)?;

    // Direction sanity: for maximization a no-update solution (all δ = 0,
    // objective 0) is always feasible, so the solver can only improve on
    // the baseline; symmetric for minimization.
    debug_assert!(
        (maximize && model.direction == Direction::Maximize)
            || (!maximize && model.direction == Direction::Minimize)
    );

    let mut chosen = Vec::new();
    for (i, vars) in var_map.iter().enumerate() {
        for (j, &v) in vars.iter().enumerate() {
            if solution.values[v] > 0.5 {
                let c = &ctx.candidates[i][j];
                chosen.push(UpdateSpec {
                    attr: c.attr.clone(),
                    func: c.func.clone(),
                });
            }
        }
    }

    // The IP objective is the *linearized* (additive-effects) prediction;
    // report the joint what-if value of the chosen combination instead, so
    // the result is directly comparable to Opt-HowTo.
    let mut whatif_evals = ctx.whatif_evals;
    let objective = if chosen.is_empty() {
        ctx.baseline
    } else {
        let wq = candidate_whatif(&ctx.whatif_template, chosen.clone())?;
        whatif_evals += 1;
        evaluate_whatif_maybe_cached(db, graph, config, &wq, cache, runtime)?.value
    };

    Ok(HowToResult {
        chosen,
        objective,
        baseline: ctx.baseline,
        candidates: ctx.candidates.iter().map(Vec::len).sum(),
        whatif_evals,
        elapsed: started.elapsed(),
    })
}
