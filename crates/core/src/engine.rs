//! The legacy borrow-based engine façade, kept as a thin deprecated shim
//! over the free evaluation functions so existing call sites keep
//! compiling. New code should use [`crate::HyperSession`], which owns its
//! database/graph, caches the expensive artifacts (relevant views, block
//! decompositions, fitted estimators), supports prepared queries, and
//! executes batches in parallel.

use hyper_causal::{BlockDecomposition, CausalGraph};
use hyper_query::{parse_query, HowToQuery, HypotheticalQuery, WhatIfQuery};
use hyper_storage::Database;

use crate::config::{EngineConfig, HowToOptions};
use crate::error::{EngineError, Result};
use crate::howto::baseline::evaluate_howto_bruteforce;
use crate::howto::multi::{evaluate_howto_lexicographic, LexicographicResult};
use crate::howto::optimizer::evaluate_howto;
use crate::howto::HowToResult;
use crate::whatif::{evaluate_whatif, WhatIfResult};

pub use crate::session::QueryOutcome;

/// A configured HypeR engine borrowing a database and causal model.
///
/// Every call re-derives every intermediate artifact — the behaviour of a
/// single-use [`crate::HyperSession`] with an empty cache. The session API
/// exists precisely because that recomputation dominates latency for
/// repeated or batched hypothetical queries.
#[deprecated(
    since = "0.2.0",
    note = "use `HyperSession`, which caches views/estimators, supports \
            prepared queries, and executes batches in parallel"
)]
pub struct HyperEngine<'a> {
    db: &'a Database,
    graph: Option<&'a CausalGraph>,
    config: EngineConfig,
    howto_opts: HowToOptions,
}

#[allow(deprecated)]
impl<'a> HyperEngine<'a> {
    /// Engine with the default (plain HypeR) configuration.
    pub fn new(db: &'a Database, graph: Option<&'a CausalGraph>) -> Self {
        HyperEngine {
            db,
            graph,
            config: EngineConfig::default(),
            howto_opts: HowToOptions::default(),
        }
    }

    /// Override the engine configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the how-to options.
    pub fn with_howto_options(mut self, opts: HowToOptions) -> Self {
        self.howto_opts = opts;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The bound database.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Evaluate a parsed what-if query.
    pub fn whatif(&self, q: &WhatIfQuery) -> Result<WhatIfResult> {
        evaluate_whatif(self.db, self.graph, &self.config, q)
    }

    /// Evaluate a parsed how-to query via the IP formulation.
    pub fn howto(&self, q: &HowToQuery) -> Result<HowToResult> {
        evaluate_howto(self.db, self.graph, &self.config, q, &self.howto_opts)
    }

    /// Evaluate a how-to query by exhaustive enumeration (Opt-HowTo).
    pub fn howto_bruteforce(&self, q: &HowToQuery) -> Result<HowToResult> {
        evaluate_howto_bruteforce(self.db, self.graph, &self.config, q, &self.howto_opts)
    }

    /// Lexicographic multi-objective how-to (§4.3 extension).
    pub fn howto_lexicographic(&self, qs: &[HowToQuery]) -> Result<LexicographicResult> {
        evaluate_howto_lexicographic(self.db, self.graph, &self.config, qs, &self.howto_opts)
    }

    /// Parse and evaluate query text; returns either result kind.
    pub fn execute(&self, text: &str) -> Result<QueryOutcome> {
        match parse_query(text)? {
            HypotheticalQuery::WhatIf(q) => Ok(QueryOutcome::WhatIf(self.whatif(&q)?)),
            HypotheticalQuery::HowTo(q) => Ok(QueryOutcome::HowTo(self.howto(&q)?)),
        }
    }

    /// Parse and evaluate what-if text.
    pub fn whatif_text(&self, text: &str) -> Result<WhatIfResult> {
        match parse_query(text)? {
            HypotheticalQuery::WhatIf(q) => self.whatif(&q),
            HypotheticalQuery::HowTo(_) => Err(EngineError::Query(
                "expected a what-if query, got a how-to query".into(),
            )),
        }
    }

    /// Parse and evaluate how-to text.
    pub fn howto_text(&self, text: &str) -> Result<HowToResult> {
        match parse_query(text)? {
            HypotheticalQuery::HowTo(q) => self.howto(&q),
            HypotheticalQuery::WhatIf(_) => Err(EngineError::Query(
                "expected a how-to query, got a what-if query".into(),
            )),
        }
    }

    /// The block-independent decomposition of the bound database under the
    /// bound causal graph (Prop. 1/Example 7).
    pub fn block_decomposition(&self) -> Result<BlockDecomposition> {
        let graph = self.graph.ok_or_else(|| {
            EngineError::Causal("block decomposition requires a causal graph".into())
        })?;
        BlockDecomposition::compute(self.db, graph).map_err(EngineError::from)
    }
}
