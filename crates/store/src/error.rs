//! Typed snapshot errors.
//!
//! Every decode path is total: malformed input — truncated files, flipped
//! bytes, bogus section lengths, out-of-range indices, fingerprint
//! mismatches — surfaces as a [`StoreError`], never as a panic. The disk
//! cache tier in `hyper-core` relies on this to treat a damaged artifact
//! file as a cache miss and rebuild instead of crashing the process.

use std::fmt;

/// Errors produced while encoding or decoding snapshots.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure (open/read/write/rename).
    Io(std::io::Error),
    /// The bytes are not a snapshot, are truncated, fail a checksum, or
    /// decode to structurally invalid data (out-of-range index, ragged
    /// columns, …). The payload cannot be trusted.
    Corrupt(String),
    /// The file is a recognizable snapshot but written by an incompatible
    /// format version.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version this build reads and writes.
        expected: u16,
    },
    /// The snapshot decoded cleanly but its recorded content fingerprint
    /// does not match the fingerprint recomputed from the decoded data —
    /// or does not match the content the caller required.
    FingerprintMismatch {
        /// Fingerprint recorded in (or required of) the snapshot.
        expected: u64,
        /// Fingerprint actually observed.
        found: u64,
        /// What was being validated (table name, "database", …).
        what: String,
    },
    /// The value cannot be serialized (e.g. an estimator still carrying an
    /// unresolved `Param(…)` placeholder).
    Unsupported(String),
    /// A relational operation over paged data failed (bad predicate,
    /// schema drift between chunks, …) — see [`crate::paging`].
    Query(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not supported (expected {expected})"
            ),
            StoreError::FingerprintMismatch {
                expected,
                found,
                what,
            } => write!(
                f,
                "fingerprint mismatch for {what}: expected {expected:#018x}, found {found:#018x}"
            ),
            StoreError::Unsupported(msg) => write!(f, "cannot serialize: {msg}"),
            StoreError::Query(msg) => write!(f, "query over paged data failed: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Store result type.
pub type Result<T> = std::result::Result<T, StoreError>;
