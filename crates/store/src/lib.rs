//! # hyper-store
//!
//! Durable binary snapshots for the HypeR engine: the hand-rolled,
//! versioned **`HYPR1`** format (no serde — the build environment is
//! offline) that serializes typed columnar [`Table`]s and whole
//! [`Database`]s, [`CausalGraph`]s, Prop.-1 block decompositions, and
//! fitted models ([`RandomForest`], [`LinearModel`], [`TableEncoder`]),
//! plus the per-artifact file format backing `hyper-core`'s disk cache
//! tier.
//!
//! [`Table`]: hyper_storage::Table
//! [`Database`]: hyper_storage::Database
//! [`CausalGraph`]: hyper_causal::CausalGraph
//! [`RandomForest`]: hyper_ml::RandomForest
//! [`LinearModel`]: hyper_ml::LinearModel
//! [`TableEncoder`]: hyper_ml::TableEncoder
//!
//! ## The `HYPR1` container
//!
//! Every file is a magic-tagged, versioned sequence of length-prefixed
//! sections, each with an FNV-1a checksum, closed by a whole-file
//! checksum ([`container`]). Payload encodings are fixed-width
//! little-endian with length-prefixed strings ([`codec`]) — trivially
//! auditable, exact for `f64` bit patterns, and bulk-copyable for typed
//! column buffers. String dictionaries shared across columns and tables
//! (the normal state after `gather`/`project`) are written **once** and
//! referenced by index.
//!
//! Three guarantees hold for every decode path:
//!
//! 1. **Totality** — truncated files, flipped bytes, bogus lengths, and
//!    out-of-range indices produce a typed [`StoreError`], never a panic
//!    (and never an unterminating prediction walk: tree arenas are
//!    re-validated on load).
//! 2. **Fidelity** — `decode(encode(x))` is content-identical: tables
//!    round-trip fingerprint-identical and reloaded forests predict
//!    bit-identically.
//! 3. **Fingerprint discipline** — tables, databases, and graphs carry
//!    their content fingerprint and are re-hashed on load
//!    ([`StoreError::FingerprintMismatch`] on disagreement), so a loaded
//!    value can be trusted to key the process-wide shared artifact
//!    store.
//!
//! ## What sits on top
//!
//! * [`Snapshot`] — a whole scenario (database + causal graph) in one
//!   file; `hyper-snapshot save/load/inspect` is a thin CLI over it.
//! * [`SnapshotRegistry`] — a directory of `<tenant>.hypr` snapshot
//!   files mapping tenant ids to scenarios; `hyper-serve` loads tenants
//!   from one lazily (single-flight) on first request.
//! * [`artifact`] — single-artifact files (relevant view / fitted
//!   estimator / block decomposition) with kind + full cache key +
//!   shard fingerprints in the header; `hyper-core` files these under a
//!   `SessionBuilder::persist_dir` to give restarted processes
//!   warm-cache first queries (see `examples/warm_start.rs`).
//! * [`deltalog`] — the `HYPD1` append log: a `<tenant>.hypd` sidecar of
//!   checksummed, torn-tail-tolerant delta records beside the snapshot,
//!   so ingest appends durably without rewriting the `HYPR1` file and
//!   loaders replay to the latest version.
//! * [`paging`] — out-of-core tables: [`PagedTable::spill`] slices a
//!   table into fixed-row chunks written as individual `HYPR1` files,
//!   then scans chunk-at-a-time under a resident-byte LRU budget (chunk
//!   granularity = morsel granularity), so a table larger than memory —
//!   or larger than a deliberately tiny budget — still scans correctly.
//!   Predicate scans decode **column-projected** chunks with a reused
//!   byte buffer ([`PagedTable::scan_projected`]), skipping every
//!   unreferenced column's payload.
//! * [`train`] — streaming forest training over paged tables:
//!   [`PagedTrainSource`] feeds projected, encoded chunks to
//!   [`hyper_ml::StreamedLayout`], bit-identical to resident training
//!   without ever materializing the dense feature matrix.

#![warn(missing_docs)]

pub mod artifact;
pub mod causalcodec;
pub mod codec;
pub mod container;
pub mod deltalog;
pub mod error;
pub mod mlcodec;
pub mod paging;
pub mod registry;
pub mod snapshot;
pub mod tablecodec;
pub mod train;

pub use artifact::{read_artifact, write_artifact, ArtifactKind, ArtifactMeta};
pub use causalcodec::{decode_blocks, decode_graph, encode_blocks, encode_graph};
pub use codec::{fnv1a, ByteReader, ByteWriter};
pub use container::{Container, ContainerWriter, FORMAT_VERSION, MAGIC};
pub use deltalog::{AppendLog, DELTA_LOG_EXT};
pub use error::{Result, StoreError};
pub use mlcodec::{
    decode_encoder, decode_forest, decode_linear, decode_tree, encode_encoder, encode_forest,
    encode_linear, encode_tree,
};
pub use paging::{global_paging_stats, PagedTable, PagingStats};
pub use registry::SnapshotRegistry;
pub use snapshot::{Snapshot, SnapshotInfo};
pub use tablecodec::{
    decode_database, decode_schema, decode_table, decode_table_projected, encode_database,
    encode_schema, encode_table,
};
pub use train::{fit_encoder_paged, target_vector_paged, PagedTrainSource};
