//! Codecs for relational storage: schemas, typed columns, tables, and
//! whole databases.
//!
//! Columns serialize their *typed* buffers directly — `i64`/`f64` words,
//! one byte per bool, `u32` dictionary codes — plus the packed null-bitmap
//! words, so a snapshot round-trip is exact (float bit patterns included)
//! and decoding is a bulk copy, not a per-`Value` parse.
//!
//! String dictionaries are hoisted: within one table (or one database),
//! every distinct `Arc<StrDict>` is written **once** in a dictionary
//! block, and `Str` columns reference it by index. Columns produced by
//! `gather`/`project` share dictionaries in memory; the snapshot preserves
//! that sharing on disk and on reload instead of duplicating the strings
//! per column.
//!
//! Tables and databases end with their content fingerprint
//! ([`hyper_storage::Fingerprint`] machinery). Decoding recomputes the
//! fingerprint of the reconstructed value and rejects the snapshot with
//! [`StoreError::FingerprintMismatch`] when they disagree — a second line
//! of defense behind the container checksums, and the property that makes
//! warm-started sessions safe: an artifact only ever joins the cache shard
//! its data actually belongs to.

use std::collections::HashMap;
use std::sync::Arc;

use hyper_storage::{
    Column, DataType, Database, Field, ForeignKey, NullBitmap, Schema, StrDict, Table, TableBuilder,
};

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{Result, StoreError};

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

// ------------------------------------------------------------ data types

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        t => return Err(corrupt(format!("invalid data-type tag {t}"))),
    })
}

// --------------------------------------------------------------- schemas

/// Encode a schema: field count, then `(name, type, nullable)` triples.
pub fn encode_schema(w: &mut ByteWriter, schema: &Schema) {
    w.write_u64(schema.len() as u64);
    for f in schema.fields() {
        w.write_str(&f.name);
        w.write_u8(dtype_tag(f.data_type));
        w.write_bool(f.nullable);
    }
}

/// Decode a schema.
pub fn decode_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let n = r.read_len(3, "schema field count")?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.read_string("field name")?;
        let dt = dtype_from_tag(r.read_u8("field type")?)?;
        let nullable = r.read_bool("field nullability")?;
        fields.push(if nullable {
            Field::nullable(name, dt)
        } else {
            Field::new(name, dt)
        });
    }
    Schema::new(fields).map_err(|e| corrupt(format!("invalid schema: {e}")))
}

// ---------------------------------------------------------- dictionaries

/// Deduplicates `Arc<StrDict>`s by pointer identity while encoding, so a
/// dictionary shared by several columns (or tables) is written once.
#[derive(Default)]
pub(crate) struct DictRegistry {
    by_ptr: HashMap<usize, u32>,
    dicts: Vec<Arc<StrDict>>,
}

impl DictRegistry {
    fn index_of(&mut self, dict: &Arc<StrDict>) -> u32 {
        let ptr = Arc::as_ptr(dict) as usize;
        if let Some(&i) = self.by_ptr.get(&ptr) {
            return i;
        }
        let i = self.dicts.len() as u32;
        self.by_ptr.insert(ptr, i);
        self.dicts.push(Arc::clone(dict));
        i
    }

    fn write(&self, w: &mut ByteWriter) {
        w.write_u64(self.dicts.len() as u64);
        for d in &self.dicts {
            w.write_u64(d.len() as u64);
            for s in d.strings() {
                w.write_str(s);
            }
        }
    }

    fn read(r: &mut ByteReader<'_>) -> Result<Vec<Arc<StrDict>>> {
        let n = r.read_len(8, "dictionary count")?;
        let mut dicts = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.read_len(8, "dictionary size")?;
            let mut dict = StrDict::default();
            for _ in 0..len {
                let s: Arc<str> = Arc::from(r.read_str("dictionary string")?);
                let code = dict.intern(&s);
                if code as usize + 1 != dict.len() {
                    return Err(corrupt("duplicate string in dictionary"));
                }
            }
            dicts.push(Arc::new(dict));
        }
        Ok(dicts)
    }
}

// --------------------------------------------------------------- columns

fn encode_nulls(w: &mut ByteWriter, nulls: &NullBitmap) {
    if nulls.any_null() {
        w.write_bool(true);
        for &word in nulls.words() {
            w.write_u64(word);
        }
    } else {
        w.write_bool(false);
    }
}

fn decode_nulls(r: &mut ByteReader<'_>, len: usize) -> Result<NullBitmap> {
    if !r.read_bool("null-bitmap flag")? {
        return Ok(NullBitmap::all_valid(len));
    }
    let words = len.div_ceil(64);
    let mut buf = Vec::with_capacity(words);
    for _ in 0..words {
        buf.push(r.read_u64("null-bitmap word")?);
    }
    NullBitmap::from_words(len, buf).map_err(|e| corrupt(format!("invalid null bitmap: {e}")))
}

fn encode_column(w: &mut ByteWriter, col: &Column, dicts: &mut DictRegistry) {
    w.write_u8(dtype_tag(col.data_type()));
    w.write_u64(col.len() as u64);
    encode_nulls(w, col.nulls());
    match col {
        Column::Int { values, .. } => {
            for &v in values {
                w.write_i64(v);
            }
        }
        Column::Float { values, .. } => {
            for &v in values {
                w.write_f64(v);
            }
        }
        Column::Bool { values, .. } => {
            for &v in values {
                w.write_bool(v);
            }
        }
        Column::Str { codes, dict, .. } => {
            w.write_u32(dicts.index_of(dict));
            for &c in codes {
                w.write_u32(c);
            }
        }
    }
}

fn decode_column(r: &mut ByteReader<'_>, dicts: &[Arc<StrDict>]) -> Result<Column> {
    let dt = dtype_from_tag(r.read_u8("column type")?)?;
    let len = r.read_len(1, "column length")?;
    let nulls = decode_nulls(r, len)?;
    // Bulk reads: one bounds check per column, then a typed conversion
    // over the raw payload slice.
    Ok(match dt {
        DataType::Int => {
            let raw = r.read_raw(len * 8, "int column payload")?;
            let values = raw
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect();
            Column::Int { values, nulls }
        }
        DataType::Float => {
            let raw = r.read_raw(len * 8, "float column payload")?;
            let values = raw
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
                .collect();
            Column::Float { values, nulls }
        }
        DataType::Bool => {
            let raw = r.read_raw(len, "bool column payload")?;
            if let Some(&bad) = raw.iter().find(|&&b| b > 1) {
                return Err(corrupt(format!("invalid boolean byte {bad} in bool cell")));
            }
            Column::Bool {
                values: raw.iter().map(|&b| b == 1).collect(),
                nulls,
            }
        }
        DataType::Str => {
            let di = r.read_u32("dictionary index")? as usize;
            let dict = dicts
                .get(di)
                .ok_or_else(|| corrupt(format!("column references missing dictionary {di}")))?;
            let raw = r.read_raw(len * 4, "string code payload")?;
            let mut codes = Vec::with_capacity(len);
            for (i, c) in raw.chunks_exact(4).enumerate() {
                let c = u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
                if c as usize >= dict.len() && !nulls.is_null(i) {
                    return Err(corrupt(format!(
                        "string code {c} out of range for a {}-entry dictionary",
                        dict.len()
                    )));
                }
                // NULL slots may carry any placeholder code; clamp so the
                // payload can never index out of bounds.
                codes.push(if c as usize >= dict.len() { 0 } else { c });
            }
            Column::Str {
                codes,
                dict: Arc::clone(dict),
                nulls,
            }
        }
    })
}

// ---------------------------------------------------------------- tables

/// Table body: name, schema, primary key, columns (dictionaries go to the
/// shared registry, written separately).
fn encode_table_body(w: &mut ByteWriter, table: &Table, dicts: &mut DictRegistry) {
    w.write_str(table.name());
    encode_schema(w, table.schema());
    w.write_u64(table.primary_key().len() as u64);
    for &k in table.primary_key() {
        w.write_u64(k as u64);
    }
    for c in 0..table.num_columns() {
        encode_column(w, table.column(c), dicts);
    }
}

fn decode_table_body(r: &mut ByteReader<'_>, dicts: &[Arc<StrDict>]) -> Result<Table> {
    let name = r.read_string("table name")?;
    let schema = decode_schema(r)?;
    let nkeys = r.read_len(8, "primary-key count")?;
    let mut key_names = Vec::with_capacity(nkeys);
    for _ in 0..nkeys {
        let k = r.read_u64("primary-key index")? as usize;
        if k >= schema.len() {
            return Err(corrupt(format!(
                "primary-key column {k} out of range for a {}-column schema",
                schema.len()
            )));
        }
        key_names.push(schema.field(k).name.clone());
    }
    let mut columns = Vec::with_capacity(schema.len());
    for i in 0..schema.len() {
        let col = decode_column(r, dicts)?;
        if col.data_type() != schema.field(i).data_type {
            return Err(corrupt(format!(
                "column `{}` is declared {} but encoded as {}",
                schema.field(i).name,
                schema.field(i).data_type,
                col.data_type()
            )));
        }
        columns.push(col);
    }
    if let Some(n) = columns.first().map(Column::len) {
        if columns.iter().any(|c| c.len() != n) {
            return Err(corrupt(format!("table `{name}` has ragged columns")));
        }
    }
    let key_refs: Vec<&str> = key_names.iter().map(String::as_str).collect();
    let mut b = TableBuilder::with_key(name, schema.clone(), &key_refs)
        .map_err(|e| corrupt(format!("invalid primary key: {e}")))?;
    for (i, col) in columns.into_iter().enumerate() {
        b.set_column(&schema.field(i).name.clone(), col)
            .map_err(|e| corrupt(format!("invalid column payload: {e}")))?;
    }
    Ok(b.build())
}

/// Encode a table: shared-dictionary block, body, content fingerprint.
pub fn encode_table(w: &mut ByteWriter, table: &Table) {
    let mut dicts = DictRegistry::default();
    let mut body = ByteWriter::new();
    encode_table_body(&mut body, table, &mut dicts);
    dicts.write(w);
    w.write_raw(body.as_slice());
    w.write_u64(table.fingerprint());
}

/// Advance past one encoded column without materializing it: the typed
/// layouts are all length-prefixed, so a skip is a handful of cursor
/// moves regardless of payload size.
fn skip_column(r: &mut ByteReader<'_>) -> Result<()> {
    let dt = dtype_from_tag(r.read_u8("column type")?)?;
    let len = r.read_len(1, "column length")?;
    if r.read_bool("null-bitmap flag")? {
        r.read_raw(len.div_ceil(64) * 8, "null-bitmap words")?;
    }
    match dt {
        DataType::Int | DataType::Float => {
            r.read_raw(len * 8, "skipped column payload")?;
        }
        DataType::Bool => {
            r.read_raw(len, "skipped column payload")?;
        }
        DataType::Str => {
            r.read_u32("dictionary index")?;
            r.read_raw(len * 4, "skipped column payload")?;
        }
    }
    Ok(())
}

/// Decode only the columns of an encoded table named in `keep`, skipping
/// every other column's payload bytes — the column-projected chunk
/// decode behind predicate scans and streaming training over
/// [`crate::paging::PagedTable`] chunks.
///
/// The projected table keeps the source's name and row order but drops
/// the primary key (key columns may not be in the projection) and does
/// **not** validate the recorded fingerprint: it covers the full table,
/// which a projection cannot recompute, and the `HYPR1` container's
/// whole-file checksum has already validated every payload byte before
/// this decoder runs. Columns in `keep` that the table lacks are ignored
/// (downstream schema lookups surface the miss with a proper error).
pub fn decode_table_projected(r: &mut ByteReader<'_>, keep: &[&str]) -> Result<Table> {
    let dicts = DictRegistry::read(r)?;
    let name = r.read_string("table name")?;
    let schema = decode_schema(r)?;
    let nkeys = r.read_len(8, "primary-key count")?;
    for _ in 0..nkeys {
        let k = r.read_u64("primary-key index")? as usize;
        if k >= schema.len() {
            return Err(corrupt(format!(
                "primary-key column {k} out of range for a {}-column schema",
                schema.len()
            )));
        }
    }
    let mut kept_fields = Vec::with_capacity(keep.len());
    let mut columns = Vec::with_capacity(keep.len());
    for i in 0..schema.len() {
        let f = schema.field(i);
        if keep.contains(&f.name.as_str()) {
            let col = decode_column(r, &dicts)?;
            if col.data_type() != f.data_type {
                return Err(corrupt(format!(
                    "column `{}` is declared {} but encoded as {}",
                    f.name,
                    f.data_type,
                    col.data_type()
                )));
            }
            kept_fields.push(if f.nullable {
                Field::nullable(f.name.clone(), f.data_type)
            } else {
                Field::new(f.name.clone(), f.data_type)
            });
            columns.push(col);
        } else {
            skip_column(r)?;
        }
    }
    if let Some(n) = columns.first().map(Column::len) {
        if columns.iter().any(|c| c.len() != n) {
            return Err(corrupt(format!("table `{name}` has ragged columns")));
        }
    }
    let _full_fingerprint = r.read_u64("table fingerprint")?;
    let sub =
        Schema::new(kept_fields).map_err(|e| corrupt(format!("invalid projected schema: {e}")))?;
    let mut b = TableBuilder::new(name, sub.clone());
    for (i, col) in columns.into_iter().enumerate() {
        b.set_column(&sub.field(i).name.clone(), col)
            .map_err(|e| corrupt(format!("invalid column payload: {e}")))?;
    }
    Ok(b.build())
}

/// Decode a table, validating its recorded fingerprint against the
/// fingerprint recomputed from the decoded data.
pub fn decode_table(r: &mut ByteReader<'_>) -> Result<Table> {
    let dicts = DictRegistry::read(r)?;
    let table = decode_table_body(r, &dicts)?;
    let recorded = r.read_u64("table fingerprint")?;
    let actual = table.fingerprint();
    if recorded != actual {
        return Err(StoreError::FingerprintMismatch {
            expected: recorded,
            found: actual,
            what: format!("table `{}`", table.name()),
        });
    }
    Ok(table)
}

// -------------------------------------------------------------- database

/// Encode a whole database: one shared-dictionary block for every table,
/// the table bodies, foreign keys, and the database content fingerprint.
pub fn encode_database(w: &mut ByteWriter, db: &Database) {
    let mut dicts = DictRegistry::default();
    let mut body = ByteWriter::new();
    body.write_u64(db.tables().len() as u64);
    for t in db.tables() {
        encode_table_body(&mut body, t, &mut dicts);
    }
    dicts.write(w);
    w.write_raw(body.as_slice());
    w.write_u64(db.foreign_keys().len() as u64);
    for fk in db.foreign_keys() {
        w.write_str(&fk.child_table);
        w.write_u64(fk.child_columns.len() as u64);
        for c in &fk.child_columns {
            w.write_str(c);
        }
        w.write_str(&fk.parent_table);
        w.write_u64(fk.parent_columns.len() as u64);
        for c in &fk.parent_columns {
            w.write_str(c);
        }
    }
    w.write_u64(db.fingerprint());
}

/// Decode a database, validating foreign keys against the decoded tables
/// and the recorded content fingerprint against the recomputed one.
pub fn decode_database(r: &mut ByteReader<'_>) -> Result<Database> {
    let dicts = DictRegistry::read(r)?;
    let ntables = r.read_len(8, "table count")?;
    let mut db = Database::new();
    for _ in 0..ntables {
        let t = decode_table_body(r, &dicts)?;
        db.add_table(t)
            .map_err(|e| corrupt(format!("invalid table set: {e}")))?;
    }
    let nfks = r.read_len(8, "foreign-key count")?;
    for _ in 0..nfks {
        let child_table = r.read_string("foreign-key child table")?;
        let nc = r.read_len(8, "foreign-key child column count")?;
        let mut child_columns = Vec::with_capacity(nc);
        for _ in 0..nc {
            child_columns.push(r.read_string("foreign-key child column")?);
        }
        let parent_table = r.read_string("foreign-key parent table")?;
        let np = r.read_len(8, "foreign-key parent column count")?;
        let mut parent_columns = Vec::with_capacity(np);
        for _ in 0..np {
            parent_columns.push(r.read_string("foreign-key parent column")?);
        }
        db.add_foreign_key(ForeignKey {
            child_table,
            child_columns,
            parent_table,
            parent_columns,
        })
        .map_err(|e| corrupt(format!("invalid foreign key: {e}")))?;
    }
    let recorded = r.read_u64("database fingerprint")?;
    let actual = db.fingerprint();
    if recorded != actual {
        return Err(StoreError::FingerprintMismatch {
            expected: recorded,
            found: actual,
            what: "database".into(),
        });
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::Value;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("brand", DataType::Str),
            Field::nullable("price", DataType::Float),
            Field::nullable("ok", DataType::Bool),
        ])
        .unwrap();
        TableBuilder::with_key("product", schema, &["id"])
            .unwrap()
            .rows([
                vec![1.into(), "vaio".into(), 999.0.into(), true.into()],
                vec![2.into(), "asus".into(), Value::Null, Value::Null],
                vec![3.into(), "vaio".into(), (-0.0).into(), false.into()],
            ])
            .unwrap()
            .build()
    }

    #[test]
    fn table_round_trips_exactly() {
        let t = sample_table();
        let mut w = ByteWriter::new();
        encode_table(&mut w, &t);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_table(&mut r).unwrap();
        assert!(r.is_at_end());
        assert_eq!(back.fingerprint(), t.fingerprint());
        assert_eq!(back.primary_key(), t.primary_key());
        for c in 0..t.num_columns() {
            assert_eq!(back.column(c), t.column(c), "column {c}");
        }
    }

    #[test]
    fn shared_dictionaries_written_once() {
        // A gathered table shares its dictionary with the original; a
        // database holding both stores the strings once.
        let t = sample_table();
        let g = {
            let mut g = t.gather(&[0, 2]);
            g.set_name("gathered");
            g
        };
        let mut db = Database::new();
        db.add_table(t).unwrap();
        db.add_table(g).unwrap();

        let mut w = ByteWriter::new();
        encode_database(&mut w, &db);
        let shared_len = w.len();

        // Re-encode with the sharing broken (fresh dictionary per table).
        let mut db2 = Database::new();
        for t in db.tables() {
            let rebuilt = {
                let mut b = TableBuilder::new(t.name(), t.schema().clone());
                for c in 0..t.num_columns() {
                    let col = t.column(c);
                    let vals: Vec<Value> = col.iter().collect();
                    let fresh = Column::from_values(col.data_type(), &vals).unwrap();
                    b.set_column(&t.schema().field(c).name.clone(), fresh)
                        .unwrap();
                }
                b.build()
            };
            db2.add_table(rebuilt).unwrap();
        }
        let mut w2 = ByteWriter::new();
        encode_database(&mut w2, &db2);
        assert!(
            shared_len < w2.len(),
            "shared-dict encoding ({shared_len}B) should be smaller than \
             per-table dictionaries ({}B)",
            w2.len()
        );

        // And both decode back to fingerprint-identical databases.
        let mut r = ByteReader::new(w.as_slice());
        let back = decode_database(&mut r).unwrap();
        assert_eq!(back.fingerprint(), db.fingerprint());
    }

    #[test]
    fn tampered_cell_is_a_fingerprint_mismatch() {
        let t = sample_table();
        let mut w = ByteWriter::new();
        encode_table(&mut w, &t);
        let mut bytes = w.into_bytes();
        // Flip a mantissa bit of the unique 999.0 cell: still a valid
        // float, still a structurally valid table — only the content hash
        // can catch it.
        let needle = 999.0f64.to_bits().to_le_bytes();
        let pos = bytes
            .windows(8)
            .position(|w| w == needle)
            .expect("price payload present");
        bytes[pos] ^= 0x02;
        let mut r = ByteReader::new(&bytes);
        let err = decode_table(&mut r).unwrap_err();
        assert!(
            matches!(err, StoreError::FingerprintMismatch { .. }),
            "got {err}"
        );
    }
}
