//! Disk-tier artifact files: one cached artifact (relevant view, fitted
//! estimator, or block decomposition) per `HYPR1` file.
//!
//! The file carries an `AMET` metadata section — artifact kind, the full
//! cache key, and the `(database, graph)` shard fingerprints — ahead of
//! the `APAY` payload. Readers state what they expect and
//! [`read_artifact`] verifies all of it before returning payload bytes:
//! file names are derived from a *hash* of the cache key, so the full key
//! stored inside the file is what rules out hash collisions, and the
//! shard fingerprints rule out a stale persist directory re-used against
//! different data. Any mismatch is a typed error the cache treats as a
//! miss — never a wrong artifact.

use std::path::Path;

use crate::codec::{ByteReader, ByteWriter};
use crate::container::{
    Container, ContainerWriter, SECTION_ARTIFACT_META, SECTION_ARTIFACT_PAYLOAD,
};
use crate::error::{Result, StoreError};

/// What kind of artifact a disk file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A materialized relevant view.
    View,
    /// A fitted causal estimator.
    Estimator,
    /// A Prop.-1 block decomposition.
    Blocks,
}

impl ArtifactKind {
    fn tag(self) -> u8 {
        match self {
            ArtifactKind::View => 0,
            ArtifactKind::Estimator => 1,
            ArtifactKind::Blocks => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<ArtifactKind> {
        Ok(match tag {
            0 => ArtifactKind::View,
            1 => ArtifactKind::Estimator,
            2 => ArtifactKind::Blocks,
            t => {
                return Err(StoreError::Corrupt(format!(
                    "invalid artifact-kind tag {t}"
                )))
            }
        })
    }

    /// Directory name the disk tier files this kind under.
    pub fn dir_name(self) -> &'static str {
        match self {
            ArtifactKind::View => "views",
            ArtifactKind::Estimator => "estimators",
            ArtifactKind::Blocks => "blocks",
        }
    }
}

/// Identity of a disk-tier artifact: its kind, full cache key, and the
/// `(database, graph)` fingerprints of the shard it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// The full cache key (not the filename hash).
    pub key: String,
    /// Content fingerprint of the database.
    pub db_fingerprint: u64,
    /// Content fingerprint of the causal graph (0 when none).
    pub graph_fingerprint: u64,
}

/// Write an artifact file atomically.
pub fn write_artifact(path: &Path, meta: &ArtifactMeta, payload: Vec<u8>) -> Result<()> {
    let mut m = ByteWriter::new();
    m.write_u8(meta.kind.tag());
    m.write_str(&meta.key);
    m.write_u64(meta.db_fingerprint);
    m.write_u64(meta.graph_fingerprint);
    let mut c = ContainerWriter::new();
    c.add_section(SECTION_ARTIFACT_META, m.into_bytes());
    c.add_section(SECTION_ARTIFACT_PAYLOAD, payload);
    c.write_to(path)
}

/// Read an artifact file, verifying checksums and that the stored
/// identity equals `expected` exactly; returns the payload bytes.
pub fn read_artifact(path: &Path, expected: &ArtifactMeta) -> Result<Vec<u8>> {
    let c = Container::read_from(path)?;
    let mut r = ByteReader::new(c.section(SECTION_ARTIFACT_META)?);
    let kind = ArtifactKind::from_tag(r.read_u8("artifact kind")?)?;
    let key = r.read_string("artifact key")?;
    let db_fp = r.read_u64("artifact database fingerprint")?;
    let graph_fp = r.read_u64("artifact graph fingerprint")?;
    r.expect_end("artifact metadata")?;
    if kind != expected.kind || key != expected.key {
        return Err(StoreError::Corrupt(format!(
            "artifact file holds a different {:?} entry (key hash collision or misfiled entry)",
            kind
        )));
    }
    if db_fp != expected.db_fingerprint {
        return Err(StoreError::FingerprintMismatch {
            expected: expected.db_fingerprint,
            found: db_fp,
            what: "artifact database".into(),
        });
    }
    if graph_fp != expected.graph_fingerprint {
        return Err(StoreError::FingerprintMismatch {
            expected: expected.graph_fingerprint,
            found: graph_fp,
            what: "artifact graph".into(),
        });
    }
    Ok(c.section(SECTION_ARTIFACT_PAYLOAD)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ArtifactMeta {
        ArtifactMeta {
            kind: ArtifactKind::Estimator,
            key: "view\u{1f}Update(x)=1".into(),
            db_fingerprint: 0xdead_beef,
            graph_fingerprint: 0x1234,
        }
    }

    #[test]
    fn round_trip_and_identity_checks() {
        let dir = std::env::temp_dir().join(format!("hyper_artifact_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("e.hypr");
        write_artifact(&path, &meta(), vec![1, 2, 3]).unwrap();
        assert_eq!(read_artifact(&path, &meta()).unwrap(), vec![1, 2, 3]);

        // Wrong key (hash collision scenario).
        let mut other = meta();
        other.key = "different".into();
        assert!(matches!(
            read_artifact(&path, &other).unwrap_err(),
            StoreError::Corrupt(_)
        ));

        // Stale persist dir against different data.
        let mut other = meta();
        other.db_fingerprint = 1;
        assert!(matches!(
            read_artifact(&path, &other).unwrap_err(),
            StoreError::FingerprintMismatch { .. }
        ));

        // Flipped payload byte → container checksum failure.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            read_artifact(&path, &meta()).unwrap_err(),
            StoreError::Corrupt(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
