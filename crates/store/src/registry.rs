//! The tenant snapshot registry: a directory of `HYPR1` scenario files,
//! one per tenant.
//!
//! `hyper-serve` maps tenant ids to `(database, graph)` scenarios via a
//! [`SnapshotRegistry`]: a directory whose `*.hypr` files each hold one
//! [`Snapshot`], with the file stem as the tenant id —
//!
//! ```text
//! registry/
//! ├── acme.hypr      ← tenant "acme"
//! ├── globex.hypr    ← tenant "globex"
//! └── initech.hypr   ← tenant "initech"
//! ```
//!
//! The registry itself only resolves names to paths (one cheap directory
//! scan at [`SnapshotRegistry::open`]); loading — the expensive,
//! fully-validating decode — happens per tenant via
//! [`SnapshotRegistry::load`], which callers are expected to wrap in
//! their own single-flight cache (the server caches a `HyperSession` per
//! tenant and guarantees N concurrent first requests cause exactly one
//! load). [`SnapshotRegistry::inspect`] summarizes a tenant's file
//! without decoding its data sections.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::error::{Result, StoreError};
use crate::snapshot::{Snapshot, SnapshotInfo};

/// The `*.hypr` extension registry files must carry.
pub const SNAPSHOT_EXT: &str = "hypr";

/// A directory mapping tenant ids to scenario snapshot files.
///
/// Tenant ids are the file stems, kept in sorted order for deterministic
/// listings. The scan is a point-in-time view: files added to the
/// directory later are picked up by re-`open`ing.
#[derive(Debug, Clone)]
pub struct SnapshotRegistry {
    dir: PathBuf,
    tenants: BTreeMap<String, PathBuf>,
}

impl SnapshotRegistry {
    /// Scan `dir` for `*.hypr` snapshot files. Fails with a typed error
    /// when the directory cannot be read; an empty directory is a valid
    /// (empty) registry.
    pub fn open(dir: impl AsRef<Path>) -> Result<SnapshotRegistry> {
        let dir = dir.as_ref().to_path_buf();
        let mut tenants = BTreeMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let is_snapshot = path.is_file()
                && path
                    .extension()
                    .is_some_and(|e| e.eq_ignore_ascii_case(SNAPSHOT_EXT));
            if !is_snapshot {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            tenants.insert(stem.to_string(), path);
        }
        Ok(SnapshotRegistry { dir, tenants })
    }

    /// The scanned directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Registered tenant ids, sorted.
    pub fn tenants(&self) -> impl Iterator<Item = &str> {
        self.tenants.keys().map(String::as_str)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// True when `tenant` has a snapshot file.
    pub fn contains(&self, tenant: &str) -> bool {
        self.tenants.contains_key(tenant)
    }

    /// The snapshot path for `tenant`, if registered.
    pub fn path(&self, tenant: &str) -> Option<&Path> {
        self.tenants.get(tenant).map(PathBuf::as_path)
    }

    /// Where `tenant`'s `HYPD1` delta log lives (beside its snapshot;
    /// the file may not exist yet — [`crate::AppendLog::open`] creates
    /// it on first ingest).
    pub fn delta_log_path(&self, tenant: &str) -> PathBuf {
        self.dir
            .join(format!("{tenant}.{}", crate::deltalog::DELTA_LOG_EXT))
    }

    /// Load and fully validate `tenant`'s snapshot (checksums, structure,
    /// fingerprints — see [`Snapshot::load`]). Unknown tenants are a
    /// typed [`StoreError::Corrupt`]-free error: [`StoreError::Io`] with
    /// `NotFound`, so servers can map it to a 404 without string
    /// matching.
    pub fn load(&self, tenant: &str) -> Result<Snapshot> {
        let path = self.path(tenant).ok_or_else(|| {
            StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("tenant `{tenant}` is not in the registry"),
            ))
        })?;
        Snapshot::load(path)
    }

    /// Summarize `tenant`'s snapshot file without decoding data sections.
    pub fn inspect(&self, tenant: &str) -> Result<SnapshotInfo> {
        let path = self.path(tenant).ok_or_else(|| {
            StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("tenant `{tenant}` is not in the registry"),
            ))
        })?;
        Snapshot::inspect(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::{DataType, Database, Field, Schema, TableBuilder};

    fn tiny_snapshot(seed: i64) -> Snapshot {
        let mut db = Database::new();
        let t = TableBuilder::with_key(
            "t",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("x", DataType::Float),
            ])
            .unwrap(),
            &["id"],
        )
        .unwrap()
        .rows([vec![seed.into(), (seed as f64 * 0.5).into()]])
        .unwrap()
        .build();
        db.add_table(t).unwrap();
        Snapshot::new(db, None)
    }

    #[test]
    fn open_lists_loads_and_rejects_unknown() {
        let dir = std::env::temp_dir().join(format!("hyper_registry_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        tiny_snapshot(1).save(dir.join("acme.hypr")).unwrap();
        tiny_snapshot(2).save(dir.join("globex.hypr")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let reg = SnapshotRegistry::open(&dir).unwrap();
        assert_eq!(reg.tenants().collect::<Vec<_>>(), vec!["acme", "globex"]);
        assert!(reg.contains("acme") && !reg.contains("notes"));

        let acme = reg.load("acme").unwrap();
        assert_eq!(acme.database.tables().len(), 1);
        let info = reg.inspect("globex").unwrap();
        assert_eq!(info.tables[0].1, 1);

        match reg.load("missing") {
            Err(StoreError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected NotFound, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
