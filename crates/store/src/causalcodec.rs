//! Codecs for causal artifacts: schema-level graphs and Prop.-1 block
//! decompositions.
//!
//! Graphs re-enter through [`CausalGraph::add_node`]/[`CausalGraph::add_edge`],
//! so every structural invariant the live API enforces (no duplicate
//! nodes, no cycles, intra edges within one relation) also holds for a
//! decoded graph — malformed bytes produce [`StoreError::Corrupt`], never
//! an invalid graph. The decoded graph's fingerprint is checked against
//! the recorded one.

use hyper_causal::{BlockDecomposition, CausalGraph, EdgeKind, TupleRef};

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{Result, StoreError};

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// Encode a causal graph: nodes in id order, edges in insertion order
/// (with grounding kinds), then the content fingerprint.
pub fn encode_graph(w: &mut ByteWriter, graph: &CausalGraph) {
    w.write_u64(graph.nodes().len() as u64);
    for n in graph.nodes() {
        w.write_str(&n.relation);
        w.write_str(&n.attribute);
    }
    w.write_u64(graph.edges().len() as u64);
    for e in graph.edges() {
        w.write_u64(e.from as u64);
        w.write_u64(e.to as u64);
        match &e.kind {
            EdgeKind::Intra => w.write_u8(0),
            EdgeKind::ForeignKey => w.write_u8(1),
            EdgeKind::SameValue { group_by } => {
                w.write_u8(2);
                w.write_str(group_by);
            }
        }
    }
    w.write_u64(graph.fingerprint());
}

/// Decode a causal graph, re-validating structure and fingerprint.
pub fn decode_graph(r: &mut ByteReader<'_>) -> Result<CausalGraph> {
    let mut g = CausalGraph::new();
    let nnodes = r.read_len(16, "graph node count")?;
    for _ in 0..nnodes {
        let relation = r.read_string("node relation")?;
        let attribute = r.read_string("node attribute")?;
        g.add_node(hyper_causal::AttrNode::new(relation, attribute))
            .map_err(|e| corrupt(format!("invalid graph node: {e}")))?;
    }
    let nedges = r.read_len(17, "graph edge count")?;
    for _ in 0..nedges {
        let from = r.read_u64("edge source")? as usize;
        let to = r.read_u64("edge target")? as usize;
        let kind = match r.read_u8("edge kind")? {
            0 => EdgeKind::Intra,
            1 => EdgeKind::ForeignKey,
            2 => EdgeKind::SameValue {
                group_by: r.read_string("edge group-by")?,
            },
            t => return Err(corrupt(format!("invalid edge-kind tag {t}"))),
        };
        g.add_edge(from, to, kind)
            .map_err(|e| corrupt(format!("invalid graph edge: {e}")))?;
    }
    let recorded = r.read_u64("graph fingerprint")?;
    let actual = g.fingerprint();
    if recorded != actual {
        return Err(StoreError::FingerprintMismatch {
            expected: recorded,
            found: actual,
            what: "causal graph".into(),
        });
    }
    Ok(g)
}

/// Encode a block decomposition as its tuple partition.
pub fn encode_blocks(w: &mut ByteWriter, blocks: &BlockDecomposition) {
    w.write_u64(blocks.num_blocks() as u64);
    for b in blocks.blocks() {
        w.write_u64(b.len() as u64);
        for t in b {
            w.write_u64(t.table as u64);
            w.write_u64(t.row as u64);
        }
    }
}

/// Decode a block decomposition (rejecting overlapping blocks).
pub fn decode_blocks(r: &mut ByteReader<'_>) -> Result<BlockDecomposition> {
    let nblocks = r.read_len(8, "block count")?;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let ntuples = r.read_len(16, "block tuple count")?;
        let mut tuples = Vec::with_capacity(ntuples);
        for _ in 0..ntuples {
            tuples.push(TupleRef {
                table: r.read_u64("tuple table")? as usize,
                row: r.read_u64("tuple row")? as usize,
            });
        }
        blocks.push(tuples);
    }
    BlockDecomposition::from_blocks(blocks)
        .map_err(|e| corrupt(format!("invalid block decomposition: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_causal::amazon_example_graph;

    #[test]
    fn graph_round_trips() {
        let g = amazon_example_graph();
        let mut w = ByteWriter::new();
        encode_graph(&mut w, &g);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_graph(&mut r).unwrap();
        assert!(r.is_at_end());
        assert_eq!(back.fingerprint(), g.fingerprint());
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn cyclic_bytes_are_rejected_not_panicked() {
        // Hand-craft a 2-node graph with a back edge: the decoder must
        // surface the cycle as corruption.
        let mut w = ByteWriter::new();
        w.write_u64(2);
        for (rel, attr) in [("t", "a"), ("t", "b")] {
            w.write_str(rel);
            w.write_str(attr);
        }
        w.write_u64(2);
        for (from, to) in [(0u64, 1u64), (1, 0)] {
            w.write_u64(from);
            w.write_u64(to);
            w.write_u8(0);
        }
        w.write_u64(0); // fingerprint (never reached)
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            decode_graph(&mut r).unwrap_err(),
            StoreError::Corrupt(_)
        ));
    }

    #[test]
    fn blocks_round_trip() {
        let blocks = BlockDecomposition::from_blocks(vec![
            vec![TupleRef { table: 0, row: 0 }, TupleRef { table: 1, row: 3 }],
            vec![TupleRef { table: 0, row: 1 }],
        ])
        .unwrap();
        let mut w = ByteWriter::new();
        encode_blocks(&mut w, &blocks);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_blocks(&mut r).unwrap();
        assert_eq!(back.num_blocks(), 2);
        assert_eq!(back.blocks(), blocks.blocks());
        assert_eq!(
            back.block_of(TupleRef { table: 1, row: 3 }),
            blocks.block_of(TupleRef { table: 1, row: 3 })
        );
    }
}
