//! Whole-scenario snapshots: a database plus its causal graph in one
//! `HYPR1` file.
//!
//! A [`Snapshot`] is what the `hyper-snapshot` CLI saves, inspects, and
//! loads, and what `examples/warm_start.rs` restarts from: the full typed
//! contents of every table (shared dictionaries written once), the
//! schema-level causal graph, and the content fingerprints of both.
//! Loading re-validates everything — container checksums, structural
//! invariants, and recomputed-vs-recorded fingerprints — so a loaded
//! scenario lands in exactly the artifact-store shard its data belongs
//! to, which is what makes disk-cached estimators safe to reuse.

use std::path::Path;

use hyper_causal::CausalGraph;
use hyper_storage::Database;

use crate::codec::{ByteReader, ByteWriter};
use crate::container::{
    tag_str, Container, ContainerWriter, SECTION_DB, SECTION_GRAPH, SECTION_META,
};
use crate::error::Result;
use crate::{causalcodec, tablecodec};

/// A saved scenario: database + optional causal graph.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The relational data.
    pub database: Database,
    /// The schema-level causal model, when the scenario has one.
    pub graph: Option<CausalGraph>,
}

/// Summary of a snapshot file, cheap to produce (decodes only the
/// metadata section after the container checksums pass).
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// Total file size in bytes.
    pub file_bytes: usize,
    /// `(section tag, payload bytes)` in file order.
    pub sections: Vec<(String, usize)>,
    /// Recorded database content fingerprint.
    pub database_fingerprint: u64,
    /// Recorded graph fingerprint (0 when the snapshot has no graph).
    pub graph_fingerprint: u64,
    /// `(table name, rows, columns)` per table.
    pub tables: Vec<(String, usize, usize)>,
}

impl Snapshot {
    /// Snapshot a database and optional graph.
    pub fn new(database: Database, graph: Option<CausalGraph>) -> Snapshot {
        Snapshot { database, graph }
    }

    /// Serialize to `HYPR1` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = ByteWriter::new();
        meta.write_u64(self.database.fingerprint());
        meta.write_u64(self.graph.as_ref().map_or(0, CausalGraph::fingerprint));
        meta.write_u64(self.database.tables().len() as u64);
        for t in self.database.tables() {
            meta.write_str(t.name());
            meta.write_u64(t.num_rows() as u64);
            meta.write_u64(t.num_columns() as u64);
        }

        let mut db = ByteWriter::new();
        tablecodec::encode_database(&mut db, &self.database);

        let mut c = ContainerWriter::new();
        c.add_section(SECTION_META, meta.into_bytes());
        c.add_section(SECTION_DB, db.into_bytes());
        if let Some(g) = &self.graph {
            let mut gw = ByteWriter::new();
            causalcodec::encode_graph(&mut gw, g);
            c.add_section(SECTION_GRAPH, gw.into_bytes());
        }
        c.finish()
    }

    /// Deserialize from `HYPR1` bytes, validating checksums, structure,
    /// and fingerprints.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot> {
        let c = Container::from_bytes(bytes)?;
        let mut r = ByteReader::new(c.section(SECTION_DB)?);
        let database = tablecodec::decode_database(&mut r)?;
        r.expect_end("database section")?;
        let graph = match c.section_opt(SECTION_GRAPH) {
            Some(bytes) => {
                let mut r = ByteReader::new(bytes);
                let g = causalcodec::decode_graph(&mut r)?;
                r.expect_end("graph section")?;
                Some(g)
            }
            None => None,
        };
        Ok(Snapshot { database, graph })
    }

    /// Save to a file (written atomically via a temporary sibling).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        crate::container::write_atomic(path.as_ref(), &self.to_bytes())
    }

    /// Load and fully validate a snapshot file.
    pub fn load(path: impl AsRef<Path>) -> Result<Snapshot> {
        Snapshot::from_bytes(std::fs::read(path.as_ref())?)
    }

    /// Summarize a snapshot file without decoding its data sections.
    pub fn inspect(path: impl AsRef<Path>) -> Result<SnapshotInfo> {
        let c = Container::read_from(path.as_ref())?;
        let sections = c
            .sections()
            .map(|(tag, len)| (tag_str(&tag), len))
            .collect();
        let mut r = ByteReader::new(c.section(SECTION_META)?);
        let database_fingerprint = r.read_u64("database fingerprint")?;
        let graph_fingerprint = r.read_u64("graph fingerprint")?;
        let n = r.read_len(24, "table count")?;
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.read_string("table name")?;
            let rows = r.read_u64("row count")? as usize;
            let cols = r.read_u64("column count")? as usize;
            tables.push((name, rows, cols));
        }
        Ok(SnapshotInfo {
            file_bytes: c.file_len(),
            sections,
            database_fingerprint,
            graph_fingerprint,
            tables,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_causal::amazon_example_graph;
    use hyper_storage::{DataType, Field, Schema, TableBuilder};

    fn scenario() -> Snapshot {
        let mut db = Database::new();
        let t = TableBuilder::with_key(
            "product",
            Schema::new(vec![
                Field::new("pid", DataType::Int),
                Field::new("category", DataType::Str),
                Field::new("price", DataType::Float),
            ])
            .unwrap(),
            &["pid"],
        )
        .unwrap()
        .rows([
            vec![1.into(), "Laptop".into(), 999.0.into()],
            vec![2.into(), "Camera".into(), 120.0.into()],
        ])
        .unwrap()
        .build();
        db.add_table(t).unwrap();
        Snapshot::new(db, Some(amazon_example_graph()))
    }

    #[test]
    fn bytes_round_trip_fingerprint_identical() {
        let s = scenario();
        let back = Snapshot::from_bytes(s.to_bytes()).unwrap();
        assert_eq!(
            back.database.fingerprint(),
            s.database.fingerprint(),
            "reloaded database must be fingerprint-identical"
        );
        assert_eq!(
            back.graph.as_ref().unwrap().fingerprint(),
            s.graph.as_ref().unwrap().fingerprint()
        );
    }

    #[test]
    fn file_round_trip_and_inspect() {
        let dir = std::env::temp_dir().join(format!("hyper_store_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scenario.hypr");
        let s = scenario();
        s.save(&path).unwrap();

        let info = Snapshot::inspect(&path).unwrap();
        assert_eq!(info.database_fingerprint, s.database.fingerprint());
        assert_eq!(info.tables, vec![("product".to_string(), 2, 3)]);
        assert!(info.sections.iter().any(|(t, _)| t == "GRPH"));

        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.database.fingerprint(), s.database.fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graphless_snapshot_loads_without_graph() {
        let mut s = scenario();
        s.graph = None;
        let back = Snapshot::from_bytes(s.to_bytes()).unwrap();
        assert!(back.graph.is_none());
    }
}
