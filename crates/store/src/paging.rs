//! Out-of-core tables: the `HYPR1` store doubling as a paging layer.
//!
//! [`PagedTable::spill`] slices a table into fixed-row chunks (chunk
//! granularity = morsel granularity — see `hyper_storage::morsel`) and
//! writes each chunk as its own checksummed `HYPR1` file. Scans then run
//! **chunk-at-a-time** through a resident-byte budget: [`PagedTable::
//! chunk`] loads chunk files on demand, keeps recently used chunks
//! resident, and evicts least-recently-used chunks once the budget is
//! exceeded — the chunk being handed out is always retained, so a budget
//! smaller than a single chunk (or a single column) still scans
//! correctly, just with zero reuse between chunks.
//!
//! Every chunk file round-trips through [`crate::encode_table`] /
//! [`crate::decode_table`], so loads inherit the container's totality
//! and fingerprint-validation guarantees: a flipped byte in a spilled
//! chunk surfaces as a typed [`StoreError`], never as wrong rows.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hyper_storage::{Expr, Table};

use crate::codec::{ByteReader, ByteWriter};
use crate::container::{Container, ContainerWriter, SECTION_PAGE};
use crate::error::{Result, StoreError};
use crate::tablecodec::{decode_table, decode_table_projected, encode_table};

/// Process-wide paging counters, summed across every [`PagedTable`] this
/// process has scanned (projected chunk decodes count as loads — they
/// read disk). `resident_bytes` is always 0 here: residency is a
/// per-table property that ends with the table. Surfaced through
/// `SessionStats::snapshot()` / `/stats` so out-of-core behavior is
/// observable in serving.
pub fn global_paging_stats() -> PagingStats {
    PagingStats {
        loads: GLOBAL_LOADS.load(Ordering::Relaxed),
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        evictions: GLOBAL_EVICTIONS.load(Ordering::Relaxed),
        resident_bytes: 0,
    }
}

static GLOBAL_LOADS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Counters describing how a [`PagedTable`] has behaved so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagingStats {
    /// Chunk files decoded from disk.
    pub loads: u64,
    /// Chunks served from the resident set without touching disk.
    pub hits: u64,
    /// Chunks evicted to stay inside the resident-byte budget.
    pub evictions: u64,
    /// Bytes currently resident (sum of loaded chunk file sizes).
    pub resident_bytes: u64,
}

/// LRU bookkeeping + resident chunks, behind one lock so `PagedTable`
/// can be shared across scan workers.
#[derive(Debug, Default)]
struct CacheState {
    resident: HashMap<usize, Arc<Table>>,
    /// `last_used[chunk]` = tick of the most recent access.
    last_used: HashMap<usize, u64>,
    tick: u64,
    stats: PagingStats,
}

/// A table spilled to disk as `HYPR1` chunk files and scanned
/// chunk-at-a-time under a resident-byte budget.
#[derive(Debug)]
pub struct PagedTable {
    name: String,
    /// Zero-row slice of the source: schema + name + key, no payload.
    prototype: Table,
    chunk_rows: usize,
    num_rows: usize,
    budget_bytes: u64,
    chunk_paths: Vec<PathBuf>,
    chunk_bytes: Vec<u64>,
    cache: Mutex<CacheState>,
}

impl PagedTable {
    /// Slice `table` into chunks of `chunk_rows` rows, write each as an
    /// `HYPR1` file under `dir` (created if absent), and return the
    /// paged handle with the given resident-byte `budget_bytes`.
    pub fn spill(
        table: &Table,
        dir: impl AsRef<Path>,
        chunk_rows: usize,
        budget_bytes: u64,
    ) -> Result<PagedTable> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let chunk_rows = chunk_rows.max(1);
        let n = table.num_rows();
        let chunks = n.div_ceil(chunk_rows);
        let mut chunk_paths = Vec::with_capacity(chunks);
        let mut chunk_bytes = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let start = c * chunk_rows;
            let len = chunk_rows.min(n - start);
            let slice = table.slice(start, len);
            let mut body = ByteWriter::new();
            encode_table(&mut body, &slice);
            let mut w = ContainerWriter::new();
            w.add_section(SECTION_PAGE, body.into_bytes());
            let path = dir.join(format!("{}.page{c:05}.hypr", table.name()));
            w.write_to(&path)?;
            chunk_bytes.push(std::fs::metadata(&path)?.len());
            chunk_paths.push(path);
        }
        Ok(PagedTable {
            name: table.name().to_string(),
            prototype: table.slice(0, 0),
            chunk_rows,
            num_rows: n,
            budget_bytes,
            chunk_paths,
            chunk_bytes,
            cache: Mutex::new(CacheState::default()),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total logical rows across all chunks.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Rows per chunk (the final chunk may be shorter).
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of spilled chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunk_paths.len()
    }

    /// Total bytes on disk across all chunk files.
    pub fn spilled_bytes(&self) -> u64 {
        self.chunk_bytes.iter().sum()
    }

    /// A zero-row table with the source's name, schema, and key.
    pub fn prototype(&self) -> &Table {
        &self.prototype
    }

    /// Paging counters so far.
    pub fn stats(&self) -> PagingStats {
        self.cache.lock().expect("paging cache lock").stats
    }

    /// Chunk `c`, loaded from disk if not resident. The returned chunk
    /// stays valid even if it is evicted from the resident set while the
    /// caller still holds it (the `Arc` keeps it alive).
    pub fn chunk(&self, c: usize) -> Result<Arc<Table>> {
        if c >= self.chunk_paths.len() {
            return Err(StoreError::Corrupt(format!(
                "chunk {c} out of range ({} chunks)",
                self.chunk_paths.len()
            )));
        }
        let mut cache = self.cache.lock().expect("paging cache lock");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(t) = cache.resident.get(&c).cloned() {
            cache.stats.hits += 1;
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
            cache.last_used.insert(c, tick);
            return Ok(t);
        }
        drop(cache); // don't hold the lock across file I/O
        let io_span = hyper_trace::span(hyper_trace::Phase::PagedIO);
        let container = Container::read_from(&self.chunk_paths[c])?;
        let mut r = ByteReader::new(container.section(SECTION_PAGE)?);
        let t = Arc::new(decode_table(&mut r)?);
        drop(io_span);

        let mut cache = self.cache.lock().expect("paging cache lock");
        cache.stats.loads += 1;
        GLOBAL_LOADS.fetch_add(1, Ordering::Relaxed);
        cache.last_used.insert(c, tick);
        if cache.resident.insert(c, Arc::clone(&t)).is_none() {
            cache.stats.resident_bytes += self.chunk_bytes[c];
        }
        // Evict least-recently-used chunks (never the one just handed
        // out) until we are back inside the budget. A budget smaller
        // than one chunk degenerates to exactly one resident chunk.
        while cache.stats.resident_bytes > self.budget_bytes && cache.resident.len() > 1 {
            let victim = cache
                .resident
                .keys()
                .filter(|&&k| k != c)
                .min_by_key(|&&k| cache.last_used.get(&k).copied().unwrap_or(0))
                .copied();
            match victim {
                Some(v) => {
                    cache.resident.remove(&v);
                    cache.last_used.remove(&v);
                    cache.stats.evictions += 1;
                    GLOBAL_EVICTIONS.fetch_add(1, Ordering::Relaxed);
                    cache.stats.resident_bytes -= self.chunk_bytes[v];
                }
                None => break,
            }
        }
        Ok(t)
    }

    /// Run `f(chunk_index, first_global_row, chunk)` over every chunk in
    /// row order, loading chunk-at-a-time under the budget.
    pub fn for_each_chunk(
        &self,
        mut f: impl FnMut(usize, usize, &Table) -> Result<()>,
    ) -> Result<()> {
        for c in 0..self.chunk_count() {
            let t = self.chunk(c)?;
            f(c, c * self.chunk_rows, &t)?;
        }
        Ok(())
    }

    /// Run `f(chunk_index, first_global_row, projected_chunk)` over every
    /// chunk in row order, decoding **only** the columns named in `keep`
    /// and reusing one file-byte buffer across the whole scan (see
    /// [`crate::tablecodec::decode_table_projected`]). Projected chunks
    /// bypass the resident LRU — nothing is retained between chunks, so
    /// a scan's footprint is one projected chunk regardless of budget —
    /// and each decode counts as a load (disk was read).
    pub fn scan_projected(
        &self,
        keep: &[&str],
        mut f: impl FnMut(usize, usize, &Table) -> Result<()>,
    ) -> Result<()> {
        let mut buf = Vec::new();
        for c in 0..self.chunk_count() {
            let io_span = hyper_trace::span(hyper_trace::Phase::PagedIO);
            let container = Container::read_into(&self.chunk_paths[c], buf)?;
            {
                let mut r = ByteReader::new(container.section(SECTION_PAGE)?);
                let t = decode_table_projected(&mut r, keep)?;
                self.cache.lock().expect("paging cache lock").stats.loads += 1;
                GLOBAL_LOADS.fetch_add(1, Ordering::Relaxed);
                drop(io_span);
                f(c, c * self.chunk_rows, &t)?;
            }
            buf = container.into_bytes();
        }
        Ok(())
    }

    /// Global row indices satisfying `predicate`, evaluated
    /// chunk-at-a-time (each chunk's selection runs through the morsel
    /// engine, so chunk granularity = morsel granularity). Matches the
    /// in-memory `matching_rows` over the unspilled table exactly.
    ///
    /// Chunks decode **column-projected** to the predicate's referenced
    /// columns with a reused byte buffer ([`PagedTable::scan_projected`])
    /// — the other columns' payload bytes are skipped, which is most of
    /// the previous scan cost on wide tables. Predicates referencing no
    /// columns fall back to full chunks (a projected chunk with zero
    /// columns would lose the row count).
    pub fn matching_rows(&self, predicate: &Expr) -> Result<Vec<usize>> {
        let referenced = predicate.referenced_columns();
        let mut keep = Vec::new();
        let collect = |keep: &mut Vec<usize>, base: usize, t: &Table| -> Result<()> {
            let local = hyper_storage::ops::matching_rows(t, predicate)
                .map_err(|e| StoreError::Query(e.to_string()))?;
            keep.extend(local.into_iter().map(|i| base + i));
            Ok(())
        };
        if referenced.is_empty() {
            self.for_each_chunk(|_, base, t| collect(&mut keep, base, t))?;
        } else {
            let names: Vec<&str> = referenced.iter().map(String::as_str).collect();
            self.scan_projected(&names, |_, base, t| collect(&mut keep, base, t))?;
        }
        Ok(keep)
    }

    /// Reassemble the full in-memory table (test/debug aid — the point
    /// of paging is normally *not* to do this).
    pub fn collect(&self) -> Result<Table> {
        let mut out = self.prototype.clone();
        self.for_each_chunk(|_, _, t| {
            out.append_rows(t)
                .map_err(|e| StoreError::Query(format!("chunk append failed: {e}")))
        })?;
        Ok(out)
    }

    /// Delete every spilled chunk file (the handle is consumed).
    pub fn remove_files(self) -> Result<()> {
        for p in &self.chunk_paths {
            std::fs::remove_file(p)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::{col, lit, DataType, Field, Schema, TableBuilder, Value};

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hyper_paging_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("score", DataType::Float),
            Field::nullable("tag", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("pages", schema);
        for i in 0..n {
            let tag: Value = if i % 11 == 0 {
                Value::Null
            } else {
                ["alpha", "beta", "gamma"][i % 3].into()
            };
            b.push(vec![
                Value::Int(i as i64),
                Value::Float(i as f64 * 0.25),
                tag,
            ])
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn spill_and_collect_round_trips_fingerprint() {
        let dir = test_dir("roundtrip");
        let t = table(1000);
        let paged = PagedTable::spill(&t, &dir, 128, u64::MAX).unwrap();
        assert_eq!(paged.chunk_count(), 8);
        assert_eq!(paged.num_rows(), 1000);
        let back = paged.collect().unwrap();
        assert_eq!(back.fingerprint(), t.fingerprint());
        paged.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_smaller_than_one_column_still_scans_correctly() {
        let dir = test_dir("tiny_budget");
        let t = table(1000);
        // One column alone is ≥ 8 bytes per row; a 64-byte budget is far
        // smaller than any column, let alone a chunk file.
        let paged = PagedTable::spill(&t, &dir, 100, 64).unwrap();
        let pred = col("score").ge(lit(200.0)).and(col("tag").eq(lit("beta")));
        let expect = hyper_storage::ops::matching_rows(&t, &pred).unwrap();
        let got = paged.matching_rows(&pred).unwrap();
        assert_eq!(got, expect);
        let stats = paged.stats();
        assert_eq!(stats.loads, 10, "every chunk loaded from disk");
        assert_eq!(stats.evictions, 0, "projected scans retain nothing");
        // Full-chunk scans go through the resident LRU and must keep
        // evicting under the tiny budget.
        paged.for_each_chunk(|_, _, _| Ok(())).unwrap();
        let stats = paged.stats();
        assert_eq!(stats.loads, 20);
        assert!(
            stats.evictions >= 9,
            "tiny budget must keep evicting ({stats:?})"
        );
        assert!(stats.resident_bytes <= paged.spilled_bytes() / 5);
        // A second predicate scan reloads everything: nothing is shared
        // with the projected path.
        let again = paged.matching_rows(&pred).unwrap();
        assert_eq!(again, expect);
        assert_eq!(paged.stats().loads, 30);
        paged.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generous_budget_serves_second_scan_from_memory() {
        let dir = test_dir("warm");
        let t = table(500);
        let paged = PagedTable::spill(&t, &dir, 100, u64::MAX).unwrap();
        paged.for_each_chunk(|_, _, _| Ok(())).unwrap();
        paged.for_each_chunk(|_, _, _| Ok(())).unwrap();
        let stats = paged.stats();
        assert_eq!(stats.loads, 5);
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.evictions, 0);
        paged.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunk_out_of_range_is_an_error_and_empty_table_has_no_chunks() {
        let dir = test_dir("edge");
        let t = table(0);
        let paged = PagedTable::spill(&t, &dir, 100, 1024).unwrap();
        assert_eq!(paged.chunk_count(), 0);
        assert_eq!(paged.num_rows(), 0);
        assert!(paged.chunk(0).is_err());
        let back = paged.collect().unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.fingerprint(), t.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_chunk_file_surfaces_as_typed_error() {
        let dir = test_dir("corrupt");
        let t = table(300);
        let paged = PagedTable::spill(&t, &dir, 100, u64::MAX).unwrap();
        // Flip one byte in the middle of chunk 1's payload.
        let path = &paged.chunk_paths[1];
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(path, bytes).unwrap();
        assert!(paged.chunk(0).is_ok());
        assert!(paged.chunk(1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
