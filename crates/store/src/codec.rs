//! Byte-level primitives of the `HYPR1` format: a little-endian writer
//! and a bounds-checked reader.
//!
//! Everything in a snapshot reduces to five scalar encodings — `u8`,
//! `u64`, `f64` (IEEE-754 bit pattern, exact round-trip), length-prefixed
//! byte strings, and booleans — plus the [`Value`] tagged union. There is
//! deliberately no varint/zigzag cleverness: fixed-width little-endian
//! keeps the format trivially auditable and the reader branch-free.
//!
//! [`ByteReader`] never indexes past its slice: every read is
//! bounds-checked and returns [`StoreError::Corrupt`] on underflow, so a
//! truncated or bit-flipped file can only produce a typed error, never a
//! panic. Collection lengths read from untrusted bytes must be validated
//! by the caller before allocation; [`ByteReader::read_len`] caps a
//! length against the bytes that remain, which bounds allocations by the
//! input size.

use std::sync::Arc;

use hyper_storage::Value;

use crate::error::{Result, StoreError};

/// Little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, yielding its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16` (LE).
    #[inline]
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32` (LE).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64` (LE).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64` (LE, two's complement).
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its exact bit pattern (NaN payloads survive).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Write a boolean as one byte.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Append raw bytes with no length prefix (container framing).
    pub fn write_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed byte string.
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.write_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, v: &str) {
        self.write_bytes(v.as_bytes());
    }

    /// Write a [`Value`] as a tagged union (floats bit-exact).
    pub fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write_u8(0),
            Value::Bool(b) => {
                self.write_u8(1);
                self.write_bool(*b);
            }
            Value::Int(i) => {
                self.write_u8(2);
                self.write_i64(*i);
            }
            Value::Float(f) => {
                self.write_u8(3);
                self.write_f64(*f);
            }
            Value::Str(s) => {
                self.write_u8(4);
                self.write_str(s);
            }
        }
    }
}

/// Bounds-checked little-endian cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> StoreError {
    StoreError::Corrupt(format!("unexpected end of data while reading {what}"))
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read `n` raw bytes with no length prefix.
    pub fn read_raw(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.take(n, what)
    }

    /// True when the cursor is at the end.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless every byte has been consumed (trailing garbage is
    /// corruption, not slack).
    pub fn expect_end(&self, what: &str) -> Result<()> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{} trailing byte(s) after {what}",
                self.remaining()
            )))
        }
    }

    #[inline]
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a `u16` (LE).
    #[inline]
    pub fn read_u16(&mut self, what: &str) -> Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a `u32` (LE).
    #[inline]
    pub fn read_u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64` (LE).
    #[inline]
    pub fn read_u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes taken")))
    }

    /// Read an `i64` (LE).
    #[inline]
    pub fn read_i64(&mut self, what: &str) -> Result<i64> {
        Ok(self.read_u64(what)? as i64)
    }

    /// Read an `f64` bit pattern.
    #[inline]
    pub fn read_f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64(what)?))
    }

    /// Read a boolean; any byte other than 0/1 is corruption.
    #[inline]
    pub fn read_bool(&mut self, what: &str) -> Result<bool> {
        match self.read_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::Corrupt(format!(
                "invalid boolean byte {b} in {what}"
            ))),
        }
    }

    /// Read a collection length declared as `count` items of at least
    /// `min_item_bytes` bytes each, rejecting counts the remaining input
    /// cannot possibly hold (bounds attacker-controlled allocations).
    pub fn read_len(&mut self, min_item_bytes: usize, what: &str) -> Result<usize> {
        let n = self.read_u64(what)?;
        let cap = match min_item_bytes {
            0 => u64::MAX,
            b => (self.remaining() / b) as u64,
        };
        if n > cap {
            return Err(StoreError::Corrupt(format!(
                "{what} declares {n} item(s) but only {} byte(s) remain",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn read_bytes(&mut self, what: &str) -> Result<&'a [u8]> {
        let n = self.read_len(1, what)?;
        self.take(n, what)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_str(&mut self, what: &str) -> Result<&'a str> {
        std::str::from_utf8(self.read_bytes(what)?)
            .map_err(|_| StoreError::Corrupt(format!("invalid UTF-8 in {what}")))
    }

    /// Read an owned string.
    pub fn read_string(&mut self, what: &str) -> Result<String> {
        Ok(self.read_str(what)?.to_string())
    }

    /// Read a [`Value`] tagged union.
    pub fn read_value(&mut self, what: &str) -> Result<Value> {
        Ok(match self.read_u8(what)? {
            0 => Value::Null,
            1 => Value::Bool(self.read_bool(what)?),
            2 => Value::Int(self.read_i64(what)?),
            3 => Value::Float(self.read_f64(what)?),
            4 => Value::Str(Arc::from(self.read_str(what)?)),
            t => {
                return Err(StoreError::Corrupt(format!(
                    "invalid value tag {t} in {what}"
                )))
            }
        })
    }
}

/// FNV-1a over a byte slice, eight bytes per multiply — the section and
/// file checksum of the `HYPR1` container. Word-at-a-time keeps snapshot
/// validation off the warm-start critical path (~8× faster than the
/// byte-serial variant over the multi-hundred-KB table payloads);
/// single-bit and single-byte damage still always changes the digest,
/// which is the property the corruption tests pin down. Stable across
/// runs and platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.write_u8(7);
        w.write_u64(u64::MAX - 3);
        w.write_i64(-42);
        w.write_f64(-0.0);
        w.write_f64(f64::NAN);
        w.write_str("héllo");
        w.write_bool(true);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.read_u8("a").unwrap(), 7);
        assert_eq!(r.read_u64("b").unwrap(), u64::MAX - 3);
        assert_eq!(r.read_i64("c").unwrap(), -42);
        assert_eq!(r.read_f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.read_f64("e").unwrap().is_nan());
        assert_eq!(r.read_str("f").unwrap(), "héllo");
        assert!(r.read_bool("g").unwrap());
        assert!(r.is_at_end());
    }

    #[test]
    fn values_round_trip_bit_exact() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Float(f64::from_bits(0x7ff8_0000_0000_0001)), // NaN payload
            Value::str("αβγ"),
        ];
        let mut w = ByteWriter::new();
        for v in &values {
            w.write_value(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &values {
            let got = r.read_value("v").unwrap();
            match (v, &got) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(*v, got),
            }
        }
    }

    #[test]
    fn truncation_and_bad_tags_error() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.read_u64("x").unwrap_err(),
            StoreError::Corrupt(_)
        ));
        // A declared length far past the end is rejected before allocating.
        let mut w = ByteWriter::new();
        w.write_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.read_bytes("y").unwrap_err(),
            StoreError::Corrupt(_)
        ));
        // Invalid value tag.
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(
            r.read_value("z").unwrap_err(),
            StoreError::Corrupt(_)
        ));
    }
}
