//! The `HYPD1` append log: a durable, torn-tail-tolerant record stream
//! of delta payloads, sitting beside a tenant's `HYPR1` snapshot.
//!
//! Snapshots are immutable scenario captures; ingest must not rewrite
//! them on every append. Instead each applied delta batch is appended to
//! a sidecar log, and loaders replay the log over the snapshot to
//! reconstruct the latest version (`version = number of intact
//! records`, with version 0 the bare snapshot).
//!
//! The `HYPR1` container closes with a **whole-file** checksum, which is
//! exactly wrong for an append-only file — every append would rewrite
//! the trailer. `HYPD1` therefore reuses the container's byte-level
//! conventions (magic + version header, FNV-1a checksums, little-endian
//! fixed-width words) but frames each record *self-contained*:
//!
//! ```text
//! HYPD1\0 <version:u16>
//! ┌ len:u64 ┬ fnv1a(payload):u64 ┬ payload… ┐   record 1
//! ├ len:u64 ┼ fnv1a(payload):u64 ┼ payload… ┤   record 2
//! └ …
//! ```
//!
//! Replay stops at the first truncated or checksum-failing record — a
//! torn tail from a crashed writer loses at most the in-flight record,
//! never the log — and the next [`AppendLog::append`] truncates that
//! tail before writing, so the file heals itself.
//!
//! Payloads are opaque bytes at this layer; `hyper-ingest` defines the
//! actual delta-batch codec on top.

use std::fs::{self, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::fnv1a;
use crate::error::{Result, StoreError};

/// The `*.hypd` extension delta logs carry (beside `*.hypr` snapshots).
pub const DELTA_LOG_EXT: &str = "hypd";

/// Magic bytes opening every delta log.
pub const DELTA_MAGIC: &[u8; 6] = b"HYPD1\0";

/// Format version this build reads and writes.
pub const DELTA_FORMAT_VERSION: u16 = 1;

const HEADER_LEN: usize = DELTA_MAGIC.len() + 2;
const FRAME_LEN: usize = 16; // len:u64 + checksum:u64

/// A durable append-only record log at a fixed path.
///
/// The handle is cheap (just the path); every operation re-reads the
/// file, so multiple handles — or multiple processes — see each other's
/// appends. Writers are expected to serialize externally (the server
/// holds a per-tenant ingest lock).
#[derive(Debug, Clone)]
pub struct AppendLog {
    path: PathBuf,
}

impl AppendLog {
    /// Open the log at `path`, creating an empty one (header only) if the
    /// file does not exist. An existing file must carry the `HYPD1`
    /// header.
    pub fn open(path: impl AsRef<Path>) -> Result<AppendLog> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            let bytes = fs::read(&path)?;
            validate_header(&bytes)?;
        } else {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    fs::create_dir_all(dir)?;
                }
            }
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(DELTA_MAGIC);
            header.extend_from_slice(&DELTA_FORMAT_VERSION.to_le_bytes());
            fs::write(&path, header)?;
        }
        Ok(AppendLog { path })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Every intact record payload, in append order. A torn or corrupt
    /// tail silently ends the replay (by design — see the module docs).
    pub fn replay(&self) -> Result<Vec<Vec<u8>>> {
        Ok(self.scan()?.0)
    }

    /// The current version: the number of intact records (0 = bare
    /// snapshot).
    pub fn version(&self) -> Result<u64> {
        Ok(self.scan()?.0.len() as u64)
    }

    /// Append one record, first truncating any torn tail left by a
    /// crashed writer. Returns the version after the append.
    pub fn append(&self, payload: &[u8]) -> Result<u64> {
        let (records, valid_end) = self.scan()?;
        let mut f = OpenOptions::new().write(true).open(&self.path)?;
        f.set_len(valid_end)?;
        f.seek(SeekFrom::Start(valid_end))?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(&fnv1a(payload).to_le_bytes())?;
        f.write_all(payload)?;
        f.sync_all()?;
        Ok(records.len() as u64 + 1)
    }

    /// Scan the file: intact records plus the byte offset where they end
    /// (= where the next append goes).
    fn scan(&self) -> Result<(Vec<Vec<u8>>, u64)> {
        let bytes = fs::read(&self.path)?;
        validate_header(&bytes)?;
        let mut records = Vec::new();
        let mut pos = HEADER_LEN;
        while bytes.len() - pos >= FRAME_LEN {
            let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
            let sum = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
            let Some(end) = pos.checked_add(FRAME_LEN).and_then(|s| s.checked_add(len)) else {
                break;
            };
            if end > bytes.len() {
                break; // truncated tail
            }
            let payload = &bytes[pos + FRAME_LEN..end];
            if fnv1a(payload) != sum {
                break; // corrupt tail
            }
            records.push(payload.to_vec());
            pos = end;
        }
        Ok((records, pos as u64))
    }
}

fn validate_header(bytes: &[u8]) -> Result<()> {
    if bytes.len() < HEADER_LEN || &bytes[..DELTA_MAGIC.len()] != DELTA_MAGIC {
        return Err(StoreError::Corrupt(
            "not a HYPD1 delta log (bad magic)".into(),
        ));
    }
    let found = u16::from_le_bytes([bytes[6], bytes[7]]);
    if found != DELTA_FORMAT_VERSION {
        return Err(StoreError::VersionMismatch {
            found,
            expected: DELTA_FORMAT_VERSION,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hyper_deltalog_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir.join("t0.hypd")
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = temp_log("rt");
        let log = AppendLog::open(&path).unwrap();
        assert_eq!(log.version().unwrap(), 0);
        assert_eq!(log.append(b"first").unwrap(), 1);
        assert_eq!(log.append(b"second record").unwrap(), 2);
        // A second handle (fresh process) sees both records.
        let log2 = AppendLog::open(&path).unwrap();
        let records = log2.replay().unwrap();
        assert_eq!(records, vec![b"first".to_vec(), b"second record".to_vec()]);
        assert_eq!(log2.version().unwrap(), 2);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_healed() {
        let path = temp_log("torn");
        let log = AppendLog::open(&path).unwrap();
        log.append(b"keep me").unwrap();
        log.append(b"casualty").unwrap();
        // Tear the last record: chop two bytes off the file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        assert_eq!(log.replay().unwrap(), vec![b"keep me".to_vec()]);
        // Appending truncates the torn tail before writing.
        log.append(b"after the crash").unwrap();
        assert_eq!(
            log.replay().unwrap(),
            vec![b"keep me".to_vec(), b"after the crash".to_vec()]
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_record_ends_replay() {
        let path = temp_log("corrupt");
        let log = AppendLog::open(&path).unwrap();
        log.append(b"good").unwrap();
        log.append(b"flipped").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(log.replay().unwrap(), vec![b"good".to_vec()]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn bad_header_is_rejected() {
        let path = temp_log("hdr");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"HYPR1\0junk").unwrap();
        assert!(matches!(
            AppendLog::open(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::write(&path, [b'H', b'Y', b'P', b'D', b'1', 0, 9, 0]).unwrap();
        assert!(matches!(
            AppendLog::open(&path),
            Err(StoreError::VersionMismatch { found: 9, .. })
        ));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
