//! Codecs for fitted models: random forests, linear models, and table
//! encoders.
//!
//! Forest trees serialize their flattened arenas with exact `f64` bit
//! patterns for thresholds and leaf values, so a reloaded forest predicts
//! **bit-identically** to the fitted original — the invariant the
//! warm-start acceptance test pins down. Decoding re-validates the arena
//! through [`RegressionTree::from_nodes`] (in-range features, forward
//! child indices), so hostile bytes cannot build a tree whose prediction
//! walk fails to terminate.

use hyper_ml::{ColumnEncoding, LinearModel, RandomForest, RegressionTree, TableEncoder, TreeNode};

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{Result, StoreError};

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// Encode a fitted regression tree (arena order preserved).
pub fn encode_tree(w: &mut ByteWriter, tree: &RegressionTree) {
    w.write_u64(tree.n_features() as u64);
    let nodes = tree.export_nodes();
    w.write_u64(nodes.len() as u64);
    for n in nodes {
        match n {
            TreeNode::Leaf { value } => {
                w.write_u8(0);
                w.write_f64(value);
            }
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                w.write_u8(1);
                w.write_u32(feature);
                w.write_f64(threshold);
                w.write_u32(left);
                w.write_u32(right);
            }
        }
    }
}

/// Decode a fitted regression tree, re-validating the arena invariants.
pub fn decode_tree(r: &mut ByteReader<'_>) -> Result<RegressionTree> {
    let n_features = r.read_u64("tree feature width")? as usize;
    let nnodes = r.read_len(9, "tree node count")?;
    let mut nodes = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        nodes.push(match r.read_u8("tree node tag")? {
            0 => TreeNode::Leaf {
                value: r.read_f64("leaf value")?,
            },
            1 => TreeNode::Split {
                feature: r.read_u32("split feature")?,
                threshold: r.read_f64("split threshold")?,
                left: r.read_u32("left child")?,
                right: r.read_u32("right child")?,
            },
            t => return Err(corrupt(format!("invalid tree-node tag {t}"))),
        });
    }
    RegressionTree::from_nodes(nodes, n_features).map_err(|e| corrupt(format!("invalid tree: {e}")))
}

/// Encode a fitted random forest.
pub fn encode_forest(w: &mut ByteWriter, forest: &RandomForest) {
    w.write_u64(forest.num_trees() as u64);
    for t in forest.trees() {
        encode_tree(w, t);
    }
}

/// Decode a fitted random forest (bit-identical predictions).
pub fn decode_forest(r: &mut ByteReader<'_>) -> Result<RandomForest> {
    let n = r.read_len(17, "forest tree count")?;
    let mut trees = Vec::with_capacity(n);
    for _ in 0..n {
        trees.push(decode_tree(r)?);
    }
    RandomForest::from_trees(trees).map_err(|e| corrupt(format!("invalid forest: {e}")))
}

/// Encode a fitted linear model.
pub fn encode_linear(w: &mut ByteWriter, model: &LinearModel) {
    w.write_f64(model.intercept);
    w.write_u64(model.coefs.len() as u64);
    for &c in &model.coefs {
        w.write_f64(c);
    }
}

/// Decode a fitted linear model.
pub fn decode_linear(r: &mut ByteReader<'_>) -> Result<LinearModel> {
    let intercept = r.read_f64("linear intercept")?;
    let n = r.read_len(8, "linear coefficient count")?;
    let mut coefs = Vec::with_capacity(n);
    for _ in 0..n {
        coefs.push(r.read_f64("linear coefficient")?);
    }
    Ok(LinearModel { intercept, coefs })
}

/// Encode a fitted table encoder (column names + per-column encodings).
pub fn encode_encoder(w: &mut ByteWriter, enc: &TableEncoder) {
    let (columns, encodings) = enc.parts();
    w.write_u64(columns.len() as u64);
    for c in columns {
        w.write_str(c);
    }
    for e in encodings {
        match e {
            ColumnEncoding::Numeric { mean } => {
                w.write_u8(0);
                w.write_f64(*mean);
            }
            ColumnEncoding::OneHot { categories } => {
                w.write_u8(1);
                w.write_u64(categories.len() as u64);
                for v in categories {
                    w.write_value(v);
                }
            }
        }
    }
}

/// Decode a fitted table encoder.
pub fn decode_encoder(r: &mut ByteReader<'_>) -> Result<TableEncoder> {
    let n = r.read_len(8, "encoder column count")?;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        columns.push(r.read_string("encoder column name")?);
    }
    let mut encodings = Vec::with_capacity(n);
    for _ in 0..n {
        encodings.push(match r.read_u8("encoding tag")? {
            0 => ColumnEncoding::Numeric {
                mean: r.read_f64("numeric mean")?,
            },
            1 => {
                let k = r.read_len(1, "category count")?;
                let mut categories = Vec::with_capacity(k);
                for _ in 0..k {
                    categories.push(r.read_value("category")?);
                }
                ColumnEncoding::OneHot { categories }
            }
            t => return Err(corrupt(format!("invalid encoding tag {t}"))),
        });
    }
    TableEncoder::from_parts(columns, encodings)
        .map_err(|e| corrupt(format!("invalid encoder: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_ml::{ForestParams, Matrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-3.0..3.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            rows.push(vec![a, b]);
            y.push(a.abs() + b + 0.05 * rng.gen_range(-1.0..1.0));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn forest_round_trip_is_bit_identical() {
        let (x, y) = training_data(500, 7);
        let forest = RandomForest::fit(
            &x,
            &y,
            &ForestParams {
                n_trees: 8,
                seed: 3,
                ..ForestParams::default()
            },
        )
        .unwrap();
        let mut w = ByteWriter::new();
        encode_forest(&mut w, &forest);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_forest(&mut r).unwrap();
        assert!(r.is_at_end());
        let (xt, _) = training_data(200, 8);
        let p0 = forest.predict(&xt);
        let p1 = back.predict(&xt);
        assert_eq!(
            p0.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            p1.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            "round-tripped forest must predict bit-identically"
        );
    }

    #[test]
    fn hostile_tree_bytes_cannot_loop() {
        // A split pointing back at itself must be rejected.
        let mut w = ByteWriter::new();
        w.write_u64(1); // n_features
        w.write_u64(1); // one node
        w.write_u8(1); // split
        w.write_u32(0);
        w.write_f64(0.5);
        w.write_u32(0); // left = self
        w.write_u32(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            decode_tree(&mut r).unwrap_err(),
            StoreError::Corrupt(_)
        ));
    }

    #[test]
    fn linear_and_encoder_round_trip() {
        let m = LinearModel {
            intercept: -1.25,
            coefs: vec![0.5, f64::MIN_POSITIVE, -3.0],
        };
        let mut w = ByteWriter::new();
        encode_linear(&mut w, &m);
        let bytes = w.into_bytes();
        let back = decode_linear(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.intercept, m.intercept);
        assert_eq!(back.coefs, m.coefs);

        let enc = TableEncoder::from_parts(
            vec!["a".into(), "b".into()],
            vec![
                ColumnEncoding::Numeric { mean: 0.25 },
                ColumnEncoding::OneHot {
                    categories: vec!["x".into(), "y".into()],
                },
            ],
        )
        .unwrap();
        let mut w = ByteWriter::new();
        encode_encoder(&mut w, &enc);
        let bytes = w.into_bytes();
        let back = decode_encoder(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.width(), enc.width());
        assert_eq!(back.parts().1, enc.parts().1);
    }
}
