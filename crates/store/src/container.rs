//! The `HYPR1` container: a versioned, checksummed, sectioned file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic            b"HYPR1\0"              6 bytes
//!        6   format version   u16                     (currently 1)
//!        8   section count    u32
//!       12   sections         repeated:
//!              tag            4 ASCII bytes
//!              payload length u64
//!              payload FNV    u64   (FNV-1a of the payload bytes)
//!              payload        <length> bytes
//!      end   file checksum    u64   (FNV-1a of every preceding byte)
//! ```
//!
//! The per-section checksum localizes damage ("section DB is corrupt");
//! the trailing file checksum catches truncation after a valid section
//! and bit flips in the framing itself. Readers validate *everything*
//! before handing out payloads: a flipped byte anywhere in the file
//! surfaces as [`StoreError::Corrupt`], an unknown version as
//! [`StoreError::VersionMismatch`], and no read ever panics.

use std::path::Path;

use crate::codec::{fnv1a, ByteReader, ByteWriter};
use crate::error::{Result, StoreError};

/// File magic: `HYPR1` + NUL.
pub const MAGIC: &[u8; 6] = b"HYPR1\0";

/// Format version written by this build (readers reject other versions).
pub const FORMAT_VERSION: u16 = 1;

/// A 4-byte ASCII section tag.
pub type SectionTag = [u8; 4];

/// Database payload ([`crate::encode_database`]).
pub const SECTION_DB: SectionTag = *b"DB\0\0";
/// Causal-graph payload ([`crate::encode_graph`]).
pub const SECTION_GRAPH: SectionTag = *b"GRPH";
/// Snapshot metadata (fingerprints + table inventory), readable without
/// decoding the data sections.
pub const SECTION_META: SectionTag = *b"META";
/// Artifact metadata (kind, cache key, shard fingerprints) of a disk-tier
/// artifact file.
pub const SECTION_ARTIFACT_META: SectionTag = *b"AMET";
/// Artifact payload of a disk-tier artifact file.
pub const SECTION_ARTIFACT_PAYLOAD: SectionTag = *b"APAY";
/// One spilled table chunk of an out-of-core table ([`crate::paging`]).
pub const SECTION_PAGE: SectionTag = *b"PAGE";

/// Writer assembling a container in memory.
#[derive(Debug, Default)]
pub struct ContainerWriter {
    sections: Vec<(SectionTag, Vec<u8>)>,
}

impl ContainerWriter {
    /// Empty container.
    pub fn new() -> ContainerWriter {
        ContainerWriter::default()
    }

    /// Append a section (order is preserved; duplicate tags are allowed
    /// but readers resolve the first occurrence).
    pub fn add_section(&mut self, tag: SectionTag, payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// Serialize the container.
    pub fn finish(self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.write_raw(MAGIC);
        w.write_u16(FORMAT_VERSION);
        w.write_u32(self.sections.len() as u32);
        for (tag, payload) in &self.sections {
            w.write_raw(tag);
            w.write_u64(payload.len() as u64);
            w.write_u64(fnv1a(payload));
            w.write_raw(payload);
        }
        let checksum = fnv1a(w.as_slice());
        w.write_u64(checksum);
        w.into_bytes()
    }

    /// Serialize and write atomically: the bytes land in a `.tmp` sibling
    /// first and are renamed into place, so readers never observe a
    /// half-written snapshot.
    pub fn write_to(self, path: &Path) -> Result<()> {
        let bytes = self.finish();
        write_atomic(path, &bytes)
    }
}

/// Write `bytes` to `path` durably and atomically: a uniquely-named
/// temporary sibling (pid + counter, so concurrent writers of one path
/// never clobber each other's half-written bytes) is written, fsynced,
/// and renamed into place, then the directory is fsynced best-effort so
/// the rename itself survives a crash. Readers therefore never observe a
/// half-written file, and a completed save stays completed.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    };
    if let Err(e) = write() {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

/// A parsed, fully-validated container over owned bytes.
#[derive(Debug)]
pub struct Container {
    bytes: Vec<u8>,
    /// `(tag, payload range)` in file order.
    sections: Vec<(SectionTag, std::ops::Range<usize>)>,
}

impl Container {
    /// Parse and validate `bytes`: magic, version, section framing, every
    /// section checksum, and the trailing file checksum.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Container> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::Corrupt(
                "missing HYPR1 magic (not a snapshot file)".into(),
            ));
        }
        // Trailing file checksum first: it covers the framing the section
        // loop is about to trust.
        if bytes.len() < MAGIC.len() + 2 + 4 + 8 {
            return Err(StoreError::Corrupt("truncated snapshot header".into()));
        }
        let body_end = bytes.len() - 8;
        let recorded = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        let actual = fnv1a(&bytes[..body_end]);
        if recorded != actual {
            // Localize the damage with the per-section checksums before
            // reporting (they are not re-verified on the happy path —
            // the whole-file checksum already covers every byte).
            let at = match localize_damage(&bytes[..body_end]) {
                Some(section) => format!(" — section {section} fails its checksum"),
                None => String::new(),
            };
            return Err(StoreError::Corrupt(format!(
                "file checksum mismatch (recorded {recorded:#018x}, computed {actual:#018x}){at}"
            )));
        }
        let mut r = ByteReader::new(&bytes[..body_end]);
        r.read_raw(MAGIC.len(), "magic")?;
        let version = r.read_u16("format version")?;
        if version != FORMAT_VERSION {
            return Err(StoreError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let count = r.read_u32("section count")? as usize;
        let mut sections = Vec::with_capacity(count.min(64));
        for i in 0..count {
            let what = format!("section {i} header");
            let tag: SectionTag = r
                .read_raw(4, &what)?
                .try_into()
                .expect("read_raw returned 4 bytes");
            let len = r.read_len(1, &what)?;
            // The whole-file checksum verified above already covers every
            // payload byte, so the per-section checksum is not re-scanned
            // here (snapshot loads sit on the warm-start critical path);
            // it exists to localize damage when the file checksum fails
            // and for tools reading sections out of a larger stream.
            let _section_checksum = r.read_u64(&what)?;
            let start = r.position();
            r.read_raw(len, &format!("section {} payload", tag_str(&tag)))?;
            sections.push((tag, start..start + len));
        }
        r.expect_end("the last section")?;
        Ok(Container { bytes, sections })
    }

    /// Read and parse a container file.
    pub fn read_from(path: &Path) -> Result<Container> {
        Container::from_bytes(std::fs::read(path)?)
    }

    /// Read and parse a container file into `buf`'s allocation (cleared
    /// first). Recover the buffer afterwards with
    /// [`Container::into_bytes`] so a chunk-at-a-time scan pays for one
    /// allocation, not one per chunk.
    pub fn read_into(path: &Path, mut buf: Vec<u8>) -> Result<Container> {
        use std::io::Read as _;
        buf.clear();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        Container::from_bytes(buf)
    }

    /// The validated file bytes, returned to the caller (the inverse of
    /// [`Container::from_bytes`], for buffer reuse across reads).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Section inventory in file order: `(tag, payload length, payload
    /// checksum)`.
    pub fn sections(&self) -> impl Iterator<Item = (SectionTag, usize)> + '_ {
        self.sections.iter().map(|(t, r)| (*t, r.len()))
    }

    /// Payload of the first section with `tag`.
    pub fn section(&self, tag: SectionTag) -> Result<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, range)| &self.bytes[range.clone()])
            .ok_or_else(|| {
                StoreError::Corrupt(format!("snapshot has no {} section", tag_str(&tag)))
            })
    }

    /// Payload of the first section with `tag`, or `None`.
    pub fn section_opt(&self, tag: SectionTag) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, range)| &self.bytes[range.clone()])
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Best-effort damage localization for a container whose file checksum
/// failed: re-walk the section framing and verify each per-section
/// checksum, returning the first failing tag. `None` when the framing
/// itself is too damaged to walk (or every section checks out — i.e.
/// the corruption sits in the framing or the trailer).
fn localize_damage(body: &[u8]) -> Option<String> {
    let mut r = ByteReader::new(body);
    r.read_raw(MAGIC.len(), "magic").ok()?;
    r.read_u16("version").ok()?;
    let count = r.read_u32("count").ok()?;
    for _ in 0..count {
        let tag: SectionTag = r.read_raw(4, "tag").ok()?.try_into().ok()?;
        let len = r.read_len(1, "len").ok()?;
        let checksum = r.read_u64("checksum").ok()?;
        let payload = r.read_raw(len, "payload").ok()?;
        if fnv1a(payload) != checksum {
            return Some(tag_str(&tag));
        }
    }
    None
}

/// Render a tag for error messages (non-ASCII bytes become `·`).
pub fn tag_str(tag: &SectionTag) -> String {
    tag.iter()
        .map(|&b| {
            if b.is_ascii_graphic() {
                b as char
            } else {
                '·'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ContainerWriter::new();
        w.add_section(SECTION_META, vec![1, 2, 3]);
        w.add_section(SECTION_DB, vec![9; 100]);
        w.finish()
    }

    #[test]
    fn round_trips_sections() {
        let c = Container::from_bytes(sample()).unwrap();
        assert_eq!(c.section(SECTION_META).unwrap(), &[1, 2, 3]);
        assert_eq!(c.section(SECTION_DB).unwrap().len(), 100);
        assert!(c.section(SECTION_GRAPH).is_err());
        assert!(c.section_opt(SECTION_GRAPH).is_none());
        assert_eq!(c.sections().count(), 2);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample();
        for n in 0..bytes.len() {
            let err = Container::from_bytes(bytes[..n].to_vec()).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt(_)),
                "truncation at {n} gave {err}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            let err = Container::from_bytes(flipped).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Corrupt(_) | StoreError::VersionMismatch { .. }
                ),
                "flip at {i} gave {err}"
            );
        }
    }

    #[test]
    fn wrong_version_is_version_mismatch() {
        let mut bytes = sample();
        bytes[6] = 99;
        // Re-stamp the file checksum so only the version is wrong.
        let end = bytes.len() - 8;
        let sum = fnv1a(&bytes[..end]).to_le_bytes();
        bytes[end..].copy_from_slice(&sum);
        assert!(matches!(
            Container::from_bytes(bytes).unwrap_err(),
            StoreError::VersionMismatch {
                found: 99,
                expected: FORMAT_VERSION
            }
        ));
    }
}
