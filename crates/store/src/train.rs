//! Streaming forest training over out-of-core tables: the
//! [`hyper_ml::stream`] adapter for [`PagedTable`].
//!
//! [`PagedTrainSource`] streams a paged table's chunks through a fitted
//! [`TableEncoder`], decoding **only** the encoder's feature columns
//! ([`PagedTable::scan_projected`], with one reused byte buffer for the
//! whole scan) and yielding encoded morsels to
//! [`hyper_ml::StreamedLayout::build`]. Because per-row encodings depend
//! only on their own row and chunks arrive in global row order, the
//! concatenated chunks equal the resident encode bit for bit — so a
//! forest trained through this source is bit-identical to
//! [`hyper_ml::RandomForest::fit_on`] over the collected table (the
//! property suite in `tests/prop_stream_train.rs` drives this across
//! worker counts, chunk sizes, and budgets).
//!
//! [`fit_encoder_paged`] and [`target_vector_paged`] cover the two other
//! resident inputs training needs — the encoder statistics and the
//! target vector — with the same chunk-at-a-time discipline: the only
//! O(rows) state that ever exists is the target vector (8 B/row) and
//! the layout's per-row cell ids (4 B/row), never the dense matrix.

use hyper_ml::{Matrix, MlError, TableEncoder, TrainChunkSource};

use crate::error::{Result, StoreError};
use crate::paging::PagedTable;

/// [`TrainChunkSource`] over a [`PagedTable`]: column-projected chunk
/// decode + chunk-wise encode, restartable for the binner's two passes.
pub struct PagedTrainSource<'a> {
    paged: &'a PagedTable,
    encoder: &'a TableEncoder,
}

impl<'a> PagedTrainSource<'a> {
    /// Stream `paged`'s chunks through `encoder` (which must have been
    /// fitted on the same columns — see [`fit_encoder_paged`]).
    pub fn new(paged: &'a PagedTable, encoder: &'a TableEncoder) -> PagedTrainSource<'a> {
        PagedTrainSource { paged, encoder }
    }
}

impl TrainChunkSource for PagedTrainSource<'_> {
    fn num_rows(&self) -> usize {
        self.paged.num_rows()
    }

    fn num_cols(&self) -> usize {
        self.encoder.width()
    }

    fn for_each_chunk(
        &mut self,
        f: &mut dyn FnMut(&Matrix) -> hyper_ml::Result<()>,
    ) -> hyper_ml::Result<()> {
        let keep: Vec<&str> = self.encoder.columns().iter().map(String::as_str).collect();
        let mut inner: hyper_ml::Result<()> = Ok(());
        let scan = self.paged.scan_projected(&keep, |_, _, t| {
            let mut run = || -> hyper_ml::Result<()> {
                let m = self.encoder.encode_table(t)?;
                f(&m)
            };
            if let Err(e) = run() {
                inner = Err(e);
                return Err(StoreError::Query("training stream aborted".into()));
            }
            Ok(())
        });
        match (scan, inner) {
            (_, Err(e)) => Err(e),
            (Err(e), Ok(())) => Err(MlError::Storage(e.to_string())),
            (Ok(()), Ok(())) => Ok(()),
        }
    }
}

/// Fit a [`TableEncoder`] over the named columns of a paged table,
/// chunk-at-a-time with column-projected decodes — bit-identical to
/// `TableEncoder::fit` over the collected table (numeric means
/// accumulate in global row order).
pub fn fit_encoder_paged(paged: &PagedTable, columns: &[String]) -> Result<TableEncoder> {
    let keep: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut state = TableEncoder::fit_begin(columns);
    paged.scan_projected(&keep, |_, _, t| {
        state
            .observe(t)
            .map_err(|e| StoreError::Query(format!("encoder fit failed: {e}")))
    })?;
    state
        .finish()
        .map_err(|e| StoreError::Query(format!("encoder fit failed: {e}")))
}

/// Collect one numeric column of a paged table into a resident vector
/// (the training target), decoding only that column per chunk.
pub fn target_vector_paged(paged: &PagedTable, column: &str) -> Result<Vec<f64>> {
    let mut y = Vec::with_capacity(paged.num_rows());
    paged.scan_projected(&[column], |_, _, t| {
        let chunk = TableEncoder::target_vector(t, column)
            .map_err(|e| StoreError::Query(format!("target extraction failed: {e}")))?;
        y.extend(chunk);
        Ok(())
    })?;
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_ml::{ForestParams, RandomForest, StreamedLayout, MAX_BINS};
    use hyper_runtime::HyperRuntime;
    use hyper_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
    use std::path::PathBuf;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hyper_train_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::nullable("b", DataType::Str),
            Field::new("wide", DataType::Float),
            Field::new("y", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..n {
            let s: Value = if i % 9 == 0 {
                Value::Null
            } else {
                ["p", "q", "r"][i % 3].into()
            };
            b.push(vec![
                Value::Int((i % 4) as i64),
                s,
                Value::Float(i as f64), // never referenced by training
                Value::Float((i % 5) as f64 * 0.5),
            ])
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn paged_streaming_forest_matches_resident_trainer() {
        let dir = test_dir("stream");
        let t = table(800);
        let cols: Vec<String> = vec!["a".into(), "b".into()];
        // Budget far below one chunk: nothing can stay resident.
        let paged = PagedTable::spill(&t, &dir, 64, 16).unwrap();

        let enc = fit_encoder_paged(&paged, &cols).unwrap();
        let resident_enc = TableEncoder::fit(&t, &cols).unwrap();
        assert_eq!(enc.parts().1, resident_enc.parts().1);

        let y = target_vector_paged(&paged, "y").unwrap();
        assert_eq!(y, TableEncoder::target_vector(&t, "y").unwrap());

        let mut src = PagedTrainSource::new(&paged, &enc);
        let layout = StreamedLayout::build(&mut src, MAX_BINS, 800 / 4)
            .unwrap()
            .expect("discrete features are cell-trainable");
        let params = ForestParams {
            n_trees: 5,
            seed: 3,
            ..Default::default()
        };
        let rt = HyperRuntime::with_workers(0);
        let streamed = layout.fit_forest(&rt, &y, &params).unwrap();

        let x = resident_enc.encode_table(&t).unwrap();
        let resident = RandomForest::fit_on(&rt, &x, &y, &params).unwrap();
        for i in [0usize, 7, 311] {
            assert_eq!(
                resident.predict_row(x.row(i)).to_bits(),
                streamed.predict_row(x.row(i)).to_bits()
            );
        }
        paged.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn projected_scan_skips_unreferenced_columns() {
        let dir = test_dir("proj");
        let t = table(300);
        let paged = PagedTable::spill(&t, &dir, 100, u64::MAX).unwrap();
        let mut rows = 0usize;
        paged
            .scan_projected(&["a"], |_, _, chunk| {
                assert_eq!(chunk.num_columns(), 1);
                rows += chunk.num_rows();
                Ok(())
            })
            .unwrap();
        assert_eq!(rows, 300);
        paged.remove_files().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
