//! Property tests for the `HYPR1` codecs.
//!
//! The contract under test: `decode(encode(x)) == x` for tables over
//! random typed columns — every column type, NULL patterns included,
//! dictionaries shared across gathered copies — and bit-identical
//! predictions from a round-tripped [`RandomForest`]. Plus totality:
//! decoding any *prefix* of valid bytes is a typed error, never a panic.

use proptest::prelude::*;

use hyper_ml::{ForestParams, Matrix, RandomForest};
use hyper_storage::{DataType, Database, Field, Schema, Table, TableBuilder, Value};
use hyper_store::{ByteReader, ByteWriter, Snapshot, StoreError};

// ---------------------------------------------------------------- tables

/// One generated column: a type tag plus per-row (null?, payload) seeds.
type ColSpec = (u8, Vec<(bool, i32)>);

fn dt_of(tag: u8) -> DataType {
    match tag % 4 {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Bool,
        _ => DataType::Str,
    }
}

fn value_for(dt: DataType, null: bool, seed: i32) -> Value {
    if null {
        return Value::Null;
    }
    match dt {
        // Extremes included: the codec must be exact, not merely close.
        DataType::Int => Value::Int(match seed % 5 {
            0 => i64::MIN,
            1 => i64::MAX,
            _ => seed as i64 * 7919 - 100,
        }),
        DataType::Float => Value::Float(match seed % 6 {
            0 => -0.0,
            1 => f64::INFINITY,
            2 => f64::MIN_POSITIVE,
            _ => seed as f64 / 3.0 - 5.0,
        }),
        DataType::Bool => Value::Bool(seed % 2 == 0),
        DataType::Str => Value::str(format!("s{}·{}", seed % 6, "αβ")),
    }
}

fn build_table(specs: &[ColSpec]) -> Table {
    let rows = specs.first().map_or(0, |(_, cells)| cells.len());
    let fields: Vec<Field> = specs
        .iter()
        .enumerate()
        .map(|(i, (tag, _))| Field::nullable(format!("c{i}"), dt_of(*tag)))
        .collect();
    let mut t = TableBuilder::new("t", Schema::new(fields).unwrap());
    for r in 0..rows {
        let row: Vec<Value> = specs
            .iter()
            .map(|(tag, cells)| {
                let (null, seed) = cells[r];
                value_for(dt_of(*tag), null, seed)
            })
            .collect();
        t.push(row).unwrap();
    }
    t.build()
}

fn arb_specs(max_cols: usize, max_rows: usize) -> impl Strategy<Value = Vec<ColSpec>> {
    (1..=max_cols, 0..=max_rows).prop_flat_map(|(ncols, nrows)| {
        prop::collection::vec(
            (
                0u8..8,
                prop::collection::vec((prop::bool::ANY, 0i32..40), nrows..=nrows),
            ),
            ncols..=ncols,
        )
    })
}

fn tables_equal(a: &Table, b: &Table) -> bool {
    a.fingerprint() == b.fingerprint()
        && a.primary_key() == b.primary_key()
        && (0..a.num_columns()).all(|c| a.column(c) == b.column(c))
}

proptest! {
    /// `decode(encode(t)) == t` over random typed tables with NULLs.
    #[test]
    fn table_round_trips(specs in arb_specs(5, 24)) {
        let t = build_table(&specs);
        let mut w = ByteWriter::new();
        hyper_store::encode_table(&mut w, &t);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = hyper_store::decode_table(&mut r).unwrap();
        prop_assert!(r.is_at_end(), "decoder must consume every byte");
        prop_assert!(tables_equal(&t, &back));
    }

    /// Database round trip with dictionary sharing: a gathered slice
    /// shares its source table's dictionaries, and the whole database
    /// (both tables + a snapshot container around it) survives exactly.
    #[test]
    fn database_round_trips_with_shared_dicts(
        specs in arb_specs(4, 16),
        keep in prop::collection::vec(0usize..16, 0..8),
    ) {
        let t = build_table(&specs);
        let indices: Vec<usize> =
            keep.into_iter().filter(|&i| i < t.num_rows()).collect();
        let mut gathered = t.gather(&indices);
        gathered.set_name("slice");
        let mut db = Database::new();
        db.add_table(t).unwrap();
        db.add_table(gathered).unwrap();

        let snap = Snapshot::new(db, None);
        let back = Snapshot::from_bytes(snap.to_bytes()).unwrap();
        prop_assert_eq!(
            back.database.fingerprint(),
            snap.database.fingerprint(),
            "snapshotted-and-reloaded databases are fingerprint-identical"
        );
        for (a, b) in snap.database.tables().iter().zip(back.database.tables()) {
            prop_assert!(tables_equal(a, b));
        }
    }

    /// Truncating a valid snapshot anywhere yields a typed error (and the
    /// decoder never panics).
    #[test]
    fn truncations_are_typed_errors(specs in arb_specs(3, 8), frac in 0.0f64..1.0) {
        let t = build_table(&specs);
        let mut db = Database::new();
        db.add_table(t).unwrap();
        let bytes = Snapshot::new(db, None).to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = Snapshot::from_bytes(bytes[..cut].to_vec()).unwrap_err();
        prop_assert!(matches!(
            err,
            StoreError::Corrupt(_) | StoreError::VersionMismatch { .. }
        ));
    }

    /// Flipping any single byte of a valid snapshot is detected.
    #[test]
    fn bit_flips_are_typed_errors(specs in arb_specs(3, 8), pos in 0usize..10_000, bit in 0u8..8) {
        let t = build_table(&specs);
        let mut db = Database::new();
        db.add_table(t).unwrap();
        let mut bytes = Snapshot::new(db, None).to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let err = Snapshot::from_bytes(bytes).unwrap_err();
        prop_assert!(matches!(
            err,
            StoreError::Corrupt(_)
                | StoreError::VersionMismatch { .. }
                | StoreError::FingerprintMismatch { .. }
        ));
    }

    /// A round-tripped forest predicts bit-identically to the original.
    #[test]
    fn forest_round_trip_bit_identical(seed in 0u64..1000, n in 50usize..300) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let v = ((i as u64).wrapping_mul(seed + 7) % 1000) as f64 / 100.0;
                vec![v, (v * 1.7).sin()]
            })
            .collect();
        let y: Vec<f64> = xs.iter().map(|r| r[0] * 0.5 + r[1]).collect();
        let x = Matrix::from_rows(&xs).unwrap();
        let forest = RandomForest::fit(
            &x,
            &y,
            &ForestParams { n_trees: 4, seed, ..ForestParams::default() },
        )
        .unwrap();

        let mut w = ByteWriter::new();
        hyper_store::encode_forest(&mut w, &forest);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = hyper_store::decode_forest(&mut r).unwrap();
        prop_assert!(r.is_at_end());

        let p0: Vec<u64> = forest.predict(&x).iter().map(|f| f.to_bits()).collect();
        let p1: Vec<u64> = back.predict(&x).iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(p0, p1);
    }
}
