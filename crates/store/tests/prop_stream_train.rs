//! Property suite for streaming forest training over paged tables.
//!
//! The contract under test: a forest trained through the out-of-core
//! pipeline — [`hyper_store::fit_encoder_paged`] +
//! [`hyper_store::PagedTrainSource`] + [`hyper_ml::StreamedLayout`] — is
//! **bit-identical** (`f64::to_bits` on predictions) to
//! [`hyper_ml::RandomForest::fit_on`] over the collected resident table,
//! for every combination of
//!
//! * worker count ∈ {0, 1, 3} (sequential, one worker, oversubscribed),
//! * spill chunk size ∈ {1, 7, 4096} (degenerate, ragged, one-chunk),
//! * paging budget ∈ {16 B, unbounded} (16 B is smaller than any single
//!   column, so nothing can stay resident),
//!
//! over random tables with NULLs in a dictionary-encoded feature (whose
//! spilled chunks share the source dictionary `Arc`).
//!
//! The streamed fit runs inside an installed [`hyper_trace`] context,
//! while the resident reference stays untraced: recording `ForestTrain`
//! spans (on the caller and, via the pool's context capture, on worker
//! threads) must not perturb a single prediction bit. The suite asserts
//! the spans really fired, so a silently-disabled trace can't turn this
//! check into a no-op.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use hyper_ml::{ForestParams, RandomForest, StreamedLayout, TableEncoder, MAX_BINS};
use hyper_runtime::HyperRuntime;
use hyper_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
use hyper_store::{fit_encoder_paged, target_vector_paged, PagedTable, PagedTrainSource};
use hyper_trace::{with_trace, Phase, TraceTree};

/// Per-row seeds: (int feature, string NULL?, string pick, float pick,
/// target pick). Domains are small so the joint cells stay under the
/// trainer's cell cap and both paths take the cell route.
type RowSpec = (u8, bool, u8, u8, u8);

fn build_table(rows: &[RowSpec]) -> Table {
    let schema = Schema::new(vec![
        Field::new("a", DataType::Int),
        Field::nullable("b", DataType::Str),
        Field::new("c", DataType::Float),
        Field::new("y", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for &(a, b_null, b_pick, c_pick, y_pick) in rows {
        let s: Value = if b_null {
            Value::Null
        } else {
            ["p", "q", "r"][b_pick as usize % 3].into()
        };
        b.push(vec![
            Value::Int(a as i64 % 4),
            s,
            Value::Float((c_pick % 3) as f64 * 0.25 - 0.5),
            Value::Float((y_pick % 7) as f64 * 1.5 - 2.0),
        ])
        .unwrap();
    }
    b.build()
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hyper_prop_stream_{tag}_{}_{n}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Streamed == resident, bit for bit, across workers × chunk sizes
    /// × budgets.
    #[test]
    fn streamed_training_is_bit_identical_to_resident(
        rows in prop::collection::vec(
            (0u8..4, any::<bool>(), 0u8..3, 0u8..3, 0u8..7),
            20..90,
        ),
        seed in 0u64..1000,
    ) {
        let t = build_table(&rows);
        let n = t.num_rows();
        let cols: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let params = ForestParams { n_trees: 3, seed, ..Default::default() };

        // Resident reference (worker-count independence of `fit_on` is
        // covered by hyper-ml's own tests; 0 workers is the baseline).
        let resident_enc = TableEncoder::fit(&t, &cols).unwrap();
        let x = resident_enc.encode_table(&t).unwrap();
        let y = TableEncoder::target_vector(&t, "y").unwrap();
        let reference =
            RandomForest::fit_on(&HyperRuntime::with_workers(0), &x, &y, &params).unwrap();

        for chunk_rows in [1usize, 7, 4096] {
            for budget in [16u64, u64::MAX] {
                let dir = unique_dir("case");
                let paged = PagedTable::spill(&t, &dir, chunk_rows, budget).unwrap();

                let enc = fit_encoder_paged(&paged, &cols).unwrap();
                prop_assert_eq!(enc.parts().1, resident_enc.parts().1);
                let yp = target_vector_paged(&paged, "y").unwrap();
                prop_assert_eq!(&yp, &y);

                let mut src = PagedTrainSource::new(&paged, &enc);
                let layout = StreamedLayout::build(&mut src, MAX_BINS, (n / 4).max(64))
                    .unwrap()
                    .expect("small discrete domains stay cell-trainable");

                for workers in [0usize, 1, 3] {
                    let rt = HyperRuntime::with_workers(workers);
                    let trace = TraceTree::new();
                    let streamed =
                        with_trace(&trace, || layout.fit_forest(&rt, &yp, &params)).unwrap();
                    let spans = trace.snapshot().count(Phase::ForestTrain);
                    prop_assert!(
                        spans > 0,
                        "streamed fit recorded no ForestTrain spans (workers={})",
                        workers
                    );
                    for i in [0, n / 2, n - 1] {
                        prop_assert_eq!(
                            reference.predict_row(x.row(i)).to_bits(),
                            streamed.predict_row(x.row(i)).to_bits(),
                            "row {} diverged (workers={}, chunk={}, budget={})",
                            i, workers, chunk_rows, budget
                        );
                    }
                }
                paged.remove_files().unwrap();
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}
